"""Collaboration-network ranking on the weighted DBLP stand-in.

Answers both directions of the personalised-importance question:

- ``ppr_rank``: which authors matter most *to* a given author
  (single-source, forward view);
- ``top_k_sources``: *for whom* does a given prolific author matter
  most (single-target, reverse view — one BACKLV query instead of n
  source queries).

Also demonstrates the degree-normalised ranking of §7.7, which stays
informative when α is tiny.

Run:  python examples/node_ranking.py
"""

import numpy as np

import repro
from repro.applications import (
    degree_normalized_rank,
    ppr_rank,
    top_k_sources,
)


def main() -> None:
    graph = repro.load_dataset("dblp", scale=0.25)
    print(f"weighted collaboration stand-in: {graph}")

    author = 42
    print(f"\nwho matters to author {author} "
          f"(degree {graph.degrees[author]:.0f})?")
    for node, score in ppr_rank(graph, author, k=5, alpha=0.01,
                                budget_scale=0.05, seed=1):
        print(f"  author {node:6d}  pi({author}, v) = {score:.5f}  "
              f"(degree {graph.degrees[node]:.0f})")

    print("\nsame question, degree-normalised (hub bias removed):")
    for node, score in degree_normalized_rank(graph, author, k=5,
                                              alpha=0.01,
                                              budget_scale=0.05, seed=1):
        print(f"  author {node:6d}  pi/d = {score:.2e}")

    hub = int(np.argmax(graph.degrees))
    print(f"\nfor whom is the most prolific author {hub} "
          f"(degree {graph.degrees[hub]:.0f}) most important?")
    for node, score in top_k_sources(graph, hub, k=5, alpha=0.01,
                                     budget_scale=0.05, seed=2):
        print(f"  author {node:6d}  pi(v, {hub}) = {score:.5f}")


if __name__ == "__main__":
    main()
