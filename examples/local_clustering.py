"""Local graph clustering with small-α PPR (the intro's motivation).

Builds a *hierarchical* planted graph: four dense sub-blocks, paired
into two communities (strong ties inside a pair, a single tie between
the pairs).  A PPR sweep cut seeded inside one sub-block must decide
whether to stop at the sub-block or expand to the full community:

- with a large α the walk barely leaves the seed's sub-block, so the
  sweep settles for the sub-block cut;
- with α = 0.01 — the optimum the clustering literature cited by the
  paper reports — the walk covers the whole community and the sweep
  finds the strictly better community cut.

Run:  python examples/local_clustering.py
"""

import numpy as np

import repro
from repro.applications import local_cluster
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi


def hierarchical_partition(sub_block: int = 80, seed: int = 11) -> repro.Graph:
    """Four ER sub-blocks; pairs joined firmly, communities joined barely.

    Nodes ``[0, 2*sub_block)`` form community A (sub-blocks 0 and 1),
    the rest community B.
    """
    rng = np.random.default_rng(seed)
    all_edges = []
    for block_index in range(4):
        block = erdos_renyi(sub_block, 0.25, rng=rng)
        arcs = block.edges()
        all_edges.append(arcs[arcs[:, 0] < arcs[:, 1]]
                         + block_index * sub_block)
    # strong-ish ties within each community pair
    for left, right in ((0, 1), (2, 3)):
        pair_bridges = np.column_stack((
            rng.integers(left * sub_block, (left + 1) * sub_block, 25),
            rng.integers(right * sub_block, (right + 1) * sub_block, 25)))
        all_edges.append(pair_bridges)
    # a single tie between the two communities
    all_edges.append(np.array([[0, 2 * sub_block]]))
    return from_edges(np.concatenate(all_edges), num_nodes=4 * sub_block)


def describe(members: np.ndarray, sub_block: int) -> str:
    """Histogram of cluster membership across the four sub-blocks."""
    counts = [int(np.sum((members >= i * sub_block)
                         & (members < (i + 1) * sub_block)))
              for i in range(4)]
    return f"sub-block membership {counts}"


def main() -> None:
    sub_block = 80
    graph = hierarchical_partition(sub_block)
    print(f"hierarchical planted graph: {graph} "
          f"(4 sub-blocks of {sub_block}, paired into 2 communities)\n")

    seed_node = 10  # inside sub-block 0
    for alpha in (0.4, 0.1, 0.01):
        result = local_cluster(graph, seed_node, alpha=alpha,
                               method="speedlv", budget_scale=0.1, seed=3)
        print(f"alpha={alpha:<5}: cluster size {result.size:4d}, "
              f"conductance {result.conductance:.5f}, "
              f"{describe(result.members, sub_block)}")

    print("\nthe community cut (sub-blocks 0+1, one external tie) is the")
    print("right answer; the large-alpha sweep blurs it while small alpha")
    print("recovers it exactly — and forest sampling keeps small alpha cheap.")


if __name__ == "__main__":
    main()
