"""Graph-signal denoising with random spanning forests.

The PPR operator is a graph low-pass filter; spanning forests estimate
its action on any node signal without solving a linear system (the
Tikhonov/interpolation application of the paper's reference [38]).
We plant a smooth community-wise signal on a stand-in graph, corrupt
it with Gaussian noise, and denoise with a handful of forests —
comparing the basic estimator, the degree-conditional (improved)
estimator, and the exact filter.

Run:  python examples/signal_smoothing.py
"""

import numpy as np

import repro
from repro.applications import (
    smooth_signal_exact,
    smooth_signal_forests,
)


def main() -> None:
    graph = repro.load_dataset("pokec", scale=0.25)
    rng = np.random.default_rng(3)

    # a smooth ground-truth signal: heavily low-passed white noise,
    # normalised to unit RMS, then drowned in noise twice as strong
    clean = smooth_signal_exact(graph, rng.normal(size=graph.num_nodes),
                                alpha=0.02)
    clean /= np.sqrt(np.mean(clean ** 2))
    noisy = clean + rng.normal(scale=2.0, size=graph.num_nodes)

    def rmse(vector):
        return float(np.sqrt(np.mean((vector - clean) ** 2)))

    print(f"graph: {graph}")
    print(f"noisy signal RMSE:            {rmse(noisy):.4f}")

    exact = smooth_signal_exact(graph, noisy, alpha=0.3)
    print(f"exact PPR filter RMSE:        {rmse(exact):.4f}")

    for improved, label in ((False, "basic   "), (True, "improved")):
        for num_forests in (8, 64):
            denoised = smooth_signal_forests(graph, noisy, alpha=0.3,
                                             num_forests=num_forests,
                                             improved=improved, rng=7)
            print(f"forest filter ({label}, {num_forests:3d} forests) "
                  f"RMSE: {rmse(denoised):.4f}")

    print("\nthe improved estimator needs ~an order of magnitude fewer")
    print("forests for the same quality (Lemma 5.1's variance reduction),")
    print("and neither touches a linear solver.")


if __name__ == "__main__":
    main()
