"""PPR on directed graphs — what carries over and what does not.

The paper's theory extends to directed graphs (§2/§3; diverging
forests), and so do the samplers and the *basic* estimators.  What
breaks is Theorem 3.7's degree-conditional root law, which needs
undirectedness — the variance-reduced (improved) estimators are biased
on directed inputs, and this library refuses the combination rather
than silently return wrong numbers.

The demo builds a small citation-style DAG with back-references,
answers source and target queries with the basic-estimator
algorithms, validates against the exact solver, and shows the guard.

Run:  python examples/directed_graphs.py
"""

import numpy as np

import repro
from repro.core import l1_error, single_source, single_target
from repro.exceptions import ConfigError
from repro.graph import from_edges


def citation_style_graph(num_papers: int = 400, seed: int = 21) -> repro.Graph:
    """Each "paper" cites ~4 earlier ones, preferentially recent."""
    rng = np.random.default_rng(seed)
    edges = []
    for paper in range(1, num_papers):
        num_citations = min(paper, 1 + rng.poisson(3))
        # recency bias: quadratic weight toward recent papers
        candidates = np.arange(paper)
        weights = (candidates + 1.0) ** 2
        cited = rng.choice(candidates, size=num_citations, replace=False,
                           p=weights / weights.sum())
        edges.extend((paper, int(c)) for c in cited)
    return from_edges(edges, num_nodes=num_papers, directed=True)


def main() -> None:
    graph = citation_style_graph()
    print(f"citation-style DAG: {graph}")
    print(f"dangling papers (no outgoing citations): "
          f"{int(np.sum(graph.degrees == 0))}\n")

    newest = graph.num_nodes - 1
    exact = repro.exact_single_source(graph, newest, alpha=0.15)
    result = single_source(graph, newest, method="speedl", alpha=0.15,
                           seed=4)
    print(f"influence flowing out of paper {newest} (speedl, basic "
          f"estimator): L1 error {l1_error(result, exact):.4f}")
    print("most-reached papers:",
          [node for node, _ in result.top_k(6) if node != newest][:5])

    # reverse question: who cites into paper 0 (the field's origin)?
    column = repro.exact_single_target(graph, 0, alpha=0.15)
    answer = single_target(graph, 0, method="backl", alpha=0.15, seed=4)
    print(f"\ninfluence flowing into paper 0 (backl): "
          f"L1 error {l1_error(answer, column):.4f}")

    print("\nthe improved-estimator variants refuse directed graphs:")
    for method, runner in (("speedlv", single_source),
                           ("backlv", single_target)):
        try:
            runner(graph, 0, method=method, alpha=0.15)
        except ConfigError as error:
            print(f"  {method}: {error}")


if __name__ == "__main__":
    main()
