"""The paper's headline property: forest sampling is insensitive to α.

Sweeps α over three orders of magnitude and reports, side by side:

- the cost of one spanning forest (τ walk steps, Lemma 4.4) — grows
  mildly;
- the cost of the classic Monte-Carlo alternative (n walks of expected
  length 1/α) — explodes;
- SPEEDLV's end-to-end query time and accuracy at each α.

Run:  python examples/alpha_sensitivity.py
"""

import time

import numpy as np

import repro
from repro.core import PPRConfig, l1_error
from repro.forests import sample_forest
from repro.linalg import ExactSolver


def main() -> None:
    graph = repro.load_dataset("pokec", scale=0.25)
    n = graph.num_nodes
    print(f"graph: {graph}\n")
    print(f"{'alpha':>8} | {'tau (1 forest)':>14} | {'naive n/alpha':>13} "
          f"| {'speedlv sec':>11} | {'L1 error':>9}")
    print("-" * 70)

    rng = np.random.default_rng(4)
    for alpha in (0.2, 0.05, 0.01, 0.002):
        forest = sample_forest(graph, alpha, rng=rng)
        exact = ExactSolver(graph, alpha).single_source(0)
        config = PPRConfig(alpha=alpha, epsilon=0.5, budget_scale=0.02,
                           seed=9)
        started = time.perf_counter()
        result = repro.single_source(graph, 0, method="speedlv",
                                     config=config)
        elapsed = time.perf_counter() - started
        print(f"{alpha:8} | {forest.num_steps:14d} | {n / alpha:13.0f} "
              f"| {elapsed:11.3f} | {l1_error(result, exact):9.5f}")

    print("\ntau grows by a small factor while n/alpha grows 100x —")
    print("the reason the forest-based algorithms win at small alpha.")


if __name__ == "__main__":
    main()
