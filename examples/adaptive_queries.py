"""Adaptive top-k and heavy-hitter queries (sequential forest sampling).

Because every sampled forest is a full-vector observation, the query
engine can watch per-node confidence intervals *while sampling* and
stop the moment the answer is statistically settled — far earlier than
a fixed worst-case budget.  This example runs:

1. an adaptive top-10 query, reporting how many forests the stopping
   rule actually needed and checking the answer against the exact
   ranking;
2. a heavy-hitters query (all nodes with π(s, v) above a threshold);
3. a batch workload that amortises one forest bank across many
   sources (the §5.3 index as an explicit lifecycle).

Run:  python examples/adaptive_queries.py
"""

import time

import numpy as np

import repro
from repro.core import (
    BatchSourceSolver,
    heavy_hitters,
    top_k_single_source,
)

ALPHA = 0.05


def main() -> None:
    graph = repro.load_dataset("livejournal", scale=0.25)
    source = 17
    print(f"graph: {graph}, source node {source}\n")

    exact = repro.exact_single_source(graph, source, ALPHA)

    # --- adaptive top-k ---------------------------------------------
    result = top_k_single_source(graph, source, 10, alpha=ALPHA,
                                 confidence=0.95, seed=5,
                                 budget_scale=0.05)
    true_top = set(np.argsort(-exact)[:10].tolist())
    overlap = len(set(result.nodes.tolist()) & true_top)
    print(f"adaptive top-10: stopped after {result.num_forests} forests "
          f"(converged={result.converged}); {overlap}/10 agree with the "
          f"exact ranking")
    for node, estimate in result.as_pairs()[:5]:
        print(f"  node {node:6d}  pi^ = {estimate:.5f} "
              f"(exact {exact[node]:.5f})")

    # --- heavy hitters ----------------------------------------------
    threshold = 0.005
    hitters = heavy_hitters(graph, source, threshold, alpha=ALPHA,
                            seed=6, budget_scale=0.05)
    true_hitters = set(np.flatnonzero(exact > threshold).tolist())
    print(f"\nheavy hitters (pi > {threshold}): found "
          f"{hitters.nodes.size}, truth has {len(true_hitters)}, after "
          f"{hitters.num_forests} forests")

    # --- batch workload ---------------------------------------------
    sources = list(range(10))
    started = time.perf_counter()
    solver = BatchSourceSolver(graph, alpha=ALPHA, seed=7,
                               budget_scale=0.05)
    build = time.perf_counter() - started
    started = time.perf_counter()
    for node in sources:
        solver.query(node)
    per_query = (time.perf_counter() - started) / len(sources)
    print(f"\nbatch: one bank of {solver.num_forests} forests built in "
          f"{build:.3f}s serves all {len(sources)} sources at "
          f"{per_query * 1000:.1f} ms/query")


if __name__ == "__main__":
    main()
