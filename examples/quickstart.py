"""Quickstart: single-source and single-target PPR in a dozen lines.

Loads a synthetic stand-in for the paper's Youtube graph, answers one
single-source query with the paper's best online algorithm (SPEEDLV)
and one single-target query (BACKLV), and checks both against the
exact sparse-LU ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

ALPHA = 0.01  # the paper's headline small decay factor


def main() -> None:
    graph = repro.load_dataset("youtube", scale=0.25)
    print(f"graph: {graph}")

    # --- single source: what matters to node 0? --------------------
    source = 0
    result = repro.single_source(graph, source, method="speedlv",
                                 alpha=ALPHA, budget_scale=0.05, seed=7)
    exact = repro.exact_single_source(graph, source, ALPHA)
    from repro.core import l1_error
    print(f"\nsingle source from {source} via {result.method}:")
    print(f"  estimated mass  {result.total_mass:.4f} (exact: 1.0)")
    print(f"  L1 error        {l1_error(result, exact):.5f}")
    print(f"  forests sampled {result.stats['num_forests']}, "
          f"walk steps saved vs naive MC: "
          f"~{graph.num_nodes / ALPHA:.0f} -> "
          f"{result.stats['forest_steps']}")
    print("  top 5 nodes:")
    for node, score in result.top_k(5):
        print(f"    node {node:6d}  pi = {score:.5f} "
              f"(exact {exact[node]:.5f})")

    # --- single target: to whom does the biggest hub matter? -------
    target = int(np.argmax(graph.degrees))
    answer = repro.single_target(graph, target, method="backlv",
                                 alpha=ALPHA, budget_scale=0.05, seed=7)
    exact_column = repro.exact_single_target(graph, target, ALPHA)
    print(f"\nsingle target {target} (degree {graph.degrees[target]:.0f}) "
          f"via {answer.method}:")
    print(f"  L1 error        {l1_error(answer, exact_column):.5f}")
    print(f"  pushes {answer.stats['num_pushes']}, "
          f"forests {answer.stats['num_forests']}")


if __name__ == "__main__":
    main()
