"""Fig. 4 — L1 error of the six online single-source algorithms.

Paper's shape: FORALV (improved estimator) most accurate, FORA in the
middle, FORAL (basic estimator, dependent variables) worst; the SPEED*
counterparts follow the same ordering slightly below.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("livejournal", "orkut") if full_protocol()
            else ("livejournal",))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)


def bench_fig4(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig4_l1_error(
            DATASETS, experiments.ONLINE_SOURCE_METHODS, EPSILONS,
            alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 4: single-source L1 error (alpha=0.01)", rows)

    for dataset in DATASETS:
        foralv = mean_of(rows, "mean_l1_error", dataset=dataset,
                         method="foralv")
        fora = mean_of(rows, "mean_l1_error", dataset=dataset,
                       method="fora")
        foral = mean_of(rows, "mean_l1_error", dataset=dataset,
                        method="foral")
        speedlv = mean_of(rows, "mean_l1_error", dataset=dataset,
                          method="speedlv")
        # the paper's ordering: FORALV < FORA < FORAL
        assert foralv < fora < foral
        # the variance-reduced SPEED variant is the most accurate overall
        assert speedlv <= foralv * 1.5
