"""Fig. 11 — single-target query cost on general weighted graphs.

Paper's shape: BACKLV achieves ~2× speedups over BACK at α = 0.01 —
asserted on the machine-independent work counters, since the
vectorized push backend gives pure-push BACK a NumPy constant-factor
wall-clock advantage a compiled implementation would not see (the
"counters over clocks" rule of docs/BENCHMARKING.md).
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("dblp", "stackoverflow") if full_protocol() else ("dblp",))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)
TARGET_FRACTION = 0.02 if full_protocol() else 0.005


def bench_fig11(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig11_weighted_target_time(
            DATASETS, experiments.TARGET_METHODS, EPSILONS, alpha=0.01,
            target_fraction=TARGET_FRACTION),
        rounds=1, iterations=1)
    show_table("Fig 11: weighted-graph single-target cost (alpha=0.01)",
               rows)

    tight = min(EPSILONS)
    for dataset in DATASETS:
        back_work = mean_of(rows, "mean_work", dataset=dataset,
                            method="back", epsilon=tight)
        backlv_work = mean_of(rows, "mean_work", dataset=dataset,
                              method="backlv", epsilon=tight)
        assert backlv_work < back_work
