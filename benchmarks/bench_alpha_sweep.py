"""α-sweep — the paper's central claim isolated.

Covers both the full-version α = 0.2 setting and the small-α regime:
FORA's Monte-Carlo cost grows like 1/α while FORALV's (forest
sampling) barely moves, so the walk/forest cost ratio must grow
monotonically as α shrinks.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

ALPHAS = (0.2, 0.05, 0.01, 0.002) if full_protocol() else (0.2, 0.02, 0.002)


def bench_alpha_sweep(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.alpha_sweep_single_source(alphas=ALPHAS),
        rounds=1, iterations=1)
    show_table("Alpha sweep: walk vs forest Monte-Carlo cost", rows)

    ratios = []
    for alpha in ALPHAS:
        walk = mean_of(rows, "mean_mc_steps", alpha=alpha, method="fora")
        forest = mean_of(rows, "mean_mc_steps", alpha=alpha,
                         method="foralv")
        ratios.append(walk / max(forest, 1.0))
    # the advantage of forests must widen as alpha shrinks
    assert ratios == sorted(ratios), (
        f"walk/forest cost ratio should grow as alpha shrinks: {ratios}")
    assert ratios[-1] > 2 * ratios[0]
