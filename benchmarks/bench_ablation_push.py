"""Ablation C — classic vs balanced forward push (§5.2).

The balanced variant pays more push work for a uniform residual
ceiling — exactly the quantity ω = ⌈r_max·W⌉ depends on.
"""

from repro.bench import experiments


def bench_ablation_push(benchmark, show_table):
    r_maxes = (0.01, 0.001)
    rows = benchmark.pedantic(
        lambda: experiments.ablation_push_variants(r_maxes=r_maxes),
        rounds=1, iterations=1)
    show_table("Ablation: classic vs balanced forward push", rows)

    for r_max in r_maxes:
        classic = next(r for r in rows if r["variant"] == "classic"
                       and r["r_max"] == r_max)
        balanced = next(r for r in rows if r["variant"] == "balanced"
                        and r["r_max"] == r_max)
        assert balanced["residual_ceiling"] <= r_max + 1e-12
        # the classic threshold is degree-scaled, so it stops earlier
        assert classic["pushes"] <= balanced["pushes"]
