"""Parallel chunked forest-sampling engine: equivalence + speedup.

Two claims are asserted on a 20k-node Chung–Lu graph:

1. **Determinism** — with a fixed seed, the estimator stage run with 4
   workers is bit-identical to the serial run (always asserted);
2. **Throughput** — 4 workers beat serial by ≥2× on the batch
   estimator fold (asserted only when the host actually has ≥4 CPUs
   and the ``fork`` start method; a single-core CI runner cannot show
   a parallel speedup, only destroy it).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from repro.graph.generators import chung_lu
from repro.parallel import parallel_estimate_stage

ALPHA = 0.1
NODES = 20_000
FORESTS = 64
SEED = 2022


def _speedup_measurable() -> bool:
    return ((os.cpu_count() or 1) >= 4
            and "fork" in multiprocessing.get_all_start_methods())


def bench_parallel_engine(benchmark, show_table):
    degrees = 2.0 + 8.0 * (np.arange(NODES, dtype=np.float64) % 97) / 96.0
    graph = chung_lu(degrees, rng=SEED)
    graph.alias_table  # exclude one-time table build from both timings
    residual = np.zeros(graph.num_nodes)
    residual[:256] = 1.0 / 256.0

    def run(workers: int):
        started = time.perf_counter()
        stage = parallel_estimate_stage(graph, ALPHA, FORESTS, residual,
                                        kind="source", improved=True,
                                        rng=SEED, workers=workers)
        return stage, time.perf_counter() - started

    def measure():
        serial_stage, serial_seconds = run(1)
        parallel_stage, parallel_seconds = run(4)
        return [{
            "workers": 1, "seconds": serial_seconds,
            "forests": serial_stage.drawn,
            "walk_steps": serial_stage.counters.walk_steps,
            "chunks": serial_stage.num_chunks,
        }, {
            "workers": 4, "seconds": parallel_seconds,
            "forests": parallel_stage.drawn,
            "walk_steps": parallel_stage.counters.walk_steps,
            "chunks": parallel_stage.num_chunks,
            "identical_to_serial": bool(
                np.array_equal(serial_stage.sums, parallel_stage.sums)),
            "speedup": serial_seconds / max(parallel_seconds, 1e-12),
        }]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    show_table(f"Parallel engine on n={NODES} Chung-Lu "
               f"({FORESTS} forests, alpha={ALPHA})", rows)

    parallel_row = rows[1]
    assert parallel_row["identical_to_serial"], \
        "workers=4 changed the estimates — determinism contract broken"
    assert rows[0]["walk_steps"] == parallel_row["walk_steps"]
    if _speedup_measurable():
        assert parallel_row["speedup"] >= 2.0, (
            f"expected >=2x at 4 workers on a >=4-core host, got "
            f"{parallel_row['speedup']:.2f}x")
