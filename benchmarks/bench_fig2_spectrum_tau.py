"""Fig. 2 — eigenvalue density of P and the τ statistic vs α.

Paper's claims: (a, b) the spectrum of P on real graphs concentrates
around 0; (c, d) consequently τ grows only mildly as α decays
exponentially (while naive walk cost n/α explodes).
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = ("youtube", "pokec")


def bench_fig2_density(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig2_eigenvalue_density(DATASETS, bins=20),
        rounds=1, iterations=1)
    show_table("Fig 2(a,b): eigenvalue density of P", rows)

    for dataset in DATASETS:
        subset = [r for r in rows if r["dataset"] == dataset]
        central = sum(r["pdf"] for r in subset if abs(r["eigenvalue"]) < 0.4)
        assert central > 0.5, "spectrum should concentrate near 0"


def bench_fig2_tau(benchmark, show_table):
    alphas = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5) if full_protocol() else (
        1e-1, 1e-2, 1e-3)
    rows = benchmark.pedantic(
        lambda: experiments.fig2_tau_vs_alpha(DATASETS, alphas=alphas),
        rounds=1, iterations=1)
    show_table("Fig 2(c,d): tau vs alpha", rows)

    for dataset in DATASETS:
        subset = sorted((r for r in rows if r["dataset"] == dataset),
                        key=lambda r: -r["alpha"])
        # tau grows as alpha decreases, but far slower than n/alpha
        growth_tau = subset[-1]["tau_sampled"] / subset[0]["tau_sampled"]
        growth_naive = (subset[-1]["naive_walk_steps"]
                        / subset[0]["naive_walk_steps"])
        assert growth_tau < growth_naive / 5
        for row in subset:
            assert row["tau_sampled"] < row["naive_walk_steps"]
