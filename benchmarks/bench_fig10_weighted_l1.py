"""Fig. 10 — L1 error on general weighted graphs.

Paper's shape: same ordering as Fig. 4 (FORALV < FORA < FORAL), with
SPEEDLV the overall winner.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("dblp", "stackoverflow") if full_protocol() else ("dblp",))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)


def bench_fig10(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig10_weighted_l1_error(
            DATASETS, experiments.ONLINE_SOURCE_METHODS, EPSILONS,
            alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 10: weighted-graph L1 error (alpha=0.01)", rows)

    for dataset in DATASETS:
        foralv = mean_of(rows, "mean_l1_error", dataset=dataset,
                         method="foralv")
        fora = mean_of(rows, "mean_l1_error", dataset=dataset,
                       method="fora")
        foral = mean_of(rows, "mean_l1_error", dataset=dataset,
                        method="foral")
        assert foralv < fora < foral
