"""Serving layer: micro-batched throughput + bit-identical answers.

Two claims are asserted on a 20k-node Chung–Lu graph with a Zipf(1.1)
source stream at batch size 32:

1. **Determinism** — every answer the service produces is
   byte-identical to a direct :class:`~repro.core.batch.BatchSourceSolver`
   call against an independently-built bank at the same seed (always
   asserted; micro-batching changes *when* work happens, never *what*
   is computed);
2. **Throughput** — closed-loop micro-batched serving beats the naive
   per-request ``single_source`` path by ≥3× (the naive path resamples
   its forests on every request; the service amortises one shared bank
   and folds whole batches in two sparse products).

The workload runs the in-process facade (:meth:`PPRService.query_result`)
so the measurement captures scheduling + batching + solving without
HTTP noise; the HTTP front end is exercised by the CI smoke job
instead.  The result cache is disabled — the claim is about batching,
not memoisation.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.api import single_source
from repro.graph.generators import chung_lu
from repro.service import PPRService, ServiceConfig
from repro.service.loadgen import zipf_nodes

ALPHA = 0.1
EPSILON = 0.5
BUDGET_SCALE = 0.05
NODES = 20_000
SEED = 2022
MAX_BATCH = 32
NAIVE_QUERIES = 16
SERVED_QUERIES = 256
CONCURRENCY = 32


def _bench_graph():
    degrees = 2.0 + 8.0 * (np.arange(NODES, dtype=np.float64) % 97) / 96.0
    return chung_lu(degrees, rng=SEED)


def _service_config() -> ServiceConfig:
    return ServiceConfig(graph="bench", alpha=ALPHA, epsilon=EPSILON,
                         budget_scale=BUDGET_SCALE, seed=SEED,
                         max_batch=MAX_BATCH, max_wait_ms=15.0,
                         queue_capacity=1024, cache_entries=0)


def _drive(service: PPRService, stream: np.ndarray) -> float:
    """Closed-loop load: CONCURRENCY clients, each its own node slice."""
    errors: list[BaseException] = []

    def client(chunk: np.ndarray) -> None:
        try:
            for node in chunk:
                service.query_result("source", int(node), use_cache=False)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=client, args=(chunk,))
               for chunk in np.array_split(stream, CONCURRENCY)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def bench_service_throughput(benchmark, show_table):
    graph = _bench_graph()
    graph.alias_table  # shared one-time cost, exclude from both timings
    stream = zipf_nodes(NODES, SERVED_QUERIES, exponent=1.1, seed=7)

    def measure():
        started = time.perf_counter()
        for node in stream[:NAIVE_QUERIES]:
            single_source(graph, int(node), method="speedlv", alpha=ALPHA,
                          epsilon=EPSILON, budget_scale=BUDGET_SCALE,
                          seed=SEED)
        naive_per_query = (time.perf_counter() - started) / NAIVE_QUERIES

        config = _service_config()
        with PPRService(config, graph=graph) as service:
            service.query_result("source", 0, use_cache=False)  # warm bank
            elapsed = _drive(service, stream)
            snapshot = service.metrics.snapshot()
            # spot-check: the service's answers are byte-identical to a
            # *separately built* direct solver at the same configuration
            manager = PPRService(config, graph=graph).index_manager
            direct = manager.get_solver(config.graph, "source",
                                        alpha=ALPHA, epsilon=EPSILON)
            identical = all(
                np.array_equal(
                    service.query_result("source", int(node),
                                         use_cache=False)[0].estimates,
                    direct.query(int(node)).estimates)
                for node in stream[:8])

        served_per_query = elapsed / stream.size
        batches = max(snapshot["batches"], 1)
        return [{
            "path": "per-request single_source",
            "queries": NAIVE_QUERIES,
            "ms_per_query": 1000 * naive_per_query,
            "qps": 1.0 / naive_per_query,
        }, {
            "path": f"micro-batched service (max_batch={MAX_BATCH})",
            "queries": stream.size,
            "ms_per_query": 1000 * served_per_query,
            "qps": 1.0 / served_per_query,
            "batches": snapshot["batches"],
            "mean_batch": stream.size / batches,
            "identical_to_direct": identical,
            "speedup": naive_per_query / served_per_query,
        }]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    show_table(f"Serving throughput on n={NODES} Chung-Lu "
               f"(Zipf(1.1) stream, alpha={ALPHA})", rows)

    service_row = rows[1]
    assert service_row["identical_to_direct"], \
        "micro-batched answers diverged from direct solver calls"
    assert service_row["mean_batch"] > 1.5, (
        f"scheduler failed to batch (mean batch "
        f"{service_row['mean_batch']:.2f})")
    assert service_row["speedup"] >= 3.0, (
        f"expected >=3x over per-request single_source, got "
        f"{service_row['speedup']:.2f}x")


SCALING_QUERIES = 192
SCALING_WORKERS = (1, 2, 4)


def bench_service_worker_scaling(benchmark, show_table):
    """Process-executor scaling: qps at 1/2/4 workers vs thread mode.

    The thread-mode fold serializes on the GIL, so adding front-end
    threads cannot add throughput; the process executor folds batches
    in forked workers over shared-memory banks.  On a box with >=4
    cores, 4 workers must deliver >=2x the thread-mode qps (the CSR
    folds are pure compute, so the pool's speedup is near-linear until
    the core count runs out).  Thread mode (``workers=0``) and the
    2/4-worker process modes all build through the parallel engine,
    whose output is bit-identical across worker counts — so those
    modes must serve byte-identical answers (``workers=1`` draws its
    bank from the serial sampler and is excluded from the digest
    check).
    """
    graph = _bench_graph()
    graph.alias_table
    stream = zipf_nodes(NODES, SCALING_QUERIES, exponent=1.1, seed=11)

    def run_mode(executor: str, workers: int) -> dict:
        config = ServiceConfig(graph="bench", alpha=ALPHA,
                               epsilon=EPSILON,
                               budget_scale=BUDGET_SCALE, seed=SEED,
                               max_batch=MAX_BATCH, max_wait_ms=15.0,
                               queue_capacity=1024, cache_entries=0,
                               workers=workers, executor=executor)
        with PPRService(config, graph=graph) as service:
            service.query_result("source", 0, use_cache=False)
            elapsed = _drive(service, stream)
            stats = service.healthz()["executor"]
            digest = service.query_result(
                "source", 1, use_cache=False)[0].estimates.tobytes()
        label = (f"process x{workers}" if executor == "process"
                 else "thread")
        return {
            "mode": label,
            "workers": workers,
            "qps": stream.size / elapsed,
            "ms_per_query": 1000 * elapsed / stream.size,
            "fallbacks": service.scheduler.fallback_batches,
            "respawns": stats.get("respawns", 0),
            "_digest": digest,
        }

    def measure():
        # workers=0 -> engine build, same bank bytes as process mode
        rows = [run_mode("thread", 0)]
        for workers in SCALING_WORKERS:
            rows.append(run_mode("process", workers))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    digests = set()
    for row in rows:
        digest = row.pop("_digest")
        if row["workers"] != 1:  # serial-sampler bank differs by design
            digests.add(digest)
    show_table(f"Executor scaling on n={NODES} Chung-Lu "
               f"({SCALING_QUERIES} queries, max_batch={MAX_BATCH})",
               rows)

    assert len(digests) == 1, \
        "executor modes returned different estimate bytes"
    assert all(row["fallbacks"] == 0 for row in rows[1:]), \
        "process executor fell back to inline folding"
    assert all(row["respawns"] == 0 for row in rows[1:]), \
        "workers crashed during the scaling run"
    cores = os.cpu_count() or 1
    thread_qps = rows[0]["qps"]
    four_worker_qps = rows[-1]["qps"]
    if cores >= 4:
        assert four_worker_qps >= 2.0 * thread_qps, (
            f"expected >=2x thread-mode qps with 4 workers on "
            f"{cores} cores, got {four_worker_qps / thread_qps:.2f}x")
    else:
        print(f"\n(cpu_count={cores}: scaling assertion skipped; "
              f"4-worker/thread ratio {four_worker_qps / thread_qps:.2f}x)")


SHARDED_ALPHA = 0.25
SHARDED_QUERIES = 192


def bench_service_sharded_scaling(benchmark, show_table):
    """Scatter-gather sharding: 4 shards x 1 worker vs 1 shard x 4.

    Both deployments spend four worker processes; the difference is
    where the parallelism lives.  The closed loop keeps roughly one
    micro-batch in flight (CONCURRENCY == MAX_BATCH), so the unsharded
    pool folds it on one worker while three idle — extra workers only
    help across *batches*.  The shard router splits every batch's fold
    across all four pools (each folds only its ~1/4 of the output
    rows), parallelising *within* the batch, which is the regime real
    low-concurrency serving sits in.  α is raised to 0.25 so the
    per-shard duplicated push stays cheap relative to the bank fold —
    the part sharding divides.  On >=4 cores the sharded deployment
    must deliver >=1.5x the single-pool qps; answers must stay
    byte-identical to a direct unsharded solver at the same seed.
    """
    graph = _bench_graph()
    graph.alias_table
    stream = zipf_nodes(NODES, SHARDED_QUERIES, exponent=1.1, seed=13)

    def run_mode(shards: int, workers: int) -> dict:
        config = ServiceConfig(graph="bench", alpha=SHARDED_ALPHA,
                               epsilon=EPSILON,
                               budget_scale=BUDGET_SCALE, seed=SEED,
                               max_batch=MAX_BATCH, max_wait_ms=15.0,
                               queue_capacity=1024, cache_entries=0,
                               workers=workers, executor="process",
                               shards=shards)
        with PPRService(config, graph=graph) as service:
            service.query_result("source", 0, use_cache=False)
            elapsed = _drive(service, stream)
            stats = service.healthz()["executor"]
            digest = service.query_result(
                "source", 1, use_cache=False)[0].estimates.tobytes()
        return {
            "mode": f"{shards} shard(s) x {workers} worker(s)",
            "qps": stream.size / elapsed,
            "ms_per_query": 1000 * elapsed / stream.size,
            "fallbacks": service.scheduler.fallback_batches,
            "respawns": stats.get("respawns", 0),
            "_digest": digest,
        }

    def measure():
        return [run_mode(1, 4), run_mode(4, 1)]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    digests = [row.pop("_digest") for row in rows]
    show_table(f"Sharded scatter-gather on n={NODES} Chung-Lu "
               f"({SHARDED_QUERIES} queries, alpha={SHARDED_ALPHA})",
               rows)

    # bit-identity: the sharded deployment (serial-sampler bank, same
    # as a workers=1 build) must answer exactly like a direct solver
    # over an independently built unsharded bank at the same seed
    from repro.core.config import PPRConfig
    from repro.service import IndexManager

    manager = IndexManager(PPRConfig(
        alpha=SHARDED_ALPHA, epsilon=EPSILON, seed=SEED,
        budget_scale=BUDGET_SCALE, workers=1))
    manager.register_graph("bench", graph)
    direct = manager.get_solver("bench", "source", alpha=SHARDED_ALPHA,
                                epsilon=EPSILON)
    assert digests[1] == direct.query(1).estimates.tobytes(), \
        "sharded answers diverged from the unsharded direct solver"
    assert all(row["fallbacks"] == 0 for row in rows), \
        "a deployment fell back to inline folding"
    assert all(row["respawns"] == 0 for row in rows), \
        "workers crashed during the sharded run"

    cores = os.cpu_count() or 1
    ratio = rows[1]["qps"] / rows[0]["qps"]
    if cores >= 4:
        assert ratio >= 1.5, (
            f"expected >=1.5x qps from 4 shards x 1 worker over "
            f"1 shard x 4 workers on {cores} cores, got {ratio:.2f}x")
    else:
        print(f"\n(cpu_count={cores}: sharding assertion skipped; "
              f"sharded/pooled ratio {ratio:.2f}x)")
