"""Fig. 6 — index size.

Paper's shape: all four indexes have comparable footprints (a forest
stores one root per node; a walk stores one endpoint per walk, with
~n log n walks vs log n forests of n entries each).
"""

from conftest import full_protocol

from repro.bench import experiments

DATASETS = (("livejournal", "orkut") if full_protocol()
            else ("livejournal",))


def bench_fig6(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig6_index_size(DATASETS, alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 6: index size (MB)", rows)

    for dataset in DATASETS:
        sizes = {row["method"]: row["index_mb"] for row in rows
                 if row["dataset"] == dataset}
        # comparable within an order of magnitude, as in the paper
        assert max(sizes.values()) / max(min(sizes.values()), 1e-9) < 40
        for size in sizes.values():
            assert size > 0
        # dtype-aware bank sizes (forest indexes only): float32
        # storage must meaningfully shrink the serialized bank
        for row in rows:
            if row["dataset"] != dataset or row["bank_mb_f64"] == "":
                continue
            assert row["bank_mb_f64"] > 0
            assert row["bank_mb_f32"] < 0.75 * row["bank_mb_f64"]
