"""Table 1 — dataset statistics (stand-ins next to the SNAP originals)."""

from conftest import full_protocol

from repro.bench import experiments


def bench_table1(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.table1(),
        rounds=1, iterations=1)
    show_table("Table 1: datasets (paper vs stand-in)", rows)

    assert len(rows) == 7
    names = [row["dataset"] for row in rows]
    assert names[:5] == ["youtube", "pokec", "livejournal", "orkut",
                         "twitter"]
    assert names[5:] == ["dblp", "stackoverflow"]
    # the stand-in degree ordering must keep youtube sparsest and
    # orkut densest among the unweighted graphs, like the original
    unweighted = {row["dataset"]: row["avg_degree"] for row in rows[:5]}
    assert unweighted["youtube"] == min(unweighted.values())
    assert unweighted["orkut"] == max(unweighted.values())
