"""Fig. 9 — single-source query cost on general weighted graphs.

Paper's shape: consistent with Fig. 3 — the forest-based methods'
Monte-Carlo stage does far less work; the SPEED* family is fastest.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("dblp", "stackoverflow") if full_protocol() else ("dblp",))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)


def bench_fig9(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig9_weighted_source_time(
            DATASETS, experiments.ONLINE_SOURCE_METHODS, EPSILONS,
            alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 9: weighted-graph single-source cost (alpha=0.01)",
               rows)

    for dataset in DATASETS:
        fora_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                             method="fora")
        foralv_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                               method="foralv")
        assert foralv_steps < fora_steps
