"""Ablation D — amortising one forest bank across many queries.

The forests do not depend on the query node, so a shared bank
(BatchSourceSolver) answers each subsequent query with only a push —
the practical payoff of the §5.3 index restated as a batch API.
"""

from repro.bench import experiments


def bench_ablation_batch(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.ablation_batch_amortization(num_queries=6),
        rounds=1, iterations=1)
    show_table("Ablation: batch forest reuse vs online queries", rows)

    row = rows[0]
    # once the bank exists, a batch query must be cheaper than a full
    # online query (which samples fresh forests every time)
    assert (row["batch_mean_query_seconds"]
            < row["online_mean_query_seconds"])
    assert row["bank_forests"] >= 1
