"""Shared benchmark plumbing.

Each ``bench_*.py`` file regenerates one table/figure of the paper.
Default parameters are laptop-sized; set the environment variables

- ``REPRO_BENCH_FULL=1``        — full dataset / epsilon grids
- ``REPRO_BENCH_GRAPH_SCALE``   — stand-in graph scale (default 0.25)
- ``REPRO_BENCH_QUERIES``       — query nodes per configuration
- ``REPRO_BENCH_BUDGET``        — Monte-Carlo budget scale

to approach the paper's full protocol.  Every bench prints its rows as
a markdown table (visible with ``pytest -s`` or in captured output on
failure) and asserts the paper's qualitative *shape*.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import format_markdown_table


def full_protocol() -> bool:
    """Whether the full-grid protocol was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def is_full():
    return full_protocol()


@pytest.fixture
def show_table():
    """Print rows as a markdown table under a heading."""
    def _show(title: str, rows: list[dict], columns=None) -> None:
        print(f"\n### {title}\n")
        print(format_markdown_table(rows, columns))
    return _show


def mean_of(rows, value_key, **filters) -> float:
    """Average ``value_key`` over rows matching all ``filters``."""
    values = [row[value_key] for row in rows
              if all(row.get(k) == v for k, v in filters.items())]
    assert values, f"no rows match {filters}"
    return sum(values) / len(values)
