"""Fig. 3 — single-source query cost, α = 0.01, unweighted graphs.

Paper's shape: the forest-based Monte-Carlo stage (FORAL/FORALV,
SPEEDL/SPEEDLV) does far less sampling work than the walk-based stage
of FORA/SPEEDPPR at small α, and the SPEED* family is the fastest.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (experiments.UNWEIGHTED_DATASETS if full_protocol()
            else ("youtube", "pokec"))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)


def bench_fig3(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig3_single_source_time(
            DATASETS, experiments.ONLINE_SOURCE_METHODS, EPSILONS,
            alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 3: single-source query cost (alpha=0.01)", rows)

    for dataset in DATASETS:
        # forest sampling beats walk sampling on Monte-Carlo work — the
        # machine-independent form of the paper's headline speedup
        # (wall clock at this laptop scale is constant-dominated, so
        # the counters carry the comparison; see DESIGN.md §1)
        fora_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                             method="fora")
        foralv_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                               method="foralv")
        assert foralv_steps < fora_steps, (
            f"{dataset}: forest MC stage should do less sampling work")
        speedppr_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                                 method="speedppr")
        speedlv_steps = mean_of(rows, "mean_mc_steps", dataset=dataset,
                                method="speedlv")
        assert speedlv_steps < speedppr_steps
