"""Fig. 12 — query-time distribution by query-node degree class.

Paper's shape: single-source times (SU/SH/SL) have a small spread
regardless of the query node's degree; single-target times depend
strongly on it — low-degree targets (TL) finish orders of magnitude
faster than high-degree ones (TH).
"""

from conftest import full_protocol

from repro.bench import experiments

DATASETS = (("youtube", "pokec") if full_protocol() else ("youtube",))


def bench_fig12(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig12_query_distributions(DATASETS,
                                                      alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 12: query-time distribution (SPEEDLV / BACKLV)",
               rows, columns=["dataset", "mode", "median", "min", "max"])

    for dataset in DATASETS:
        by_mode = {row["mode"]: row for row in rows
                   if row["dataset"] == dataset}
        # target queries: low-degree targets far cheaper than high-degree
        assert by_mode["TL"]["median"] < by_mode["TH"]["median"]
        # source queries: spread across degree classes stays moderate
        source_medians = [by_mode[m]["median"] for m in ("SU", "SH", "SL")]
        assert max(source_medians) < 12 * max(min(source_medians), 1e-4)
