"""Fig. 5 — index construction time (§5.3).

Paper's shape: SPEEDLV+ builds fastest, then FORALV+, then SPEEDPPR+,
then FORA+ — because O(log n) forests replace O(n log n) walks and a
forest costs τ ≪ n/α steps to sample.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("livejournal", "orkut") if full_protocol()
            else ("livejournal",))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)


def bench_fig5(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig5_index_build(DATASETS, EPSILONS,
                                             alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 5: index construction (alpha=0.01)", rows)

    for dataset in DATASETS:
        build = {method: mean_of(rows, "build_steps", dataset=dataset,
                                 method=method)
                 for method in ("fora+", "speedppr+", "foralv+", "speedlv+")}
        # forest indexes need far fewer sampling steps than walk indexes
        assert build["speedlv+"] < build["speedppr+"]
        assert build["foralv+"] < build["fora+"]
