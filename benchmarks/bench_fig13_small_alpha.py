"""Fig. 13 — very small α: accuracy/time trade-off of SPEEDLV.

Paper's shape: SPEEDLV's L1 error stays orders of magnitude below the
degree-weighted-uniform baseline across α = 1e-1 … 1e-5, while its
runtime stays far below the deterministic ground-truth computation,
whose round count scales as 1/α.
"""

from conftest import full_protocol

from repro.bench import experiments

DATASETS = (("youtube", "pokec") if full_protocol() else ("youtube",))
ALPHAS = ((1e-1, 1e-2, 1e-3, 1e-4, 1e-5) if full_protocol()
          else (1e-1, 1e-2, 1e-3, 1e-4))


def bench_fig13(benchmark, show_table):
    # accuracy-focused figure: it needs a larger Monte-Carlo budget
    # than the timing figures (the paper runs the full W here)
    budget = None if full_protocol() else 0.1
    rows = benchmark.pedantic(
        lambda: experiments.fig13_small_alpha(
            DATASETS, alphas=ALPHAS, num_queries=3, budget_scale=budget),
        rounds=1, iterations=1)
    show_table("Fig 13: very small alpha (SPEEDLV vs uniform baseline)",
               rows)

    for row in rows:
        if row["alpha"] >= 1e-3:
            # SPEEDLV clearly beats the degree-uniform baseline; at the
            # tiniest alphas both converge to the stationary vector and
            # the comparison turns on the (scaled) sampling budget
            assert row["speedlv_l1"] < row["uniform_l1"]
    for dataset in DATASETS:
        subset = sorted((r for r in rows if r["dataset"] == dataset),
                        key=lambda r: -r["alpha"])
        # at the smallest alpha the ground truth (1/alpha mat-vec
        # rounds to 1e-9) does far more machine-independent work than
        # the forest-based query
        assert (subset[-1]["speedlv_work"]
                < subset[-1]["ground_truth_work"] / 2)
        # baseline error shrinks as alpha shrinks (convergence to the
        # degree-weighted stationary distribution)
        assert subset[-1]["uniform_l1"] < subset[0]["uniform_l1"]
