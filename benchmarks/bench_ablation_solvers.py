"""Ablation E — deterministic solver baselines.

The related-work ladder at one glance: power iteration (the paper's
"ground-truth" method, 1/α rounds), Chebyshev acceleration ([19, 20],
~√(1/α) effective rounds), and the direct sparse-LU solve used as this
repo's exactness oracle.
"""

import time

import numpy as np

from repro.bench import experiments
from repro.graph.datasets import load_dataset
from repro.linalg import (
    ExactSolver,
    chebyshev_iterations_bound,
    chebyshev_single_source,
    power_iteration_single_source,
)


def _rows(alphas=(0.1, 0.01), tolerance=1e-9):
    graph = load_dataset("youtube", scale=experiments.bench_defaults()["graph_scale"])
    rows = []
    for alpha in alphas:
        started = time.perf_counter()
        power = power_iteration_single_source(graph, 0, alpha,
                                              tolerance=tolerance)
        power_seconds = time.perf_counter() - started

        started = time.perf_counter()
        chebyshev = chebyshev_single_source(graph, 0, alpha,
                                            tolerance=tolerance)
        chebyshev_seconds = time.perf_counter() - started

        started = time.perf_counter()
        solver = ExactSolver(graph, alpha)
        lu = solver.single_source(0)
        lu_seconds = time.perf_counter() - started

        rows.append({
            "alpha": alpha,
            "power_seconds": power_seconds,
            "power_rounds": int(np.ceil(np.log(tolerance)
                                        / np.log1p(-alpha))),
            "chebyshev_seconds": chebyshev_seconds,
            "chebyshev_round_bound": chebyshev_iterations_bound(alpha,
                                                                tolerance),
            "lu_seconds": lu_seconds,
            "max_disagreement": float(max(
                np.abs(power - lu).max(), np.abs(chebyshev - lu).max())),
        })
    return rows


def bench_ablation_solvers(benchmark, show_table):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    show_table("Ablation: deterministic solver ladder", rows)

    for row in rows:
        # all three agree to the requested tolerance
        assert row["max_disagreement"] < 1e-6
        # Chebyshev's round bound beats power iteration's by a widening
        # factor as alpha shrinks
        assert row["chebyshev_round_bound"] < row["power_rounds"]
    small = min(rows, key=lambda r: r["alpha"])
    assert small["chebyshev_round_bound"] < small["power_rounds"] / 3
