"""Vectorized vs scalar push-sweep kernels: equivalence + speedup.

Two claims are asserted on a 20k-node Chung–Lu graph:

1. **Equivalence** — per-query reserve/residual vectors from the
   vectorized backend match the scalar reference to ≤1e-12 and the
   ``num_pushes`` / ``num_sweeps`` work counters are equal (the two
   backends run the same synchronous frontier sweeps, so the counters
   agree by construction);
2. **Throughput** — the vectorized backend beats the scalar loop by
   ≥3× on both the balanced forward push and the backward push.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.generators import chung_lu
from repro.push import backward_push, balanced_forward_push

ALPHA = 0.1
NODES = 20_000
R_MAX = 2e-5
SEED = 2022
MIN_SPEEDUP = 3.0


def bench_push_kernels(benchmark, show_table):
    degrees = 2.0 + 8.0 * (np.arange(NODES, dtype=np.float64) % 97) / 96.0
    graph = chung_lu(degrees, rng=SEED)

    def run(func, backend: str):
        started = time.perf_counter()
        push = func(graph, 0, ALPHA, R_MAX, backend=backend)
        return push, time.perf_counter() - started

    def measure():
        rows = []
        for label, func in (("forward", balanced_forward_push),
                            ("backward", backward_push)):
            scalar, scalar_seconds = run(func, "scalar")
            vectorized, vectorized_seconds = run(func, "vectorized")
            deviation = float(max(
                np.abs(vectorized.reserve - scalar.reserve).max(),
                np.abs(vectorized.residual - scalar.residual).max()))
            rows.append({
                "kernel": label,
                "scalar_seconds": scalar_seconds,
                "vectorized_seconds": vectorized_seconds,
                "speedup": scalar_seconds / max(vectorized_seconds, 1e-12),
                "max_deviation": deviation,
                "pushes": vectorized.num_pushes,
                "pushes_equal": vectorized.num_pushes == scalar.num_pushes,
                "sweeps": vectorized.num_sweeps,
                "sweeps_equal": vectorized.num_sweeps == scalar.num_sweeps,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    show_table(f"Push backends on n={NODES} Chung-Lu "
               f"(alpha={ALPHA}, r_max={R_MAX})", rows)

    for row in rows:
        assert row["max_deviation"] <= 1e-12, (
            f"{row['kernel']}: backends disagree by {row['max_deviation']}")
        assert row["pushes_equal"] and row["sweeps_equal"], (
            f"{row['kernel']}: work counters diverged between backends")
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['kernel']}: expected >={MIN_SPEEDUP}x vectorized "
            f"speedup, got {row['speedup']:.2f}x")
