"""Fig. 7 — indexed query time (online variants for reference).

Paper's shape: every index-based method beats its online counterpart;
FORALV+/SPEEDLV+ sit in the same range as FORA+/SPEEDPPR+ (slightly
slower due to the per-partition sums).
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (("livejournal", "orkut") if full_protocol()
            else ("livejournal",))
EPSILONS = (0.3, 0.5)


def bench_fig7(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig7_index_query(DATASETS, EPSILONS,
                                             alpha=0.01),
        rounds=1, iterations=1)
    show_table("Fig 7: indexed vs online query time (alpha=0.01)", rows)

    for dataset in DATASETS:
        indexed = mean_of(rows, "mean_seconds", dataset=dataset,
                          method="speedlv+")
        online = mean_of(rows, "mean_seconds", dataset=dataset,
                         method="speedlv (online)")
        assert indexed < online * 1.25, (
            "the index should not be slower than online sampling")
