"""Ablation F — single-pair queries: forests vs BiPPR-style walks.

Both share the same backward-push front-end; the difference is the
Monte-Carlo half.  The walk half costs ~1/α steps per sample while the
forest half costs τ per sample but yields n observations — so the
walk/forest cost ratio must grow as α shrinks, mirroring the
full-vector α-sweep.
"""

import time

import numpy as np

from conftest import mean_of

from repro.bench import experiments
from repro.core.pairwise import pair_ppr, pair_ppr_bippr
from repro.graph.datasets import load_dataset
from repro.linalg import ExactSolver

ALPHAS = (0.1, 0.01)


def _rows():
    defaults = experiments.bench_defaults()
    graph = load_dataset("youtube", scale=defaults["graph_scale"])
    rng = np.random.default_rng(17)
    pairs = [(int(rng.integers(graph.num_nodes)),
              int(rng.integers(graph.num_nodes))) for _ in range(4)]
    rows = []
    for alpha in ALPHAS:
        solver = ExactSolver(graph, alpha)
        for label, runner in (("forest", pair_ppr),
                              ("bippr", pair_ppr_bippr)):
            seconds, errors, mc_steps = [], [], []
            for index, (source, target) in enumerate(pairs):
                started = time.perf_counter()
                value = runner(graph, source, target, alpha=alpha,
                               seed=17 + index,
                               budget_scale=defaults["budget_scale"])
                seconds.append(time.perf_counter() - started)
                errors.append(abs(float(value)
                                  - solver.pairwise(source, target)))
                mc_steps.append(value.stats.get("forest_steps", 0)
                                + value.stats.get("walk_steps", 0))
            rows.append({
                "alpha": alpha, "method": label,
                "mean_seconds": float(np.mean(seconds)),
                "mean_abs_error": float(np.mean(errors)),
                "mean_mc_steps": float(np.mean(mc_steps)),
            })
    return rows


def bench_ablation_pair(benchmark, show_table):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    show_table("Ablation: pair queries, forests vs BiPPR walks", rows)

    for row in rows:
        # both estimators stay accurate at the scaled budget
        assert row["mean_abs_error"] < 0.05
    ratios = []
    for alpha in ALPHAS:
        walk = mean_of(rows, "mean_mc_steps", alpha=alpha, method="bippr")
        forest = mean_of(rows, "mean_mc_steps", alpha=alpha,
                         method="forest")
        ratios.append(walk / max(forest, 1.0))
    # for a single pair a forest still costs tau yet contributes only
    # one useful entry, so walks can win outright at moderate alpha —
    # the robust claim is that the walk/forest cost ratio grows as
    # alpha shrinks (the same 1/alpha-vs-tau divergence as Fig 2)
    assert ratios[-1] > ratios[0]
