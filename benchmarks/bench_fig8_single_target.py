"""Fig. 8 — single-target query cost, high-degree targets, α = 0.01.

Paper's shape: BACKLV achieves 1–3× speedups over BACK; RBACK is
no better than BACK (its per-push sampling overhead dominates).

The BACK-vs-BACKLV comparison is asserted on the machine-independent
work counters: with the vectorized push backend a pure-push method's
wall clock rides NumPy's ~100×-cheaper-per-op constant factor, which
a compiled implementation would not see (the "counters over clocks"
rule of docs/BENCHMARKING.md).  RBACK stays a wall-clock assertion —
its overhead *is* per-push bookkeeping, visible only in time.
"""

from conftest import full_protocol, mean_of

from repro.bench import experiments

DATASETS = (experiments.UNWEIGHTED_DATASETS if full_protocol()
            else ("youtube", "pokec"))
EPSILONS = experiments.EPSILONS if full_protocol() else (0.3, 0.5)
# the paper draws targets from the top 10% at millions of nodes; the
# scaled stand-ins compress the degree range, so the pool narrows to
# keep the targets genuinely expensive (see workloads.high_degree_nodes)
TARGET_FRACTION = 0.02 if full_protocol() else 0.005


def bench_fig8(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.fig8_single_target_time(
            DATASETS, experiments.TARGET_METHODS, EPSILONS, alpha=0.01,
            target_fraction=TARGET_FRACTION),
        rounds=1, iterations=1)
    show_table("Fig 8: single-target query time (alpha=0.01, "
               "high-degree targets)", rows)

    # the paper reports 1-3x speedups "under most parameter settings";
    # the effect is decisive at the tighter error thresholds, where
    # BACK's additive threshold forces deep pushes
    tight = min(EPSILONS)
    for dataset in DATASETS:
        back_work = mean_of(rows, "mean_work", dataset=dataset,
                            method="back", epsilon=tight)
        backlv_work = mean_of(rows, "mean_work", dataset=dataset,
                              method="backlv", epsilon=tight)
        backlv_seconds = mean_of(rows, "mean_seconds", dataset=dataset,
                                 method="backlv", epsilon=tight)
        rback_seconds = mean_of(rows, "mean_seconds", dataset=dataset,
                                method="rback", epsilon=tight)
        assert backlv_work < back_work, (
            f"{dataset}: the two-stage method should out-work pure "
            f"backward push on high-degree targets at eps={tight}")
        assert rback_seconds > backlv_seconds
