"""Ablation A — basic vs improved estimator (Lemma 5.1 in practice)."""

from repro.bench import experiments


def bench_ablation_estimators(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.ablation_estimator_variance(num_forests=25),
        rounds=1, iterations=1)
    show_table("Ablation: estimator variance (basic vs improved)", rows)

    import math

    row = rows[0]
    assert row["improved_total_variance"] < row["basic_total_variance"]
    # both estimators are unbiased for the same quantity, so their
    # sample means must agree up to Monte-Carlo noise: the expected L1
    # gap is bounded by sqrt(n * total_variance / num_forests)
    # (Cauchy–Schwarz over nodes); allow a 3x slack
    noise_bound = 3.0 * math.sqrt(
        row["num_nodes"] * row["basic_total_variance"]
        / row["num_forests"])
    assert row["mean_gap_l1"] < noise_bound
