"""Ablation B — reference (Algorithm 1) vs vectorised cycle-popping
sampler: same τ, different constants; both insensitive to α."""

from conftest import mean_of

from repro.bench import experiments


def bench_ablation_samplers(benchmark, show_table):
    rows = benchmark.pedantic(
        lambda: experiments.ablation_sampler_throughput(
            alphas=(0.2, 0.05, 0.01), repetitions=3),
        rounds=1, iterations=1)
    show_table("Ablation: sampler throughput (wilson vs cycle_popping)",
               rows)

    for alpha in (0.2, 0.05, 0.01):
        wilson_steps = mean_of(rows, "mean_steps", alpha=alpha,
                               sampler="wilson")
        popping_steps = mean_of(rows, "mean_steps", alpha=alpha,
                                sampler="cycle_popping")
        # both draw the same distribution, so step counts agree within
        # sampling noise
        assert abs(wilson_steps - popping_steps) < 0.5 * max(
            wilson_steps, popping_steps)
    # the vectorised sampler should win on wall clock at small alpha
    assert mean_of(rows, "mean_seconds", alpha=0.01,
                   sampler="cycle_popping") < mean_of(
        rows, "mean_seconds", alpha=0.01, sampler="wilson")
