"""Setuptools shim.

Kept alongside pyproject.toml so that editable installs work in
offline environments whose setuptools predates PEP 660 (no `wheel`
package available): ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
