"""Sampler tests: structure, determinism, and — crucially — that both
samplers draw the distribution of Theorem 4.3 (checked statistically
against exact PPR via Theorem 3.6, and exactly via a chi-square
goodness-of-fit test against the enumerated rooted-forest law) with
step counts matching τ."""

from itertools import product

import numpy as np
import pytest
from scipy.stats import chi2

from repro.exceptions import ConfigError
from repro.forests import (
    RootedForest,
    sample_forest,
    sample_forest_cycle_popping,
    sample_forest_wilson,
    sample_forests,
)
from repro.forests.enumeration import (
    enumerate_spanning_forests,
    forest_probability,
)
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_ppr_matrix, tau_exact

SAMPLERS = [sample_forest_wilson, sample_forest_cycle_popping]


def _root_frequencies(graph, alpha, sampler, num_samples, seed):
    counts = np.zeros((graph.num_nodes, graph.num_nodes))
    rng = np.random.default_rng(seed)
    total_steps = 0
    for _ in range(num_samples):
        forest = sampler(graph, alpha, rng=rng)
        counts[np.arange(graph.num_nodes), forest.roots] += 1
        total_steps += forest.num_steps
    return counts / num_samples, total_steps / num_samples


class TestStructure:
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_valid_forest(self, random_graph, sampler):
        forest = sampler(random_graph, 0.1, rng=0)
        forest.validate()
        assert forest.num_nodes == random_graph.num_nodes

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_every_node_has_root(self, random_graph, sampler):
        forest = sampler(random_graph, 0.2, rng=1)
        assert np.all(forest.roots >= 0)
        assert forest.num_trees >= 1

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_tree_edges_are_graph_edges(self, random_graph, sampler):
        forest = sampler(random_graph, 0.2, rng=2)
        for node in range(forest.num_nodes):
            parent = forest.parents[node]
            if parent >= 0:
                assert random_graph.has_edge(node, int(parent))

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_components_are_graph_connected(self, disconnected, sampler):
        # trees can never span different graph components
        forest = sampler(disconnected, 0.3, rng=3)
        labels = disconnected.connected_components
        assert np.all(labels[forest.roots] == labels)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_isolated_node_roots_itself(self, disconnected, sampler):
        forest = sampler(disconnected, 0.3, rng=4)
        assert forest.roots[5] == 5

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_deterministic_under_seed(self, random_graph, sampler):
        first = sampler(random_graph, 0.1, rng=77)
        second = sampler(random_graph, 0.1, rng=77)
        assert np.array_equal(first.roots, second.roots)
        assert np.array_equal(first.parents, second.parents)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_invalid_alpha(self, k5, sampler):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                sampler(k5, alpha)

    def test_alpha_near_one_all_roots(self, k5):
        forest = sample_forest_cycle_popping(k5, 0.999999, rng=5)
        assert forest.num_trees >= 4  # almost surely every node a root


class TestDistribution:
    """Statistical agreement with Theorem 3.6 (root frequency = PPR)."""

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_unweighted(self, sampler):
        graph = erdos_renyi(10, 0.4, rng=11)
        alpha = 0.25
        exact = exact_ppr_matrix(graph, alpha)
        frequencies, _ = _root_frequencies(graph, alpha, sampler, 3000, 42)
        assert np.abs(frequencies - exact).max() < 0.035

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_weighted(self, sampler):
        graph = with_random_weights(erdos_renyi(8, 0.5, rng=13), rng=5)
        alpha = 0.3
        exact = exact_ppr_matrix(graph, alpha)
        frequencies, _ = _root_frequencies(graph, alpha, sampler, 3000, 43)
        assert np.abs(frequencies - exact).max() < 0.035

    def test_samplers_agree_with_each_other(self):
        graph = erdos_renyi(12, 0.3, rng=17)
        alpha = 0.1
        wilson, _ = _root_frequencies(graph, alpha, sample_forest_wilson,
                                      2500, 1)
        popping, _ = _root_frequencies(graph, alpha,
                                       sample_forest_cycle_popping, 2500, 2)
        assert np.abs(wilson - popping).max() < 0.045

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_mean_steps_match_tau(self, sampler):
        """Empirical Lemma 4.4: average steps per forest ≈ τ."""
        graph = erdos_renyi(15, 0.3, rng=19)
        alpha = 0.15
        tau = tau_exact(graph, alpha)
        _, mean_steps = _root_frequencies(graph, alpha, sampler, 1500, 3)
        assert mean_steps == pytest.approx(tau, rel=0.1)

    def test_wilson_order_invariance(self):
        """Wilson's key property: the processing order does not change
        the sampled distribution (checked on root-count marginals)."""
        graph = erdos_renyi(9, 0.4, rng=23)
        alpha = 0.2
        forward = np.zeros(9)
        backward = np.zeros(9)
        rng_a = np.random.default_rng(31)
        rng_b = np.random.default_rng(32)
        trials = 2500
        for _ in range(trials):
            f = sample_forest_wilson(graph, alpha, rng=rng_a,
                                     order=np.arange(9))
            forward[f.roots[0]] += 1
            b = sample_forest_wilson(graph, alpha, rng=rng_b,
                                     order=np.arange(8, -1, -1))
            backward[b.roots[0]] += 1
        assert np.abs(forward - backward).max() / trials < 0.04


def _rooted_forest_law(graph, alpha):
    """Exact distribution over rooted forests via enumeration.

    Returns ``{(edge_set, root_set): probability}`` covering every
    rooted spanning forest of ``graph`` (Theorem 4.3).
    """
    law = {}
    for forest in enumerate_spanning_forests(graph):
        trees: dict[int, list[int]] = {}
        for node, label in enumerate(forest.labels):
            trees.setdefault(label, []).append(node)
        edge_key = frozenset(tuple(sorted(edge)) for edge in forest.edges)
        for roots in product(*trees.values()):
            law[(edge_key, frozenset(roots))] = forest_probability(
                graph, alpha, forest, roots)
    return law


def _forest_key(forest: RootedForest):
    """Category key of a sampled forest: (undirected edges, roots)."""
    edges = frozenset(
        (min(int(node), int(parent)), max(int(node), int(parent)))
        for node, parent in enumerate(forest.parents) if parent >= 0)
    return edges, frozenset(forest.root_set.tolist())


@pytest.mark.slow
class TestGoodnessOfFit:
    """Chi-square GOF of both samplers against the enumerated law.

    Protocol (documented in docs/THEORY.md): the category space is
    the full set of rooted spanning forests of a ≤6-node graph, the
    expected counts come from Theorem 4.3 via exact enumeration, seeds
    are fixed, and the significance level is 1e-3 — a fixed-seed run
    either passes forever or flags a genuine sampler bug; there is no
    re-roll-until-green.
    """

    SIGNIFICANCE = 1e-3
    SAMPLES = 4000

    def _chi_square(self, graph, alpha, sampler, seed):
        law = _rooted_forest_law(graph, alpha)
        assert sum(law.values()) == pytest.approx(1.0, abs=1e-12)
        expected = {key: self.SAMPLES * p for key, p in law.items()}
        # the chi-square approximation needs every expected cell >= 5
        assert min(expected.values()) >= 5.0, \
            "workload too small for the chi-square approximation"
        observed = dict.fromkeys(law, 0)
        rng = np.random.default_rng(seed)
        for _ in range(self.SAMPLES):
            key = _forest_key(sampler(graph, alpha, rng=rng))
            assert key in law, f"sampled forest outside the law: {key}"
            observed[key] += 1
        statistic = sum(
            (observed[key] - expected[key]) ** 2 / expected[key]
            for key in law)
        critical = chi2.ppf(1.0 - self.SIGNIFICANCE, df=len(law) - 1)
        assert statistic <= critical, (
            f"chi-square {statistic:.2f} > critical {critical:.2f} "
            f"(df={len(law) - 1}, significance={self.SIGNIFICANCE})")

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_path_graph(self, path4, sampler):
        self._chi_square(path4, 0.3, sampler, seed=20220301)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_weighted_triangle(self, weighted_triangle, sampler):
        self._chi_square(weighted_triangle, 0.25, sampler, seed=20220302)


class TestBatchSampling:
    def test_sample_forests_count(self, k5):
        forests = list(sample_forests(k5, 0.2, 7, rng=0))
        assert len(forests) == 7

    def test_sample_forests_independent(self, k5):
        forests = list(sample_forests(k5, 0.2, 30, rng=0))
        roots = {tuple(f.roots.tolist()) for f in forests}
        assert len(roots) > 1  # not all identical

    def test_dispatch_by_name(self, k5):
        assert sample_forest(k5, 0.2, rng=0, method="wilson").method == "wilson"
        assert sample_forest(k5, 0.2, rng=0,
                             method="cycle_popping").method == "cycle_popping"

    def test_unknown_method(self, k5):
        with pytest.raises(ConfigError):
            sample_forest(k5, 0.2, method="aldous_broder")

    def test_negative_count(self, k5):
        with pytest.raises(ConfigError):
            list(sample_forests(k5, 0.2, -1))


class TestRootedForestType:
    def test_component_queries(self):
        roots = np.array([0, 0, 2, 2, 2])
        parents = np.array([-1, 0, -1, 2, 3])
        forest = RootedForest(roots=roots, parents=parents)
        forest.validate()
        assert forest.num_trees == 2
        assert forest.root_set.tolist() == [0, 2]
        assert forest.component_sizes[2] == 3
        assert forest.component_of(3).tolist() == [2, 3, 4]
        assert forest.same_tree(0, 1)
        assert not forest.same_tree(1, 4)
        assert forest.is_rooted_in(4, 2)

    def test_degree_mass(self):
        roots = np.array([0, 0, 2])
        parents = np.array([-1, 0, -1])
        forest = RootedForest(roots=roots, parents=parents)
        degrees = np.array([1.0, 2.0, 5.0])
        mass = forest.component_degree_mass(degrees)
        assert mass[0] == pytest.approx(3.0)
        assert mass[2] == pytest.approx(5.0)

    def test_validate_rejects_root_with_parent(self):
        forest = RootedForest(roots=np.array([0, 0]),
                              parents=np.array([1, 0]))
        with pytest.raises(Exception):
            forest.validate()

    def test_validate_rejects_cycle(self):
        forest = RootedForest(roots=np.array([2, 2, 2]),
                              parents=np.array([1, 0, -1]))
        with pytest.raises(Exception):
            forest.validate()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Exception):
            RootedForest(roots=np.array([0, 1]), parents=np.array([-1]))
