"""Cross-module property-based tests (hypothesis).

These stress the library's core invariants over randomly generated
graphs, parameters and seeds — beyond the fixed fixtures of the unit
tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PPRConfig
from repro.forests import sample_forest
from repro.graph import from_edges
from repro.graph.validation import check_graph_invariants
from repro.linalg import exact_ppr_matrix
from repro.push import backward_push, forward_push
from repro.push.power_push import power_push


@st.composite
def small_graphs(draw):
    """Random simple undirected graphs with 2..15 nodes, >= 1 edge."""
    n = draw(st.integers(2, 15))
    max_edges = n * (n - 1) // 2
    edge_count = draw(st.integers(1, min(max_edges, 25)))
    pairs = set()
    for _ in range(edge_count * 3):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            pairs.add((min(u, v), max(u, v)))
        if len(pairs) >= edge_count:
            break
    if not pairs:
        pairs = {(0, 1)}
    weighted = draw(st.booleans())
    weights = None
    if weighted:
        weights = [draw(st.floats(0.1, 10.0)) for _ in pairs]
    return from_edges(sorted(pairs), num_nodes=n, weights=weights)


class TestGraphProperties:
    @given(graph=small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_generated_graphs_valid(self, graph):
        check_graph_invariants(graph)

    @given(graph=small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_ppr_matrix_is_stochastic(self, graph):
        matrix = exact_ppr_matrix(graph, 0.2)
        assert np.all(matrix >= -1e-12)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    @given(graph=small_graphs(), alpha=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_diagonal_dominates_alpha(self, graph, alpha):
        """pi(s, s) >= alpha always: the walk stops at step 0 w.p. alpha."""
        matrix = exact_ppr_matrix(graph, alpha)
        assert np.all(np.diag(matrix) >= alpha - 1e-12)


class TestPushProperties:
    @given(graph=small_graphs(), alpha=st.floats(0.05, 0.9),
           r_max=st.floats(0.001, 0.5), source=st.integers(0, 14))
    @settings(max_examples=30, deadline=None)
    def test_forward_push_invariant(self, graph, alpha, r_max, source):
        source = source % graph.num_nodes
        result = forward_push(graph, source, alpha, r_max)
        matrix = exact_ppr_matrix(graph, alpha)
        reconstructed = result.reserve + result.residual @ matrix
        assert np.allclose(reconstructed, matrix[source], atol=1e-9)
        assert np.all(result.residual >= -1e-12)
        assert np.all(result.reserve >= -1e-12)

    @given(graph=small_graphs(), alpha=st.floats(0.05, 0.9),
           r_max=st.floats(0.001, 0.5), target=st.integers(0, 14))
    @settings(max_examples=30, deadline=None)
    def test_backward_push_invariant(self, graph, alpha, r_max, target):
        target = target % graph.num_nodes
        result = backward_push(graph, target, alpha, r_max)
        matrix = exact_ppr_matrix(graph, alpha)
        reconstructed = result.reserve + matrix @ result.residual
        assert np.allclose(reconstructed, matrix[:, target], atol=1e-9)

    @given(graph=small_graphs(), target=st.floats(0.001, 0.9),
           source=st.integers(0, 14))
    @settings(max_examples=20, deadline=None)
    def test_power_push_invariant(self, graph, target, source):
        source = source % graph.num_nodes
        result = power_push(graph, source, 0.2, target)
        matrix = exact_ppr_matrix(graph, 0.2)
        reconstructed = result.reserve + result.residual @ matrix
        assert np.allclose(reconstructed, matrix[source], atol=1e-9)
        assert result.residual_mass <= target + 1e-12


class TestForestProperties:
    @given(graph=small_graphs(), alpha=st.floats(0.02, 0.95),
           seed=st.integers(0, 10_000),
           method=st.sampled_from(["wilson", "cycle_popping"]))
    @settings(max_examples=40, deadline=None)
    def test_sampled_forests_always_valid(self, graph, alpha, seed, method):
        forest = sample_forest(graph, alpha, rng=seed, method=method)
        forest.validate()
        # roots stay within graph components
        labels = graph.connected_components
        assert np.all(labels[forest.roots] == labels)
        # tree edges are graph edges
        for node in range(graph.num_nodes):
            parent = forest.parents[node]
            if parent >= 0:
                assert graph.has_edge(node, int(parent))

    @given(graph=small_graphs(), alpha=st.floats(0.05, 0.9),
           seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_estimator_conservation(self, graph, alpha, seed):
        from repro.forests import (source_estimate_basic,
                                   source_estimate_improved)
        rng = np.random.default_rng(seed)
        forest = sample_forest(graph, alpha, rng=rng)
        residual = rng.random(graph.num_nodes)
        basic = source_estimate_basic(forest, residual)
        improved = source_estimate_improved(forest, residual, graph.degrees)
        assert basic.sum() == pytest.approx(residual.sum())
        assert improved.sum() == pytest.approx(residual.sum())


class TestConfigProperties:
    @given(alpha=st.floats(0.001, 0.999), epsilon=st.floats(0.01, 2.0),
           scale=st.floats(0.001, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_budget_monotonicity(self, alpha, epsilon, scale):
        from repro.graph.generators import complete_graph
        graph = complete_graph(6)
        config = PPRConfig(alpha=alpha, epsilon=epsilon, budget_scale=scale)
        budget = config.walk_budget(graph)
        assert budget > 0
        tighter = config.with_overrides(epsilon=epsilon / 2)
        assert tighter.walk_budget(graph) > budget
