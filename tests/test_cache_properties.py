"""Property-based fuzz tests for :class:`ResultCache`.

The cache's contract has three interacting rules — ε-dominance for
plain entries, prefix-dominance (depth *and* ε) for top-k entries,
and LRU eviction with lifetime counters — and the unit tests in
``test_service.py`` only probe hand-picked corners.  Here we drive the
real cache and an intentionally naive reference model (recency kept as
an explicit list, dominance checks written out longhand) through long
seeded random operation sequences and require bit-for-bit agreement on
every lookup result, every stats snapshot, and the full eviction
order.  Seeds are fixed, so a failure replays exactly.
"""

import random

import pytest

from repro.service.cache import ResultCache, cache_key


class _Ranking:
    """Stand-in for a top-k result: remembers its depth and supports
    the ``prefix`` trim the cache performs on partial hits."""

    def __init__(self, tag, k):
        self.items = tuple((tag, position) for position in range(k))

    def prefix(self, k):
        return self.items[:k]


class _ReferenceCache:
    """Brute-force model of the documented semantics.

    Entries are ``key -> (epsilon, value, k)`` with recency tracked as
    a plain list (index 0 = least recently used); every rule from the
    ``ResultCache`` docstrings is spelled out independently so the two
    implementations can only agree by both being right.
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = {}
        self.recency = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _touch(self, key):
        self.recency.remove(key)
        self.recency.append(key)

    def _admit(self, key):
        if key in self.recency:
            self._touch(key)
        else:
            self.recency.append(key)
        while len(self.recency) > self.capacity:
            victim = self.recency.pop(0)
            del self.entries[victim]
            self.evictions += 1

    def get(self, key, epsilon):
        entry = self.entries.get(key)
        if entry is not None and entry[0] <= epsilon:
            self._touch(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def put(self, key, epsilon, value):
        if self.capacity == 0:
            return
        entry = self.entries.get(key)
        if entry is None or epsilon < entry[0]:
            self.entries[key] = (epsilon, value, None)
        self._admit(key)

    def get_topk(self, key, epsilon, k):
        entry = self.entries.get(key)
        if (entry is not None and entry[2] is not None and entry[2] >= k
                and entry[0] <= epsilon):
            self._touch(key)
            self.hits += 1
            return entry[1].prefix(k)
        self.misses += 1
        return None

    def put_topk(self, key, epsilon, k, value):
        if self.capacity == 0:
            return
        entry = self.entries.get(key)
        if (entry is None or entry[2] is None or k > entry[2]
                or (k == entry[2] and epsilon < entry[0])):
            self.entries[key] = (epsilon, value, k)
        self._admit(key)

    def clear(self):
        self.entries.clear()
        self.recency.clear()

    def stats(self):
        lookups = self.hits + self.misses
        return {
            "size": len(self.entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


EPSILONS = (0.05, 0.1, 0.25, 0.5, 1.0)
DEPTHS = (1, 2, 5, 10)


def _run_sequence(seed, capacity, steps, *, clear_chance=0.02):
    """Drive both caches through one op sequence, asserting agreement
    after every single operation."""
    rng = random.Random(seed)
    cache = ResultCache(capacity=capacity)
    model = _ReferenceCache(capacity)
    keys = [cache_key("g", "batch", kind, node, 0.2)
            for kind in ("source", "topk") for node in range(6)]
    serial = 0
    for step in range(steps):
        key = rng.choice(keys)
        epsilon = rng.choice(EPSILONS)
        roll = rng.random()
        if roll < clear_chance:
            cache.clear()
            model.clear()
        elif roll < 0.30:
            assert cache.get(key, epsilon) == model.get(key, epsilon), \
                f"get diverged at step {step} (seed {seed})"
        elif roll < 0.55:
            value = f"v{serial}"
            serial += 1
            cache.put(key, epsilon, value)
            model.put(key, epsilon, value)
        elif roll < 0.80:
            k = rng.choice(DEPTHS)
            got = cache.get_topk(key, epsilon, k)
            want = model.get_topk(key, epsilon, k)
            assert got == want, \
                f"get_topk diverged at step {step} (seed {seed})"
        else:
            k = rng.choice(DEPTHS)
            ranking = _Ranking(f"r{serial}", k)
            serial += 1
            cache.put_topk(key, epsilon, k, ranking)
            model.put_topk(key, epsilon, k, ranking)
        assert len(cache) == len(model.entries)
        assert cache.stats() == model.stats(), \
            f"stats diverged at step {step} (seed {seed})"


class TestFuzzAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_small_capacity_heavy_eviction(self, seed):
        _run_sequence(seed, capacity=3, steps=600)

    @pytest.mark.parametrize("seed", range(100, 104))
    def test_roomy_capacity(self, seed):
        _run_sequence(seed, capacity=32, steps=600)

    @pytest.mark.parametrize("seed", [7, 8])
    def test_capacity_one(self, seed):
        _run_sequence(seed, capacity=1, steps=400)

    def test_capacity_zero_is_inert(self):
        _run_sequence(55, capacity=0, steps=300, clear_chance=0.1)

    def test_frequent_clears(self):
        _run_sequence(91, capacity=4, steps=600, clear_chance=0.25)


class TestDominanceProperties:
    """Targeted invariants the fuzz relies on, stated directly."""

    def test_tight_answer_serves_all_looser_queries(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "source", 0, 0.2)
        cache.put(key, 0.05, "tight")
        for epsilon in EPSILONS:
            assert cache.get(key, epsilon) == "tight"

    def test_put_never_loosens(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "source", 0, 0.2)
        cache.put(key, 0.05, "tight")
        cache.put(key, 0.5, "loose")
        assert cache.get(key, 0.05) == "tight"

    def test_deep_topk_serves_every_shallower_depth(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "topk", 0, 0.2)
        ranking = _Ranking("deep", 10)
        cache.put_topk(key, 0.1, 10, ranking)
        for k in DEPTHS:
            assert cache.get_topk(key, 0.25, k) == ranking.prefix(k)

    def test_put_topk_never_shallows(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "topk", 0, 0.2)
        deep = _Ranking("deep", 10)
        cache.put_topk(key, 0.1, 10, deep)
        cache.put_topk(key, 0.05, 2, _Ranking("shallow", 2))
        assert cache.get_topk(key, 0.25, 10) == deep.prefix(10)

    def test_plain_hit_never_serves_topk_and_vice_versa(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "topk", 0, 0.2)
        cache.put(key, 0.05, "plain")
        assert cache.get_topk(key, 0.5, 1) is None  # entry.k is None
        cache.put_topk(key, 0.05, 5, _Ranking("r", 5))
        assert cache.get_topk(key, 0.5, 5) is not None

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key("g", "batch", "source", node, 0.2)
                for node in range(3)]
        cache.put(keys[0], 0.1, "a")
        cache.put(keys[1], 0.1, "b")
        assert cache.get(keys[0], 0.5) == "a"  # refresh 0's recency
        cache.put(keys[2], 0.1, "c")           # evicts 1, not 0
        assert cache.get(keys[1], 0.5) is None
        assert cache.get(keys[0], 0.5) == "a"
        assert cache.stats()["evictions"] == 1
