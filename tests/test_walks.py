"""α-random-walk simulation tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import exact_ppr_matrix
from repro.montecarlo import estimate_single_source_walks, simulate_alpha_walks
from repro.graph.generators import erdos_renyi, with_random_weights


class TestEndpoints:
    def test_endpoint_distribution_matches_ppr(self, rng):
        graph = erdos_renyi(12, 0.4, rng=1)
        alpha = 0.25
        exact = exact_ppr_matrix(graph, alpha)[0]
        estimate = estimate_single_source_walks(graph, 0, alpha, 30000,
                                                rng=rng)
        assert np.abs(estimate - exact).max() < 0.02

    def test_weighted_endpoint_distribution(self, rng):
        graph = with_random_weights(erdos_renyi(8, 0.5, rng=2), rng=3)
        alpha = 0.3
        exact = exact_ppr_matrix(graph, alpha)[1]
        estimate = estimate_single_source_walks(graph, 1, alpha, 30000,
                                                rng=rng)
        assert np.abs(estimate - exact).max() < 0.02

    def test_estimate_sums_to_one(self, random_graph):
        estimate = estimate_single_source_walks(random_graph, 0, 0.2, 500,
                                                rng=0)
        assert estimate.sum() == pytest.approx(1.0)

    def test_mixed_starts(self, random_graph, rng):
        starts = np.array([0, 1, 2, 0, 1, 2] * 50)
        batch = simulate_alpha_walks(random_graph, starts, 0.3, rng=rng)
        assert batch.num_walks == 300
        assert np.array_equal(batch.starts, starts)

    def test_dangling_start_stops_immediately(self, disconnected):
        batch = simulate_alpha_walks(disconnected, np.array([5, 5, 5]), 0.2,
                                     rng=0)
        assert np.all(batch.endpoints == 5)
        assert batch.total_steps == 0


class TestWalkLength:
    def test_mean_length_is_inverse_alpha(self, rng):
        graph = erdos_renyi(20, 0.3, rng=4)
        alpha = 0.2
        batch = simulate_alpha_walks(graph, np.zeros(20000, dtype=np.int64),
                                     alpha, rng=rng)
        mean_length = batch.total_steps / batch.num_walks
        # E[steps] = (1 - alpha) / alpha
        assert mean_length == pytest.approx((1 - alpha) / alpha, rel=0.05)

    def test_max_length_cap_respected(self, random_graph):
        batch = simulate_alpha_walks(random_graph,
                                     np.zeros(100, dtype=np.int64),
                                     0.01, rng=1, max_length=5)
        assert batch.total_steps <= 500


class TestValidation:
    def test_bad_alpha(self, k5):
        with pytest.raises(ConfigError):
            simulate_alpha_walks(k5, np.array([0]), 0.0)

    def test_bad_start(self, k5):
        with pytest.raises(ConfigError):
            simulate_alpha_walks(k5, np.array([9]), 0.2)

    def test_bad_walk_count(self, k5):
        with pytest.raises(ConfigError):
            estimate_single_source_walks(k5, 0, 0.2, 0)

    def test_empty_batch(self, k5):
        batch = simulate_alpha_walks(k5, np.array([], dtype=np.int64), 0.2)
        assert batch.num_walks == 0

    def test_deterministic_under_seed(self, random_graph):
        a = simulate_alpha_walks(random_graph, np.arange(10), 0.2, rng=6)
        b = simulate_alpha_walks(random_graph, np.arange(10), 0.2, rng=6)
        assert np.array_equal(a.endpoints, b.endpoints)
