"""Integration tests of the six online single-source algorithms and
their indexed variants: accuracy against exact ground truth, metadata,
determinism and error handling."""

import numpy as np
import pytest

from repro.core import PPRConfig, l1_error
from repro.core.single_source import (
    fora,
    fora_plus,
    foral,
    foralv,
    foralv_plus,
    speedl,
    speedlv,
    speedlv_plus,
    speedppr,
    speedppr_plus,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_single_source
from repro.montecarlo import ForestIndex, WalkIndex

ONLINE = [fora, foral, foralv, speedppr, speedl, speedlv]


@pytest.fixture(scope="module")
def medium_graph():
    return erdos_renyi(150, 0.06, rng=101)


@pytest.fixture(scope="module")
def medium_weighted():
    return with_random_weights(erdos_renyi(120, 0.08, rng=103), rng=9)


def _config(**kwargs):
    defaults = dict(alpha=0.1, epsilon=0.5, seed=11)
    defaults.update(kwargs)
    return PPRConfig(**defaults)


class TestAccuracy:
    @pytest.mark.parametrize("algorithm", ONLINE)
    def test_close_to_exact(self, medium_graph, algorithm):
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = algorithm(medium_graph, 0, _config())
        # basic estimators (foral/speedl) are intentionally noisier —
        # the paper's Fig. 4 shows the same ordering
        bound = 0.6 if algorithm in (foral, speedl) else 0.35
        assert l1_error(result, exact) < bound

    @pytest.mark.parametrize("algorithm", [foralv, speedlv])
    def test_improved_estimators_tight(self, medium_graph, algorithm):
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = algorithm(medium_graph, 0, _config())
        assert l1_error(result, exact) < 0.15

    @pytest.mark.parametrize("algorithm", ONLINE)
    def test_mass_close_to_one(self, medium_graph, algorithm):
        result = algorithm(medium_graph, 0, _config())
        assert result.total_mass == pytest.approx(1.0, abs=0.15)

    @pytest.mark.parametrize("algorithm", [fora, foralv, speedlv])
    def test_weighted_graphs(self, medium_weighted, algorithm):
        exact = exact_single_source(medium_weighted, 5, 0.1)
        result = algorithm(medium_weighted, 5, _config())
        assert l1_error(result, exact) < 0.35

    @pytest.mark.parametrize("algorithm", [foralv, speedlv])
    def test_small_alpha(self, medium_graph, algorithm):
        exact = exact_single_source(medium_graph, 3, 0.01)
        result = algorithm(medium_graph, 3, _config(alpha=0.01))
        assert l1_error(result, exact) < 0.2

    def test_accuracy_improves_with_epsilon(self, medium_graph):
        exact = exact_single_source(medium_graph, 0, 0.1)
        errors = []
        for epsilon in (1.0, 0.1):
            per_seed = [l1_error(foralv(medium_graph, 0,
                                        _config(epsilon=epsilon, seed=s)),
                                 exact) for s in range(5)]
            errors.append(np.mean(per_seed))
        assert errors[1] < errors[0]


class TestMetadata:
    @pytest.mark.parametrize("algorithm,name", [
        (fora, "fora"), (foral, "foral"), (foralv, "foralv"),
        (speedppr, "speedppr"), (speedl, "speedl"), (speedlv, "speedlv")])
    def test_method_name_and_kind(self, medium_graph, algorithm, name):
        result = algorithm(medium_graph, 2, _config())
        assert result.method == name
        assert result.kind == "source"
        assert result.query_node == 2

    def test_forest_algorithms_record_forest_stats(self, medium_graph):
        result = foralv(medium_graph, 0, _config())
        assert result.stats["num_forests"] >= 1
        assert result.stats["forest_steps"] > 0
        assert "push_seconds" in result.stats

    def test_walk_algorithms_record_walk_stats(self, medium_graph):
        result = fora(medium_graph, 0, _config())
        assert result.stats["num_walks"] > 0

    def test_deterministic_under_seed(self, medium_graph):
        first = speedlv(medium_graph, 0, _config(seed=42))
        second = speedlv(medium_graph, 0, _config(seed=42))
        assert np.allclose(first.estimates, second.estimates)

    def test_r_max_override(self, medium_graph):
        result = foralv(medium_graph, 0, _config(r_max=0.02))
        assert result.stats["r_max"] == 0.02

    def test_source_out_of_range(self, medium_graph):
        with pytest.raises(ConfigError):
            foralv(medium_graph, 10**6, _config())

    def test_sampler_override_wilson(self, medium_graph):
        result = foralv(medium_graph, 0, _config(sampler="wilson"))
        assert result.stats["num_forests"] >= 1


class TestIndexedVariants:
    def test_fora_plus(self, medium_graph):
        index = WalkIndex.build_fora_plus(medium_graph, 0.1, 0.5, rng=1)
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = fora_plus(medium_graph, 0, index, _config())
        assert result.method == "fora+"
        assert l1_error(result, exact) < 0.4

    def test_speedppr_plus(self, medium_graph):
        index = WalkIndex.build_speedppr_plus(medium_graph, 0.1, rng=2)
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = speedppr_plus(medium_graph, 0, index, _config())
        assert result.method == "speedppr+"
        assert l1_error(result, exact) < 0.4

    def test_foralv_plus(self, medium_graph):
        index = ForestIndex.build(medium_graph, 0.1, 30, rng=3)
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = foralv_plus(medium_graph, 0, index, _config())
        assert result.method == "foralv+"
        assert l1_error(result, exact) < 0.3

    def test_speedlv_plus(self, medium_graph):
        index = ForestIndex.build(medium_graph, 0.1, 30, rng=4)
        exact = exact_single_source(medium_graph, 0, 0.1)
        result = speedlv_plus(medium_graph, 0, index, _config())
        assert result.method == "speedlv+"
        assert l1_error(result, exact) < 0.3

    def test_wrong_index_type_rejected(self, medium_graph):
        walk_index = WalkIndex.build_speedppr_plus(medium_graph, 0.1, rng=5)
        with pytest.raises(ConfigError):
            foralv_plus(medium_graph, 0, walk_index, _config())

    def test_alpha_mismatch_rejected(self, medium_graph):
        index = ForestIndex.build(medium_graph, 0.2, 5, rng=6)
        with pytest.raises(ConfigError):
            speedlv_plus(medium_graph, 0, index, _config(alpha=0.1))

    def test_wrong_graph_rejected(self, medium_graph, k5):
        index = ForestIndex.build(k5, 0.1, 5, rng=7)
        with pytest.raises(ConfigError):
            speedlv_plus(medium_graph, 0, index, _config())


class TestVarianceTracking:
    def test_stderr_attached_when_requested(self, medium_graph):
        result = foralv(medium_graph, 0, _config(track_variance=True))
        stderr = result.stats["mc_stderr"]
        assert stderr.shape == (medium_graph.num_nodes,)
        assert np.all(stderr >= 0)

    def test_stderr_absent_by_default(self, medium_graph):
        result = foralv(medium_graph, 0, _config())
        assert "mc_stderr" not in result.stats

    def test_stderr_roughly_calibrated(self, medium_graph):
        """|error| should be within a few stderr for nearly all nodes
        (plus the deterministic reserve, which has no error)."""
        exact = exact_single_source(medium_graph, 0, 0.1)
        config = _config(track_variance=True, seed=21)
        result = foralv(medium_graph, 0, config)
        stderr = result.stats["mc_stderr"]
        errors = np.abs(result.estimates - exact)
        sampled = stderr > 0
        if sampled.any():
            coverage = np.mean(errors[sampled] <= 4 * stderr[sampled]
                               + 1e-12)
            assert coverage > 0.9

    def test_stderr_shrinks_with_budget(self, medium_graph):
        small = foralv(medium_graph, 0,
                       _config(track_variance=True, budget_scale=0.5,
                               seed=5))
        large = foralv(medium_graph, 0,
                       _config(track_variance=True, budget_scale=4.0,
                               seed=5))
        assert large.stats["num_forests"] > small.stats["num_forests"]
        assert (large.stats["mc_stderr"].sum()
                < small.stats["mc_stderr"].sum())
