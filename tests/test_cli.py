"""CLI tests (invoking :func:`repro.cli.main` in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(
            ["query", "source", "youtube", "0"])
        assert args.alpha == 0.01
        assert args.kind == "source"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "youtube" in out and "stackoverflow" in out

    def test_query_source(self, capsys):
        code = main(["query", "source", "youtube", "0",
                     "--scale", "0.05", "--top", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedlv" in out
        assert "top 3:" in out

    def test_query_target(self, capsys):
        code = main(["query", "target", "youtube", "0",
                     "--scale", "0.05", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "backlv" in capsys.readouterr().out

    def test_query_method_override(self, capsys):
        code = main(["query", "source", "youtube", "0", "--scale", "0.05",
                     "--method", "fora", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "fora" in capsys.readouterr().out

    def test_pair(self, capsys):
        code = main(["pair", "youtube", "0", "1",
                     "--scale", "0.05", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "pi(0, 1)" in capsys.readouterr().out

    def test_cluster(self, capsys):
        code = main(["cluster", "youtube", "0", "--scale", "0.05",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "conductance" in out

    def test_spectrum(self, capsys):
        code = main(["spectrum", "youtube", "--scale", "0.05",
                     "--alphas", "0.1", "0.01", "--seed", "1"])
        assert code == 0
        assert "tau_lemma44" in capsys.readouterr().out

    def test_error_path_returns_2(self, capsys):
        code = main(["query", "source", "not-a-dataset", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_node_returns_2(self, capsys):
        code = main(["query", "source", "youtube", "999999999",
                     "--scale", "0.05"])
        assert code == 2

    def test_selfcheck(self, capsys):
        assert main(["selfcheck", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "self-check passed" in out
        assert out.count("[ok]") == 4

    def test_selfcheck_output_worker_invariant(self, capsys):
        assert main(["selfcheck", "--seed", "7", "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["selfcheck", "--seed", "7", "--workers", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs_small_driver(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_GRAPH_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "2")
        monkeypatch.setenv("REPRO_BENCH_BUDGET", "0.05")
        assert main(["experiment", "ablation_push_variants"]) == 0
        out = capsys.readouterr().out
        assert "residual_ceiling" in out
