"""CLI tests (invoking :func:`repro.cli.main` in-process), including
byte-exact golden-output regression tests.

Golden files live in ``tests/golden/``; regenerate them after an
intentional output change with

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cli.py

and commit the diff alongside the change that caused it.
"""

import json
import os
import re
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main

GOLDEN_DIR = Path(__file__).parent / "golden"

# wall-clock stats are the only nondeterministic output; scrub them
_SECONDS = re.compile(r"('(?:push|mc)_seconds': )[0-9.e+-]+")


def _scrub(text: str) -> str:
    return _SECONDS.sub(r"\1<seconds>", text)


def _assert_matches_golden(name: str, out: str) -> None:
    path = GOLDEN_DIR / name
    scrubbed = _scrub(out)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(scrubbed)
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1")
    assert scrubbed == path.read_text(), (
        f"output of {name} drifted from the committed golden file; if "
        f"intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and commit")


def _error_transcript(argv, capsys) -> str:
    """Run ``repro`` argv, assert it fails with exit code 2, and render
    a ``$ cmd / exit / stderr`` block for the golden transcript."""
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 2, f"{argv} exited {code}, expected 2"
    assert captured.err.startswith("error:"), captured.err
    return (f"$ repro {' '.join(argv)}\n"
            f"exit {code}\n"
            f"{captured.err}")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(
            ["query", "source", "youtube", "0"])
        assert args.alpha == 0.01
        assert args.kind == "source"
        assert args.push_backend == "vectorized"

    def test_push_backend_choices(self):
        args = build_parser().parse_args(
            ["query", "source", "youtube", "0", "--push-backend", "scalar"])
        assert args.push_backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "source", "youtube", "0",
                 "--push-backend", "cuda"])

    def test_serve_observability_flags(self):
        args = build_parser().parse_args(
            ["serve", "--trace-sample-rate", "0.25",
             "--trace-buffer", "64", "--slowlog", "/tmp/slow.jsonl",
             "--slowlog-threshold-ms", "100", "--profile",
             "/tmp/prof.txt"])
        assert args.trace_sample_rate == 0.25
        assert args.trace_buffer == 64
        assert args.slowlog == "/tmp/slow.jsonl"
        assert args.slowlog_threshold_ms == 100.0
        assert args.profile == "/tmp/prof.txt"

    def test_serve_observability_defaults_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace_sample_rate == 0.0
        assert args.slowlog is None
        assert args.profile is None

    def test_trace_subcommand(self):
        args = build_parser().parse_args(
            ["trace", "tail", "slow.jsonl", "-n", "7"])
        assert (args.action, args.slowlog, args.lines) == (
            "tail", "slow.jsonl", 7)
        args = build_parser().parse_args(["trace", "summarize", "s.jsonl"])
        assert args.action == "summarize"
        with pytest.raises(SystemExit):  # an action is required
            build_parser().parse_args(["trace"])

    def test_bench_subcommand(self):
        args = build_parser().parse_args(
            ["bench", "--profile", "prof.txt", "--threshold", "0.5"])
        assert args.profile == "prof.txt"
        assert args.threshold == 0.5
        assert args.baseline is None

    def test_serve_dynamic_flag(self):
        assert build_parser().parse_args(["serve"]).dynamic is False
        assert build_parser().parse_args(
            ["serve", "--dynamic"]).dynamic is True

    def test_index_build_dynamic_flag(self):
        args = build_parser().parse_args(
            ["index", "build", "youtube", "bank", "--dynamic"])
        assert args.dynamic is True
        assert build_parser().parse_args(
            ["index", "build", "youtube", "bank"]).dynamic is False

    def test_index_mutate_subcommand(self):
        args = build_parser().parse_args(
            ["index", "mutate", "bank", "--add", "0:1", "--add", "2:3:1.5",
             "--remove", "4:5", "--set-weight", "6:7:2.0",
             "--upsert", "8:9:0.5", "--out", "other", "--seed", "9"])
        assert args.action == "mutate"
        assert args.bank_dir == "bank"
        assert args.add == ["0:1", "2:3:1.5"]
        assert args.remove == ["4:5"]
        assert args.set_weight == ["6:7:2.0"]
        assert args.upsert == ["8:9:0.5"]
        assert args.out == "other"
        assert args.seed == 9

    def test_index_mutate_defaults(self):
        args = build_parser().parse_args(["index", "mutate", "bank"])
        assert args.add == [] and args.remove == []
        assert args.set_weight == [] and args.upsert == []
        assert args.out is None
        assert args.seed == 2022

    def test_query_variance_mode_flag(self):
        args = build_parser().parse_args(
            ["query", "source", "youtube", "0"])
        assert args.variance_mode == "improved"
        args = build_parser().parse_args(
            ["query", "source", "youtube", "0",
             "--variance-mode", "stratified"])
        assert args.variance_mode == "stratified"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "source", "youtube", "0",
                 "--variance-mode", "antithetic"])

    def test_index_build_layout_flags(self):
        args = build_parser().parse_args(
            ["index", "build", "youtube", "bank"])
        assert args.variance_mode == "improved"
        assert args.node_order == "none"
        assert args.bank_dtype == "float64"
        args = build_parser().parse_args(
            ["index", "build", "youtube", "bank",
             "--variance-mode", "stratified", "--node-order", "degree",
             "--bank-dtype", "float32"])
        assert args.variance_mode == "stratified"
        assert args.node_order == "degree"
        assert args.bank_dtype == "float32"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["index", "build", "youtube", "bank",
                 "--node-order", "hilbert"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["index", "build", "youtube", "bank",
                 "--bank-dtype", "float16"])

    def test_serve_slo_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.slowlog_max_bytes is None
        assert args.slo_availability_objective == 0.999
        assert args.slo_latency_objective == 0.99
        assert args.slo_latency_ms == 250.0
        assert args.slo_fast_window_s == 60.0
        assert args.slo_slow_window_s == 300.0
        assert args.slo_burn_threshold == 10.0
        args = build_parser().parse_args(
            ["serve", "--slowlog-max-bytes", "1048576",
             "--slo-availability-objective", "0.995",
             "--slo-latency-objective", "0.95",
             "--slo-latency-ms", "100", "--slo-fast-window-s", "30",
             "--slo-slow-window-s", "120",
             "--slo-burn-threshold", "5"])
        assert args.slowlog_max_bytes == 1048576
        assert args.slo_availability_objective == 0.995
        assert args.slo_latency_objective == 0.95
        assert args.slo_latency_ms == 100.0
        assert args.slo_fast_window_s == 30.0
        assert args.slo_slow_window_s == 120.0
        assert args.slo_burn_threshold == 5.0

    def test_trace_export_subcommand(self):
        args = build_parser().parse_args(
            ["trace", "export", "slow.jsonl", "--out", "trace.json"])
        assert (args.action, args.slowlog) == ("export", "slow.jsonl")
        assert args.format == "chrome"
        assert args.out == "trace.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "export", "slow.jsonl", "--format", "jaeger"])

    def test_top_and_obs_subcommands(self):
        args = build_parser().parse_args(["top", "--once"])
        assert args.once is True
        assert args.url == "http://127.0.0.1:8471"
        assert args.interval == 2.0
        args = build_parser().parse_args(["obs", "report", "snap.json"])
        assert (args.action, args.snapshot) == ("report", "snap.json")
        with pytest.raises(SystemExit):  # an action is required
            build_parser().parse_args(["obs"])

    def test_serve_bank_dir_flag(self):
        assert build_parser().parse_args(["serve"]).bank_dir is None
        args = build_parser().parse_args(
            ["serve", "--bank-dir", "some/bank"])
        assert args.bank_dir == "some/bank"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "youtube" in out and "stackoverflow" in out

    def test_query_source(self, capsys):
        code = main(["query", "source", "youtube", "0",
                     "--scale", "0.05", "--top", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedlv" in out
        assert "top 3:" in out

    def test_query_target(self, capsys):
        code = main(["query", "target", "youtube", "0",
                     "--scale", "0.05", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "backlv" in capsys.readouterr().out

    def test_query_method_override(self, capsys):
        code = main(["query", "source", "youtube", "0", "--scale", "0.05",
                     "--method", "fora", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "fora" in capsys.readouterr().out

    def test_pair(self, capsys):
        code = main(["pair", "youtube", "0", "1",
                     "--scale", "0.05", "--alpha", "0.1", "--seed", "1"])
        assert code == 0
        assert "pi(0, 1)" in capsys.readouterr().out

    def test_cluster(self, capsys):
        code = main(["cluster", "youtube", "0", "--scale", "0.05",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "conductance" in out

    def test_spectrum(self, capsys):
        code = main(["spectrum", "youtube", "--scale", "0.05",
                     "--alphas", "0.1", "0.01", "--seed", "1"])
        assert code == 0
        assert "tau_lemma44" in capsys.readouterr().out

    def test_error_path_returns_2(self, capsys):
        code = main(["query", "source", "not-a-dataset", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_node_returns_2(self, capsys):
        code = main(["query", "source", "youtube", "999999999",
                     "--scale", "0.05"])
        assert code == 2

    def test_selfcheck(self, capsys):
        assert main(["selfcheck", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "self-check passed" in out
        assert out.count("[ok]") == 5

    def test_selfcheck_output_worker_invariant(self, capsys):
        assert main(["selfcheck", "--seed", "7", "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["selfcheck", "--seed", "7", "--workers", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_index_build_then_load(self, capsys, tmp_path):
        from repro.graph.datasets import load_dataset
        from repro.montecarlo.forest_index import ForestIndex

        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "built bank: youtube" in out
        assert "forests 3" in out
        graph = load_dataset("youtube", scale=0.05)
        index = ForestIndex.load_bank(bank, graph)
        assert index.num_forests == 3

    def test_index_build_relabeled_is_byte_identical(self, capsys,
                                                     tmp_path):
        from repro.graph.datasets import load_dataset
        from repro.montecarlo.forest_index import ForestIndex

        plain, ordered = str(tmp_path / "plain"), str(tmp_path / "ordered")
        base = ["index", "build", "youtube", "--scale", "0.05",
                "--num-forests", "3", "--seed", "11"]
        assert main(base[:3] + [plain] + base[3:]) == 0
        assert main(base[:3] + [ordered] + base[3:]
                    + ["--node-order", "degree"]) == 0
        out = capsys.readouterr().out
        assert "layout degree/float64" in out
        graph = load_dataset("youtube", scale=0.05)
        a = ForestIndex.load_bank(plain, graph)
        b = ForestIndex.load_bank(ordered, graph)
        assert b.bank_node_order == "degree"
        residuals = np.eye(graph.num_nodes)[:2]
        assert np.array_equal(a.estimate_source_many(residuals),
                              b.estimate_source_many(residuals))

    def test_index_build_float32_records_dtype(self, capsys, tmp_path):
        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--seed", "11",
                     "--bank-dtype", "float32"]) == 0
        capsys.readouterr()
        assert main(["index", "inspect", bank]) == 0
        out = capsys.readouterr().out
        assert "float32" in out
        assert "operator" in out

    def test_index_build_stratified_records_mode(self, capsys, tmp_path):
        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--seed", "11",
                     "--variance-mode", "stratified"]) == 0
        assert "variance stratified" in capsys.readouterr().out
        assert main(["index", "inspect", bank]) == 0
        assert "stratified" in capsys.readouterr().out

    def test_index_build_dynamic_rejects_layout_flags(self, capsys,
                                                      tmp_path):
        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--dynamic",
                     "--node-order", "degree"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--dynamic",
                     "--variance-mode", "stratified"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bank_dir_dry_run(self, capsys, tmp_path):
        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "3", "--seed", "11"]) == 0
        capsys.readouterr()
        assert main(["serve", "--graph", "youtube", "--scale", "0.05",
                     "--bank-dir", bank, "--dry-run"]) == 0
        assert bank in capsys.readouterr().out

    def test_serve_bank_dir_rejects_dynamic(self, capsys):
        assert main(["serve", "--bank-dir", "somewhere", "--dynamic",
                     "--dry-run"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_index_inspect_rejects_non_bank(self, capsys, tmp_path):
        assert main(["index", "inspect", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_dry_run_process_executor(self, capsys):
        assert main(["serve", "--dry-run", "--executor", "process",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "executor        process" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs_small_driver(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_GRAPH_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "2")
        monkeypatch.setenv("REPRO_BENCH_BUDGET", "0.05")
        assert main(["experiment", "ablation_push_variants"]) == 0
        out = capsys.readouterr().out
        assert "residual_ceiling" in out

    def test_trace_tail(self, capsys):
        fixture = str(GOLDEN_DIR / "slowlog_fixture.jsonl")
        assert main(["trace", "tail", fixture, "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("ok ") and "inline" in lines[0]
        assert lines[1].startswith("ERR") and "outside" in lines[1]

    def test_trace_missing_file_returns_2(self, capsys, tmp_path):
        assert main(["trace", "summarize",
                     str(tmp_path / "nope.jsonl")]) == 2

    def test_trace_export_chrome(self, capsys, tmp_path):
        fixture = str(GOLDEN_DIR / "slowlog_fixture.jsonl")
        out = str(tmp_path / "trace.json")
        assert main(["trace", "export", fixture, "--out", out]) == 0
        message = capsys.readouterr().out
        assert "exported" in message and out in message
        document = json.loads(Path(out).read_text())
        events = document["traceEvents"]
        assert {event["ph"] for event in events} == {"M", "X"}
        assert document["displayTimeUnit"] == "ms"
        # without --out the JSON document goes to stdout
        assert main(["trace", "export", fixture]) == 0
        piped = json.loads(capsys.readouterr().out)
        assert piped == document

    def test_trace_export_missing_file_returns_2(self, capsys,
                                                 tmp_path):
        assert main(["trace", "export",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


def _statusz_payload() -> dict:
    return {
        "status": "ok", "graph": "youtube", "uptime_seconds": 12.4,
        "queue_depth": 1,
        "totals": {"requests": 42, "rejected": 2, "errors": 1,
                   "batches": 9, "straggler_folds": 3},
        "windows": {
            "60s": {
                "window_seconds": 60.0,
                "counters": {
                    "requests": {"total": 10.0, "rate": 0.17},
                    "errors": {"total": 1.0, "rate": 0.02}},
                "histograms": {
                    "latency": {"count": 10, "p50": 0.01,
                                "p99": 0.25}}},
            "300s": {
                "window_seconds": 300.0,
                "counters": {}, "histograms": {}},
        },
        "slo": [{"name": "availability", "state": "ok",
                 "fast_burn": 0.5, "slow_burn": 0.1,
                 "objective": 0.999}],
        "tenants": [{"tenant": "acme", "requests": 30, "rejected": 2,
                     "errors": 1, "work": 1234.0,
                     "p50_seconds": 0.01, "p99_seconds": 0.2}],
        "shards": [{"shard": 0, "folds": 12, "straggler_folds": 0,
                    "fold_p50_seconds": 0.001,
                    "fold_p99_seconds": 0.002},
                   {"shard": 1, "folds": 12, "straggler_folds": 3,
                    "fold_p50_seconds": 0.5,
                    "fold_p99_seconds": 0.9}],
    }


class TestStatuszSurfaces:
    """`repro top`, `repro obs report`, and the shared renderer."""

    def test_render_statusz_fixed_payload(self):
        from repro.cli import render_statusz
        text = render_statusz(_statusz_payload())
        assert "repro service — ok" in text
        assert "graph youtube" in text
        assert "requests 42" in text
        assert "straggler folds 3" in text
        # windows sorted numerically, not lexically
        assert text.index("60s") < text.index("300s")
        assert "availability" in text and "0.9990" in text
        assert "acme" in text
        lines = text.splitlines()
        (shard_row,) = [line for line in lines
                        if line.startswith("1 ")]
        assert "3" in shard_row.split()

    def test_render_statusz_minimal_payload(self):
        from repro.cli import render_statusz
        text = render_statusz({})
        assert text.startswith("repro service")
        # no tables without data: just the two header lines
        assert len(text.splitlines()) == 2

    def test_obs_report(self, capsys, tmp_path):
        snapshot = tmp_path / "statusz.json"
        snapshot.write_text(json.dumps(_statusz_payload()))
        assert main(["obs", "report", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "repro service — ok" in out
        assert "acme" in out and "availability" in out

    def test_obs_report_bad_inputs_return_2(self, capsys, tmp_path):
        assert main(["obs", "report",
                     str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2]")
        assert main(["obs", "report", str(bad)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_top_once(self, capsys, monkeypatch):
        import io
        import urllib.request

        body = json.dumps(_statusz_payload()).encode()

        class _Response(io.BytesIO):
            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        def fake_urlopen(url, timeout=None):
            assert url == "http://127.0.0.1:8471/statusz"
            return _Response(body)

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        assert main(["top", "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro service — ok" in out
        assert "acme" in out

    def test_top_unreachable_returns_2(self, capsys):
        assert main(["top", "--once",
                     "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestGoldenOutput:
    """Byte-exact CLI regression tests against committed transcripts."""

    QUERY_SOURCE = ["query", "source", "youtube", "0", "--scale", "0.05",
                    "--alpha", "0.1", "--top", "5", "--seed", "2022"]
    QUERY_TARGET = ["query", "target", "youtube", "1", "--scale", "0.05",
                    "--alpha", "0.1", "--top", "5", "--seed", "2022"]

    def test_query_source_speedlv(self, capsys):
        assert main(self.QUERY_SOURCE) == 0
        _assert_matches_golden("query_source_speedlv.txt",
                               capsys.readouterr().out)

    def test_query_target_backlv(self, capsys):
        assert main(self.QUERY_TARGET) == 0
        _assert_matches_golden("query_target_backlv.txt",
                               capsys.readouterr().out)

    def test_selfcheck(self, capsys):
        assert main(["selfcheck", "--seed", "2022"]) == 0
        _assert_matches_golden("selfcheck.txt", capsys.readouterr().out)

    def test_serve_dry_run(self, capsys):
        assert main(["serve", "--graph", "youtube", "--scale", "0.05",
                     "--alpha", "0.1", "--port", "9000", "--max-batch",
                     "16", "--max-wait-ms", "5", "--cache-entries", "64",
                     "--seed", "2022", "--dry-run"]) == 0
        _assert_matches_golden("serve_dry_run.txt",
                               capsys.readouterr().out)

    def test_index_build_inspect(self, capsys, tmp_path):
        """`repro index` build + inspect transcript is byte-stable."""
        bank = str(tmp_path / "bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--alpha", "0.1", "--num-forests", "4",
                     "--seed", "2022"]) == 0
        build_out = capsys.readouterr().out
        assert main(["index", "inspect", bank]) == 0
        _assert_matches_golden("index_build_inspect.txt",
                               build_out + "---\n"
                               + capsys.readouterr().out)

    def test_trace_summarize(self, capsys):
        """`repro trace summarize` on the canned slow log is byte-stable."""
        fixture = str(GOLDEN_DIR / "slowlog_fixture.jsonl")
        assert main(["trace", "summarize", fixture]) == 0
        _assert_matches_golden("trace_summarize.txt",
                               capsys.readouterr().out)

    def test_scalar_backend_prints_identical_query(self, capsys):
        """The backend flag must not change a single printed byte."""
        assert main(self.QUERY_SOURCE) == 0
        vectorized = _scrub(capsys.readouterr().out)
        assert main(self.QUERY_SOURCE + ["--push-backend", "scalar"]) == 0
        assert _scrub(capsys.readouterr().out) == vectorized

    def test_index_build_dynamic_then_mutate(self, capsys, tmp_path,
                                             monkeypatch):
        """`repro index build --dynamic` + `mutate` transcript is
        byte-stable (run from tmp_path so the bank path is relative)."""
        monkeypatch.chdir(tmp_path)
        assert main(["index", "build", "youtube", "bank",
                     "--scale", "0.05", "--alpha", "0.1", "--dynamic",
                     "--num-forests", "3", "--seed", "2022"]) == 0
        build_out = capsys.readouterr().out
        assert main(["index", "mutate", "bank",
                     "--upsert", "0:3:2.0", "--seed", "2022"]) == 0
        _assert_matches_golden("index_dynamic_mutate.txt",
                               build_out + "---\n"
                               + capsys.readouterr().out)


class TestErrorTranscripts:
    """Golden stderr transcripts for the CLI's refusal paths: the
    exact wording users see on malformed query modes and bad `index
    mutate` invocations is part of the interface."""

    def test_query_and_mutate_error_paths(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)  # keeps bank paths relative
        query = ["query", "source", "youtube"]
        blocks = [
            _error_transcript(
                query + ["0", "--scale", "0.05", "--seeds", "1,2",
                         "--pair", "3"], capsys),
            _error_transcript(
                query + ["0", "--scale", "0.05", "--top-k", "5",
                         "--pair", "3"], capsys),
            _error_transcript(query + ["--scale", "0.05"], capsys),
            _error_transcript(
                ["query", "target", "youtube", "0", "--scale", "0.05",
                 "--top-k", "5"], capsys),
            _error_transcript(
                query + ["--scale", "0.05", "--seeds", "1,two"], capsys),
            _error_transcript(
                ["index", "mutate", "missing-bank",
                 "--upsert", "0:1:2.0"], capsys),
            _error_transcript(["index", "mutate", "missing-bank"],
                              capsys),
            _error_transcript(
                ["index", "mutate", "missing-bank", "--add", "1:2:3:4"],
                capsys),
        ]
        _assert_matches_golden("cli_error_paths.txt",
                               "---\n".join(blocks))

    def test_mutate_rejects_static_bank(self, capsys, tmp_path):
        bank = str(tmp_path / "static-bank")
        assert main(["index", "build", "youtube", bank, "--scale", "0.05",
                     "--num-forests", "2", "--seed", "5"]) == 0
        capsys.readouterr()
        assert main(["index", "mutate", bank,
                     "--upsert", "0:1:2.0"]) == 2
        err = capsys.readouterr().err
        assert "not a dynamic forest index" in err
        assert "repro index build --dynamic" in err

    def test_mutate_bad_specs_fail_before_loading(self, capsys,
                                                  tmp_path):
        """Spec validation must not require the bank to exist."""
        for argv in (["index", "mutate", "nope", "--remove", "0:1:2.0"],
                     ["index", "mutate", "nope", "--set-weight", "0:1"],
                     ["index", "mutate", "nope", "--add", "0:0"]):
            assert main(argv) == 2
            assert "error:" in capsys.readouterr().err
