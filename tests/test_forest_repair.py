"""Incremental forest repair tests.

Three layers of evidence that recorded-stack replay is correct:

1. **Bit-identity** — with an empty record, the recorded sampler IS
   :func:`sample_forest_cycle_popping` (same RNG consumption order),
   and an identity repair (empty dirty set) replays the exact same
   forest with zero fresh draws.
2. **Structural validity** — repaired forests are valid rooted forests
   of the *new* graph after adds, removes, and reweights, including
   chains of successive mutations.
3. **Distributional exactness** (the tentpole's acceptance criterion,
   ``slow``-marked) — a chi-square goodness-of-fit test certifies that
   *sample on G, mutate to G', repair* draws from exactly the same
   Theorem-4.3 law as fresh sampling on G'.  This is the test that
   kills the tempting-but-biased "keep untouched trees" shortcut.

The repair-vs-rebuild work bound is also asserted here: a single-edge
update must cost a small fraction of a rebuild's walk steps, measured
by the ``repair_*`` work counters.
"""

from itertools import product

import numpy as np
import pytest
from scipy.stats import chi2

from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests import (
    ForestRecord,
    repair_forest,
    sample_forest_cycle_popping,
    sample_forest_recorded,
)
from repro.forests.enumeration import (
    enumerate_spanning_forests,
    forest_probability,
)
from repro.forests.repair import STOP_ARROW
from repro.graph import GraphDelta
from repro.graph.generators import erdos_renyi


def _assert_forest_of(forest, graph):
    """Structural validity against a specific graph: every non-root
    parent arc must be an actual edge."""
    forest.validate()
    for node, parent in enumerate(forest.parents):
        if parent >= 0:
            lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
            assert parent in graph.indices[lo:hi], (
                f"parent arc {node}->{parent} is not an edge")


class TestRecordedSampler:
    @pytest.mark.parametrize("seed", range(5))
    def test_bit_identical_to_cycle_popping(self, random_graph, seed):
        plain = sample_forest_cycle_popping(random_graph, 0.2, rng=seed)
        recorded, _ = sample_forest_recorded(random_graph, 0.2, rng=seed)
        assert np.array_equal(plain.roots, recorded.roots)
        assert np.array_equal(plain.parents, recorded.parents)
        assert plain.num_steps == recorded.num_steps

    def test_record_entries_are_lawful(self, random_graph):
        _, record = sample_forest_recorded(random_graph, 0.2, rng=3)
        assert record.num_nodes == random_graph.num_nodes
        lengths = record.lengths()
        assert (lengths >= 0).all()
        for node in range(random_graph.num_nodes):
            lo, hi = int(record.indptr[node]), int(record.indptr[node + 1])
            glo = int(random_graph.indptr[node])
            ghi = int(random_graph.indptr[node + 1])
            neighbors = set(random_graph.indices[glo:ghi].tolist())
            for arrow in record.arrows[lo:hi].tolist():
                assert arrow == STOP_ARROW or arrow in neighbors

    def test_counters_credited(self, random_graph):
        counters = WorkCounters()
        forest, _ = sample_forest_recorded(random_graph, 0.2, rng=0,
                                           counters=counters)
        assert counters.forests_sampled == 1
        assert counters.walk_steps == forest.num_steps

    def test_alpha_validated(self, path4):
        with pytest.raises(ConfigError, match="alpha"):
            sample_forest_recorded(path4, 1.5, rng=0)


class TestRepair:
    def test_identity_repair_replays_exactly(self, random_graph):
        forest, record = sample_forest_recorded(random_graph, 0.2, rng=8)
        counters = WorkCounters()
        repaired, new_record = repair_forest(
            random_graph, 0.2, record, np.empty(0, dtype=np.int64),
            rng=123, counters=counters)
        assert np.array_equal(repaired.roots, forest.roots)
        assert np.array_equal(repaired.parents, forest.parents)
        assert counters.repair_fresh_steps == 0
        assert counters.repair_replayed_steps == forest.num_steps
        assert np.array_equal(new_record.arrows, record.arrows)

    @pytest.mark.parametrize("mutation", [
        lambda: GraphDelta().upsert_edge(0, 15, 2.0),
        lambda: GraphDelta().upsert_edge(0, 29, 1.0),
        lambda: GraphDelta().upsert_edge(3, 7, 0.5).upsert_edge(8, 9, 4.0),
    ])
    def test_repaired_forest_is_valid(self, random_graph, mutation):
        _, record = sample_forest_recorded(random_graph, 0.2, rng=5)
        delta = mutation()
        new_graph = delta.apply(random_graph)
        repaired, _ = repair_forest(new_graph, 0.2, record,
                                    delta.touched_nodes(), rng=6)
        _assert_forest_of(repaired, new_graph)

    def test_repair_after_edge_removal(self, random_graph):
        _, record = sample_forest_recorded(random_graph, 0.2, rng=5)
        u = 0
        v = int(random_graph.indices[0])  # first neighbour of node 0
        delta = GraphDelta().remove_edge(u, v)
        new_graph = delta.apply(random_graph)
        repaired, _ = repair_forest(new_graph, 0.2, record,
                                    delta.touched_nodes(), rng=6)
        _assert_forest_of(repaired, new_graph)

    def test_repair_counters_only(self, random_graph):
        _, record = sample_forest_recorded(random_graph, 0.2, rng=5)
        delta = GraphDelta().upsert_edge(0, 15, 2.0)
        counters = WorkCounters()
        repair_forest(delta.apply(random_graph), 0.2, record,
                      delta.touched_nodes(), rng=6, counters=counters)
        assert counters.repair_dirty_nodes == 2
        assert counters.repair_fresh_steps > 0
        assert counters.repair_replayed_steps > 0
        assert counters.walk_steps == 0  # repair is not sampling work

    def test_sequence_of_repairs_stays_valid(self, random_graph):
        graph = random_graph
        _, record = sample_forest_recorded(graph, 0.2, rng=1)
        rng = np.random.default_rng(77)
        for step in range(4):
            delta = GraphDelta().upsert_edge(
                step, (step + 11) % graph.num_nodes,
                1.0 + 0.5 * step)
            graph = delta.apply(graph)
            repaired, record = repair_forest(graph, 0.2, record,
                                             delta.touched_nodes(),
                                             rng=rng)
            _assert_forest_of(repaired, graph)

    def test_dirty_out_of_range(self, path4):
        _, record = sample_forest_recorded(path4, 0.3, rng=0)
        with pytest.raises(ConfigError, match="out of range"):
            repair_forest(path4, 0.3, record, np.array([9]), rng=0)

    def test_record_graph_mismatch(self, path4, k5):
        _, record = sample_forest_recorded(path4, 0.3, rng=0)
        with pytest.raises(ConfigError, match="record covers"):
            repair_forest(k5, 0.3, record, np.empty(0, dtype=np.int64),
                          rng=0)

    def test_single_edge_repair_beats_rebuild(self):
        """Acceptance criterion at the kernel level: repairing a bank
        of forests after one edge update costs a small fraction of the
        fresh draws a rebuild would make."""
        graph = erdos_renyi(60, 0.1, rng=7)
        build = WorkCounters()
        rng = np.random.default_rng(42)
        records = []
        for _ in range(8):
            _, record = sample_forest_recorded(graph, 0.2, rng=rng,
                                               counters=build)
            records.append(record)
        delta = GraphDelta().upsert_edge(0, 30, 2.0)
        new_graph = delta.apply(graph)
        repair = WorkCounters()
        for record in records:
            repair_forest(new_graph, 0.2, record, delta.touched_nodes(),
                          rng=rng, counters=repair)
        # the only sampling work a repair pays is its fresh draws
        assert repair.repair_fresh_steps * 5 < build.walk_steps, (
            f"repair cost {repair.repair_fresh_steps} fresh steps vs "
            f"{build.walk_steps} rebuild walk steps")


def _rooted_forest_law(graph, alpha):
    """Exact Theorem-4.3 distribution over rooted forests (same
    protocol as tests/test_forest_samplers.py)."""
    law = {}
    for forest in enumerate_spanning_forests(graph):
        trees = {}
        for node, label in enumerate(forest.labels):
            trees.setdefault(label, []).append(node)
        edge_key = frozenset(tuple(sorted(edge)) for edge in forest.edges)
        for roots in product(*trees.values()):
            law[(edge_key, frozenset(roots))] = forest_probability(
                graph, alpha, forest, roots)
    return law


def _forest_key(forest):
    edges = frozenset(
        (min(int(node), int(parent)), max(int(node), int(parent)))
        for node, parent in enumerate(forest.parents) if parent >= 0)
    return edges, frozenset(forest.root_set.tolist())


@pytest.mark.slow
class TestRepairedDistribution:
    """Chi-square GOF: the *sample on G → mutate → repair* pipeline
    must draw from the new graph's exact forest law.

    Same fixed-seed protocol as the sampler GOF suite (significance
    1e-3, expected cells >= 5, no re-rolling): each trial samples a
    recorded forest on the pre-mutation graph, applies the delta, and
    repairs — the repaired forest is the categorised observation.
    This is precisely the distributional equivalence Theorem 4.3
    requires of a streaming index, and a biased repair rule (e.g.
    keeping untouched trees conditioned on the old popping history)
    fails it by a wide margin at these sample sizes.
    """

    SIGNIFICANCE = 1e-3
    SAMPLES = 4000

    def _chi_square_repaired(self, graph, delta, alpha, seed):
        new_graph = delta.apply(graph)
        dirty = delta.touched_nodes()
        law = _rooted_forest_law(new_graph, alpha)
        assert sum(law.values()) == pytest.approx(1.0, abs=1e-12)
        expected = {key: self.SAMPLES * p for key, p in law.items()}
        assert min(expected.values()) >= 5.0, \
            "workload too small for the chi-square approximation"
        observed = dict.fromkeys(law, 0)
        rng = np.random.default_rng(seed)
        for _ in range(self.SAMPLES):
            _, record = sample_forest_recorded(graph, alpha, rng=rng)
            repaired, _ = repair_forest(new_graph, alpha, record, dirty,
                                        rng=rng)
            key = _forest_key(repaired)
            assert key in law, f"repaired forest outside the law: {key}"
            observed[key] += 1
        statistic = sum(
            (observed[key] - expected[key]) ** 2 / expected[key]
            for key in law)
        critical = chi2.ppf(1.0 - self.SIGNIFICANCE, df=len(law) - 1)
        assert statistic <= critical, (
            f"chi-square {statistic:.2f} > critical {critical:.2f} "
            f"(df={len(law) - 1}, significance={self.SIGNIFICANCE}) — "
            f"repaired forests do not match the fresh-sample law")

    def test_path_reweighted(self, path4):
        self._chi_square_repaired(
            path4, GraphDelta().set_weight(1, 2, 2.5), 0.3,
            seed=20260808)

    def test_triangle_edge_removed(self, weighted_triangle):
        self._chi_square_repaired(
            weighted_triangle, GraphDelta().remove_edge(0, 1), 0.25,
            seed=20260809)

    def test_path_edge_added(self, path4):
        self._chi_square_repaired(
            path4, GraphDelta().add_edge(1, 3, 2.0), 0.35,
            seed=20260810)
