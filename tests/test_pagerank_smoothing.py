"""Tests for the forest-based global PageRank and signal smoothing."""

import numpy as np
import pytest

from repro.applications import (
    global_pagerank_exact,
    global_pagerank_forests,
    smooth_signal_exact,
    smooth_signal_forests,
)
from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, star_graph
from repro.linalg import exact_ppr_matrix


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, rng=501)


class TestGlobalPageRankExact:
    def test_sums_to_one(self, graph):
        pagerank = global_pagerank_exact(graph, 0.15)
        assert pagerank.sum() == pytest.approx(1.0)

    def test_matches_column_average_of_ppr(self, graph):
        pagerank = global_pagerank_exact(graph, 0.2)
        matrix = exact_ppr_matrix(graph, 0.2)
        assert np.allclose(pagerank, matrix.mean(axis=0), atol=1e-10)

    def test_hub_ranks_first(self):
        graph = star_graph(10)
        pagerank = global_pagerank_exact(graph, 0.15)
        assert int(np.argmax(pagerank)) == 0

    def test_alpha_validation(self, graph):
        with pytest.raises(ConfigError):
            global_pagerank_exact(graph, 0.0)


class TestGlobalPageRankForests:
    @pytest.mark.parametrize("improved", [False, True])
    def test_unbiased(self, graph, improved):
        exact = global_pagerank_exact(graph, 0.2)
        estimate = global_pagerank_forests(graph, 0.2, num_forests=3000,
                                           improved=improved, rng=7)
        assert np.abs(estimate - exact).max() < 0.01

    def test_estimate_sums_to_one(self, graph):
        estimate = global_pagerank_forests(graph, 0.2, num_forests=50, rng=3)
        assert estimate.sum() == pytest.approx(1.0)

    def test_improved_lower_variance(self, graph):
        exact = global_pagerank_exact(graph, 0.2)
        errors = {}
        for improved in (False, True):
            per_seed = []
            for seed in range(8):
                estimate = global_pagerank_forests(graph, 0.2,
                                                   num_forests=20,
                                                   improved=improved,
                                                   rng=seed)
                per_seed.append(np.abs(estimate - exact).sum())
            errors[improved] = np.mean(per_seed)
        assert errors[True] < errors[False]

    def test_directed_improved_rejected(self):
        directed = from_edges([(0, 1), (1, 0), (1, 2), (2, 0)],
                              directed=True)
        with pytest.raises(ConfigError):
            global_pagerank_forests(directed, 0.2, improved=True)
        # basic works
        estimate = global_pagerank_forests(directed, 0.2, num_forests=20,
                                           rng=1)
        assert estimate.shape == (3,)

    def test_count_validation(self, graph):
        with pytest.raises(ConfigError):
            global_pagerank_forests(graph, 0.2, num_forests=0)


class TestSmoothing:
    def test_exact_smoother_is_ppr_operator(self, graph):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=graph.num_nodes)
        matrix = exact_ppr_matrix(graph, 0.25)
        assert np.allclose(smooth_signal_exact(graph, signal, 0.25),
                           matrix @ signal, atol=1e-9)

    def test_constant_signal_fixed_point(self, graph):
        signal = np.full(graph.num_nodes, 3.5)
        smoothed = smooth_signal_exact(graph, signal, 0.1)
        assert np.allclose(smoothed, 3.5)

    @pytest.mark.parametrize("improved", [False, True])
    def test_forest_smoother_unbiased(self, graph, improved):
        rng = np.random.default_rng(4)
        signal = rng.normal(size=graph.num_nodes)
        exact = smooth_signal_exact(graph, signal, 0.25)
        estimate = smooth_signal_forests(graph, signal, 0.25,
                                         num_forests=4000,
                                         improved=improved, rng=9)
        assert np.abs(estimate - exact).max() < 0.05

    def test_denoising_effect(self, graph):
        """Smoothing a noisy piecewise signal reduces its error."""
        rng = np.random.default_rng(6)
        clean = smooth_signal_exact(
            graph, rng.normal(size=graph.num_nodes), 0.05)
        noisy = clean + rng.normal(scale=1.0, size=graph.num_nodes)
        denoised = smooth_signal_forests(graph, noisy, 0.2,
                                         num_forests=200, rng=10)
        assert (np.linalg.norm(denoised - clean)
                < np.linalg.norm(noisy - clean))

    def test_shape_validation(self, graph):
        with pytest.raises(ConfigError):
            smooth_signal_forests(graph, np.ones(3), 0.2)
        with pytest.raises(ConfigError):
            smooth_signal_exact(graph, np.ones(3), 0.2)
