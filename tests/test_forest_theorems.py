r"""Theorem verification by exhaustive enumeration (§3).

Every identity the paper proves is checked digit-for-digit on small
graphs where all rooted spanning forests can be enumerated:

- Theorem 3.1: ``det(L_β)·β^n·Π d_u = Σ_F w(F) Π_{ρ(F)} β d_u``
- Theorem 3.2: principal minor ↔ forests with ``v`` a root
- Theorem 3.3: off-diagonal minor ↔ forests where ``u`` rooted in ``v``
- Theorems 3.4/3.5/3.6: rooted-in probabilities = PPR values
- Theorem 3.7/3.8: conditional root distribution is degree-weighted
- Theorem 4.3: sampler probabilities ∝ ``w(F)·Π β d_u``
"""

import numpy as np
import pytest

from repro.exceptions import ConfigError, GraphError
from repro.forests.enumeration import (
    enumerate_spanning_forests,
    forest_probability,
    forest_weight_rooted_at,
    forest_weight_rooted_pair,
    rooted_in_probability_matrix,
    total_rooted_forest_weight,
)
from repro.graph import complete_graph, from_edges, path_graph
from repro.linalg import exact_ppr_matrix
from repro.linalg.beta_laplacian import (
    beta_from_alpha,
    beta_laplacian_dense,
)

ALPHAS = (0.05, 0.3, 0.7)


def _minor(matrix: np.ndarray, row: int, col: int) -> np.ndarray:
    return np.delete(np.delete(matrix, row, axis=0), col, axis=1)


class TestEnumeration:
    def test_empty_forest_always_included(self, path4):
        forests = list(enumerate_spanning_forests(path4))
        assert any(len(f.edges) == 0 for f in forests)

    def test_path_counts(self, path4):
        # P4 has 3 edges, every subset is acyclic: 2^3 = 8 forests
        assert len(list(enumerate_spanning_forests(path4))) == 8

    def test_triangle_counts(self):
        triangle = from_edges([(0, 1), (1, 2), (0, 2)])
        # all subsets except the full triangle (a cycle): 7
        assert len(list(enumerate_spanning_forests(triangle))) == 7

    def test_k4_spanning_tree_count(self):
        # Cayley: K4 has 16 spanning trees = forests with n-1 edges
        k4 = complete_graph(4)
        trees = [f for f in enumerate_spanning_forests(k4)
                 if len(f.edges) == 3]
        assert len(trees) == 16

    def test_labels_partition(self, k5):
        for forest in enumerate_spanning_forests(k5):
            labels = np.asarray(forest.labels)
            # number of components = n - number of edges (forest property)
            assert len(set(labels.tolist())) == 5 - len(forest.edges)

    def test_weight_products(self, weighted_triangle):
        weights = {frozenset(f.edges): f.weight
                   for f in enumerate_spanning_forests(weighted_triangle)}
        assert weights[frozenset()] == pytest.approx(1.0)
        assert weights[frozenset({(0, 1), (1, 2)})] == pytest.approx(2.0)
        assert weights[frozenset({(1, 2), (0, 2)})] == pytest.approx(6.0)

    def test_too_many_edges_refused(self):
        big = complete_graph(8)  # 28 edges
        with pytest.raises(GraphError):
            list(enumerate_spanning_forests(big))

    def test_directed_refused(self, directed_line):
        with pytest.raises(ConfigError):
            list(enumerate_spanning_forests(directed_line))


class TestTheorem31:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_unweighted(self, k5, alpha):
        beta = beta_from_alpha(alpha)
        lhs = (np.linalg.det(beta_laplacian_dense(k5, alpha))
               * beta ** 5 * np.prod(k5.degrees))
        assert lhs == pytest.approx(total_rooted_forest_weight(k5, alpha),
                                    rel=1e-9)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_weighted(self, weighted_small, alpha):
        n = weighted_small.num_nodes
        beta = beta_from_alpha(alpha)
        lhs = (np.linalg.det(beta_laplacian_dense(weighted_small, alpha))
               * beta ** n * np.prod(weighted_small.degrees))
        assert lhs == pytest.approx(
            total_rooted_forest_weight(weighted_small, alpha), rel=1e-9)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_equals_det_regularized_laplacian(self, weighted_triangle, alpha):
        """Equivalent classic form: the total rooted weight is det(L+βD)."""
        beta = beta_from_alpha(alpha)
        degrees = weighted_triangle.degrees
        dense = (np.diag((1 + beta) * degrees)
                 - weighted_triangle.to_scipy_adjacency().toarray())
        assert np.linalg.det(dense) == pytest.approx(
            total_rooted_forest_weight(weighted_triangle, alpha), rel=1e-9)


class TestTheorem32:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("root", [0, 1, 2, 3, 4])
    def test_principal_minor(self, weighted_small, alpha, root):
        """det(L_β^(v)) · β^n · Π d_u = Σ_{F ∋ v root} w(F) Π β d_u."""
        n = weighted_small.num_nodes
        beta = beta_from_alpha(alpha)
        l_beta = beta_laplacian_dense(weighted_small, alpha)
        lhs = (np.linalg.det(_minor(l_beta, root, root))
               * beta ** n * np.prod(weighted_small.degrees))
        rhs = forest_weight_rooted_at(weighted_small, alpha, root)
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestTheorem33:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("graph_name", ["weighted_triangle",
                                            "weighted_small"])
    def test_off_diagonal_minor(self, request, graph_name, alpha):
        """Cofactor of the (u, v) minor ↔ forests where u is rooted in v.

        With the β-Laplacian's asymmetric row scaling ``(βD)^{-1}`` the
        identity carries the degree ratio ``d_v/d_u``:

            (-1)^{u+v} det(L_β^{(u,v)}) · β^n Π d · (d_v/d_u)
                = Σ_{F : u rooted in v} w(F) Π_{ρ(F)} β d .

        (Verified digit-for-digit; the paper's statement is for the
        unscaled ``L + βD`` form, where the ratio is absorbed.)
        """
        graph = request.getfixturevalue(graph_name)
        n = graph.num_nodes
        beta = beta_from_alpha(alpha)
        l_beta = beta_laplacian_dense(graph, alpha)
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                sign = (-1.0) ** (u + v)
                lhs = (sign * np.linalg.det(_minor(l_beta, u, v))
                       * beta ** n * np.prod(graph.degrees)
                       * graph.degrees[v] / graph.degrees[u])
                rhs = forest_weight_rooted_pair(graph, alpha, source=u,
                                                root=v)
                assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-12)


class TestTheorems34to36:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_rooted_in_probability_is_ppr_unweighted(self, k5, alpha):
        assert np.allclose(rooted_in_probability_matrix(k5, alpha),
                           exact_ppr_matrix(k5, alpha), atol=1e-10)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_rooted_in_probability_is_ppr_weighted(self, weighted_small,
                                                   alpha):
        assert np.allclose(
            rooted_in_probability_matrix(weighted_small, alpha),
            exact_ppr_matrix(weighted_small, alpha), atol=1e-10)

    def test_rows_sum_to_one(self, weighted_triangle):
        matrix = rooted_in_probability_matrix(weighted_triangle, 0.4)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_diagonal_theorem_34(self, weighted_small):
        """pi(s,s) = rooted weight with s a root / total rooted weight."""
        alpha = 0.25
        ppr = exact_ppr_matrix(weighted_small, alpha)
        total = total_rooted_forest_weight(weighted_small, alpha)
        for s in range(weighted_small.num_nodes):
            ratio = forest_weight_rooted_at(weighted_small, alpha, s) / total
            assert ratio == pytest.approx(ppr[s, s], rel=1e-9)

    def test_offdiagonal_theorem_35(self, weighted_triangle):
        alpha = 0.25
        ppr = exact_ppr_matrix(weighted_triangle, alpha)
        total = total_rooted_forest_weight(weighted_triangle, alpha)
        for s in range(3):
            for t in range(3):
                if s == t:
                    continue
                ratio = forest_weight_rooted_pair(
                    weighted_triangle, alpha, source=s, root=t) / total
                assert ratio == pytest.approx(ppr[s, t], rel=1e-9)


class TestTheorem43:
    def test_probabilities_normalise(self, path4):
        """Summing Pr(rooted forest) over every (forest, root choice)
        must give exactly 1."""
        alpha = 0.3
        total_probability = 0.0
        from itertools import product
        for forest in enumerate_spanning_forests(path4):
            labels = np.asarray(forest.labels)
            components = [np.flatnonzero(labels == l)
                          for l in sorted(set(labels.tolist()))]
            for roots in product(*[c.tolist() for c in components]):
                total_probability += forest_probability(path4, alpha, forest,
                                                        tuple(roots))
        assert total_probability == pytest.approx(1.0, rel=1e-9)

    def test_invalid_root_selection(self, path4):
        forest = next(f for f in enumerate_spanning_forests(path4)
                      if len(f.edges) == 3)
        with pytest.raises(ConfigError):
            forest_probability(path4, 0.3, forest, (0, 1))  # same tree twice
