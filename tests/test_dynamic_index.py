"""DynamicForestIndex and the streaming-update serving path.

Covers the whole mutate stack above the repair kernel: index build
parity with the static bank, exact estimates after mutation, the
repairable on-disk artifact, the ``IndexManager.mutate`` lifecycle
verb (generation bump, solver drop, atomic graph swap), the service
endpoint (cache invalidation, metrics), the HTTP route, and the
loadgen churn scenario.  The repair-vs-rebuild work bound — the PR's
measurable acceptance criterion — is asserted at the index level and
again through the service counters.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.counters import WorkCounters
from repro.exceptions import ConfigError, GraphError
from repro.graph import GraphDelta
from repro.graph.generators import erdos_renyi
from repro.linalg import exact_ppr_matrix
from repro.montecarlo import DynamicForestIndex, ForestIndex
from repro.service import PPRService, ServiceConfig
from repro.service.http import make_server, serve_forever
from repro.service.index_manager import IndexManager
from repro.service.loadgen import build_requests, run_load, zipf_nodes

ALPHA = 0.2
SEED = 7


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.2, rng=SEED)


@pytest.fixture(scope="module")
def graph10():
    return erdos_renyi(10, 0.5, rng=44)


class TestBuild:
    def test_forests_bit_identical_to_static_build(self, graph):
        static = ForestIndex.build(graph, ALPHA, 6, rng=11)
        dynamic = DynamicForestIndex.build(graph, ALPHA, 6, rng=11)
        for a, b in zip(static.forests, dynamic.forests):
            assert np.array_equal(a.roots, b.roots)
            assert np.array_equal(a.parents, b.parents)
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        assert np.allclose(static.estimate_source(residual),
                           dynamic.estimate_source(residual))

    def test_workers_ignored_method_checked(self, graph):
        index = DynamicForestIndex.build(graph, ALPHA, 2, rng=0,
                                         workers=8)
        assert index.num_forests == 2
        with pytest.raises(ConfigError, match="cycle_popping"):
            DynamicForestIndex.build(graph, ALPHA, 2, rng=0,
                                     method="wilson")
        with pytest.raises(ConfigError, match="positive"):
            DynamicForestIndex.build(graph, ALPHA, 0, rng=0)

    def test_records_must_match_forests(self, graph):
        index = DynamicForestIndex.build(graph, ALPHA, 3, rng=0)
        with pytest.raises(ConfigError, match="records"):
            DynamicForestIndex(graph, ALPHA, index.forests, 0.0,
                               records=index.records[:2])

    def test_record_arrows_accounted(self, graph):
        index = DynamicForestIndex.build(graph, ALPHA, 3, rng=0)
        assert index.record_arrows == sum(r.num_arrows
                                          for r in index.records)
        assert index.record_arrows > 0


class TestMutated:
    def test_returns_new_index_over_new_graph(self, graph):
        index = DynamicForestIndex.build(graph, ALPHA, 5, rng=1)
        delta = GraphDelta().upsert_edge(0, 20, 2.0)
        mutated, work = index.mutated(delta, rng=2)
        assert mutated is not index
        assert mutated.graph.num_edges in (graph.num_edges,
                                           graph.num_edges + 1)
        assert index.graph is graph  # the old index is untouched
        assert work.repair_fresh_steps > 0
        assert work.repair_dirty_nodes == 2 * index.num_forests
        for forest in mutated.forests:
            forest.validate()

    def test_mutated_estimates_match_exact_ppr(self, graph10):
        """The statistical acceptance check one level above the
        chi-square suite: a mutated bank's estimator is unbiased for
        the *new* graph's exact PPR."""
        index = DynamicForestIndex.build(graph10, 0.25, 3000, rng=11)
        delta = (GraphDelta().upsert_edge(0, 5, 3.0)
                 .upsert_edge(2, 9, 0.5))
        mutated, _ = index.mutated(delta, rng=13)
        exact = exact_ppr_matrix(mutated.graph, 0.25)
        rng = np.random.default_rng(5)
        residual = rng.random(10) / 10
        want = residual @ exact
        assert np.abs(mutated.estimate_source(residual) - want).max() \
            < 0.02

    def test_repair_work_bound_vs_rebuild(self, graph):
        """Acceptance criterion: a single-edge mutate pays a small
        fraction of a full rebuild's sampling work."""
        index = DynamicForestIndex.build(graph, ALPHA, 8, rng=1)
        delta = GraphDelta().upsert_edge(0, 30, 2.0)
        _, work = index.mutated(delta, rng=3)
        rebuild = ForestIndex.build(delta.apply(graph), ALPHA, 8, rng=3)
        assert work.repair_fresh_steps * 5 \
            < rebuild.build_counters.walk_steps, (
                f"repair paid {work.repair_fresh_steps} fresh steps; "
                f"rebuild pays "
                f"{rebuild.build_counters.walk_steps} walk steps")

    def test_build_counters_accumulate_across_mutations(self, graph):
        index = DynamicForestIndex.build(graph, ALPHA, 3, rng=1)
        base_steps = index.build_counters.walk_steps
        mutated, work = index.mutated(
            GraphDelta().upsert_edge(1, 2, 2.0), rng=2)
        assert mutated.build_counters.walk_steps == base_steps
        assert mutated.build_counters.repair_fresh_steps == \
            work.repair_fresh_steps


class TestDynamicBank:
    def test_round_trip(self, graph, tmp_path):
        index = DynamicForestIndex.build(graph, ALPHA, 4, rng=9)
        path = tmp_path / "bank"
        index.save_dynamic_bank(path)
        loaded = DynamicForestIndex.load_dynamic_bank(path)
        assert loaded.alpha == ALPHA
        assert np.array_equal(loaded.graph.indptr, graph.indptr)
        assert np.array_equal(loaded.graph.indices, graph.indices)
        for a, b in zip(index.forests, loaded.forests):
            assert np.array_equal(a.roots, b.roots)
            assert np.array_equal(a.parents, b.parents)
        for a, b in zip(index.records, loaded.records):
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.arrows, b.arrows)

    def test_loaded_bank_still_mutates(self, graph, tmp_path):
        index = DynamicForestIndex.build(graph, ALPHA, 4, rng=9)
        path = tmp_path / "bank"
        index.save_dynamic_bank(path)
        loaded = DynamicForestIndex.load_dynamic_bank(path)
        delta = GraphDelta().upsert_edge(0, 13, 1.5)
        mutated, work = loaded.mutated(delta, rng=4)
        assert work.repair_fresh_steps > 0
        for forest in mutated.forests:
            forest.validate()
        # the mutated graph travels with the re-saved artifact
        mutated.save_dynamic_bank(path)
        again = DynamicForestIndex.load_dynamic_bank(path)
        assert np.array_equal(again.graph.indptr, mutated.graph.indptr)

    def test_rejects_static_bank(self, graph, tmp_path):
        static = ForestIndex.build(graph, ALPHA, 2, rng=0)
        path = tmp_path / "static"
        static.save_bank(path)
        with pytest.raises(ConfigError, match="not a dynamic"):
            DynamicForestIndex.load_dynamic_bank(path)


class TestIndexManagerMutate:
    def _manager(self, graph, dynamic):
        config = ServiceConfig(graph="g", alpha=ALPHA, seed=SEED,
                               budget_scale=0.05).ppr_config()
        manager = IndexManager(config, num_forests=6, dynamic=dynamic)
        manager.register_graph("g", graph)
        manager.warm("g", ALPHA)
        return manager

    def test_dynamic_manager_repairs(self, graph):
        manager = self._manager(graph, dynamic=True)
        before = manager.stats()["banks"]["g@0.2"]["generation"]
        summary = manager.mutate(
            "g", GraphDelta().upsert_edge(0, 20, 2.0))
        bank = summary["banks"]["g@0.2"]
        assert bank["repaired"] is True
        assert bank["generation"] == before + 1
        assert summary["dirty_nodes"] == [0, 20]
        assert summary["work"]["repair_fresh_steps"] > 0
        assert summary["work"]["walk_steps"] == 0
        # the registered graph was swapped
        new_graph = manager.graph("g")
        assert new_graph is not graph

    def test_static_manager_rebuilds(self, graph):
        manager = self._manager(graph, dynamic=False)
        summary = manager.mutate(
            "g", GraphDelta().upsert_edge(0, 20, 2.0))
        bank = summary["banks"]["g@0.2"]
        assert bank["repaired"] is False
        assert summary["work"]["walk_steps"] > 0

    def test_solvers_rebind_to_new_graph(self, graph):
        manager = self._manager(graph, dynamic=True)
        solver = manager.get_solver("g", "source", ALPHA, 0.5)
        manager.mutate("g", GraphDelta().upsert_edge(0, 20, 2.0))
        rebound = manager.get_solver("g", "source", ALPHA, 0.5)
        assert rebound is not solver  # old solver was dropped


@pytest.fixture(scope="module")
def dynamic_service(graph):
    config = ServiceConfig(graph="dyn", alpha=ALPHA, epsilon=0.5,
                           budget_scale=0.05, seed=SEED, max_batch=8,
                           max_wait_ms=2.0, cache_entries=16,
                           dynamic=True, port=0)
    with PPRService(config, graph=graph) as svc:
        yield svc


class TestServiceMutate:
    def test_payload_shape_and_cache_invalidation(self, dynamic_service):
        svc = dynamic_service
        svc.query("source", 0, top=3)
        _, hit = svc.query_result("source", 0)
        assert hit
        payload = svc.mutate(
            [{"op": "upsert", "u": 0, "v": 20, "weight": 2.0}])
        assert payload["graph"] == "dyn"
        assert payload["ops"] == 1
        assert payload["banks"]["dyn@0.2"]["repaired"] is True
        assert payload["work"]["repair_fresh_steps"] > 0
        assert "request_id" in payload
        # cached answers describe the old graph: they must be gone
        _, hit = svc.query_result("source", 0)
        assert not hit

    def test_mutation_metrics(self, dynamic_service):
        svc = dynamic_service
        before = svc.metrics.snapshot()["mutations"]
        svc.mutate([{"op": "upsert", "u": 1, "v": 2, "weight": 1.5}])
        snap = svc.metrics.snapshot()
        assert snap["mutations"] == before + 1
        assert snap["work"]["repair_fresh_steps"] > 0
        assert f"repro_service_mutations_total {before + 1}" \
            in svc.metrics_text()

    def test_bad_ops_rejected(self, dynamic_service):
        with pytest.raises(GraphError):
            dynamic_service.mutate([])
        with pytest.raises(GraphError):
            dynamic_service.mutate([{"op": "nope", "u": 0, "v": 1}])

    def test_queries_keep_working_after_mutate(self, dynamic_service):
        svc = dynamic_service
        before = svc.query("source", 3, top=5, use_cache=False)
        svc.mutate([{"op": "upsert", "u": 3, "v": 17, "weight": 5.0}])
        after = svc.query("source", 3, top=5, use_cache=False)
        assert after["total_mass"] == pytest.approx(1.0, abs=1e-9)
        assert before["top"] != after["top"]  # the graph really changed


class TestHTTPMutate:
    @pytest.fixture(scope="class")
    def base_url(self, dynamic_service):
        server = make_server(dynamic_service, port=0)
        serve_forever(server, in_thread=True)
        yield f"http://127.0.0.1:{server.server_port}"
        server.shutdown()
        server.server_close()

    def _post(self, url, body):
        request = urllib.request.Request(
            url, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, json.loads(response.read()),
                    dict(response.headers))

    def test_mutate_roundtrip(self, base_url):
        status, payload, headers = self._post(
            f"{base_url}/mutate",
            {"ops": [{"op": "upsert", "u": 5, "v": 9, "weight": 2.0}]})
        assert status == 200
        assert payload["ops"] == 1
        assert payload["banks"]["dyn@0.2"]["repaired"] is True
        assert headers.get("X-Request-Id")

    def test_mutate_bad_body_is_400(self, base_url):
        for body in ({"ops": []},
                     {"ops": [{"op": "nope", "u": 0, "v": 1}]},
                     {"ops": [{"op": "add", "u": 0, "v": 0}]},
                     {}):
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post(f"{base_url}/mutate", body)
            assert info.value.code == 400

    def test_churn_load_scenario(self, base_url, dynamic_service):
        summary = run_load(base_url, requests=12, concurrency=3,
                           num_nodes=40, kind="churn", mutate_every=4,
                           seed=3)
        assert summary["failed"] == 0
        assert dynamic_service.metrics.snapshot()["mutations"] >= 3


class TestChurnPlans:
    def test_mutation_cadence_and_validity(self):
        plans = build_requests("churn", zipf_nodes(40, 20, seed=5), 40,
                               mutate_every=5, seed=5)
        mutations = [body for path, body, ok in plans
                     if path == "/mutate"]
        assert len(mutations) == 4
        for body in mutations:
            (op,) = body["ops"]
            assert op["op"] == "upsert"  # valid under any interleaving
            assert 0 <= op["u"] < 40 and 0 <= op["v"] < 40
            assert op["u"] != op["v"]
            assert op["weight"] > 0

    def test_single_node_graph_never_mutates(self):
        plans = build_requests("churn", [0] * 8, 1, mutate_every=2,
                               seed=1)
        assert all(path == "/query" for path, _, _ in plans)

    def test_deterministic_in_seed(self):
        nodes = zipf_nodes(40, 16, seed=9)
        first = build_requests("churn", nodes, 40, seed=9)
        second = build_requests("churn", nodes, 40, seed=9)
        assert first == second
