"""Forest-estimator tests: conservation laws, conditional-expectation
relations, unbiasedness and Lemma 5.1's variance ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.forests import (
    root_indicator,
    sample_forests,
    source_estimate_basic,
    source_estimate_improved,
    target_estimate_basic,
    target_estimate_improved,
)
from repro.forests.forest import RootedForest
from repro.forests.sampling import sample_forest
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_ppr_matrix


def _simple_forest():
    """Two trees: {0,1,2} rooted at 0 and {3,4} rooted at 4."""
    return RootedForest(roots=np.array([0, 0, 0, 4, 4]),
                        parents=np.array([-1, 0, 1, 4, -1]))


class TestExactValues:
    def test_source_basic(self):
        forest = _simple_forest()
        residual = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        estimate = source_estimate_basic(forest, residual)
        assert estimate[0] == pytest.approx(0.6)   # tree {0,1,2}
        assert estimate[4] == pytest.approx(0.9)   # tree {3,4}
        assert estimate[1] == estimate[2] == estimate[3] == 0.0

    def test_source_improved(self):
        forest = _simple_forest()
        residual = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        degrees = np.array([1.0, 2.0, 1.0, 3.0, 1.0])
        estimate = source_estimate_improved(forest, residual, degrees)
        # tree {0,1,2}: total residual 0.6, total degree 4
        assert estimate[0] == pytest.approx(0.6 * 1.0 / 4.0)
        assert estimate[1] == pytest.approx(0.6 * 2.0 / 4.0)
        # tree {3,4}: total residual 0.9, total degree 4
        assert estimate[3] == pytest.approx(0.9 * 3.0 / 4.0)

    def test_target_basic(self):
        forest = _simple_forest()
        residual = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        estimate = target_estimate_basic(forest, residual)
        assert np.allclose(estimate, [0.1, 0.1, 0.1, 0.5, 0.5])

    def test_target_improved(self):
        forest = _simple_forest()
        residual = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        degrees = np.array([1.0, 2.0, 1.0, 3.0, 1.0])
        estimate = target_estimate_improved(forest, residual, degrees)
        tree_a = (0.1 * 1 + 0.2 * 2 + 0.3 * 1) / 4.0
        tree_b = (0.4 * 3 + 0.5 * 1) / 4.0
        assert np.allclose(estimate, [tree_a, tree_a, tree_a, tree_b, tree_b])

    def test_root_indicator(self):
        forest = _simple_forest()
        assert root_indicator(forest, 0).tolist() == [True, True, True,
                                                      False, False]
        with pytest.raises(ConfigError):
            root_indicator(forest, 9)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            source_estimate_basic(_simple_forest(), np.ones(3))


class TestConservation:
    """Both source estimators redistribute — never create — residual mass."""

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_source_mass_conserved(self, seed):
        graph = erdos_renyi(20, 0.2, rng=4)
        rng = np.random.default_rng(seed)
        forest = sample_forest(graph, 0.15, rng=rng)
        residual = rng.random(20)
        basic = source_estimate_basic(forest, residual)
        improved = source_estimate_improved(forest, residual, graph.degrees)
        assert basic.sum() == pytest.approx(residual.sum())
        assert improved.sum() == pytest.approx(residual.sum())

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_improved_is_conditional_expectation_of_basic(self, seed):
        """Within one forest, the improved target estimate is exactly
        the degree-weighted average of the basic one over root choices
        — i.e. averaging basic over the conditional root distribution
        reproduces improved (the conditional-MC identity)."""
        graph = erdos_renyi(15, 0.3, rng=6)
        rng = np.random.default_rng(seed)
        forest = sample_forest(graph, 0.2, rng=rng)
        residual = rng.random(15)
        degrees = graph.degrees
        improved = target_estimate_improved(forest, residual, degrees)
        for node in range(15):
            component = forest.component_of(node)
            weights = degrees[component] / degrees[component].sum()
            conditional = float(np.sum(weights * residual[component]))
            assert improved[node] == pytest.approx(conditional)


class TestUnbiasedness:
    """E[estimator] = Σ_u r(u) π(u, v) (source) / Σ_u π(v, u) r(u) (target)."""

    @pytest.mark.parametrize("estimator_kind", ["basic", "improved"])
    def test_source(self, estimator_kind):
        graph = erdos_renyi(10, 0.4, rng=8)
        alpha = 0.25
        rng = np.random.default_rng(5)
        residual = rng.random(10) / 10
        exact = exact_ppr_matrix(graph, alpha)
        want = residual @ exact  # sum_u r(u) pi(u, v)
        total = np.zeros(10)
        num_samples = 4000
        for forest in sample_forests(graph, alpha, num_samples, rng=9):
            if estimator_kind == "basic":
                total += source_estimate_basic(forest, residual)
            else:
                total += source_estimate_improved(forest, residual,
                                                  graph.degrees)
        assert np.abs(total / num_samples - want).max() < 0.02

    @pytest.mark.parametrize("estimator_kind", ["basic", "improved"])
    def test_target(self, estimator_kind):
        graph = erdos_renyi(10, 0.4, rng=8)
        alpha = 0.25
        rng = np.random.default_rng(15)
        residual = rng.random(10) / 10
        exact = exact_ppr_matrix(graph, alpha)
        want = exact @ residual  # sum_u pi(v, u) r(u)
        total = np.zeros(10)
        num_samples = 4000
        for forest in sample_forests(graph, alpha, num_samples, rng=19):
            if estimator_kind == "basic":
                total += target_estimate_basic(forest, residual)
            else:
                total += target_estimate_improved(forest, residual,
                                                  graph.degrees)
        assert np.abs(total / num_samples - want).max() < 0.02

    def test_weighted_graph_source(self):
        graph = with_random_weights(erdos_renyi(8, 0.5, rng=21), rng=3)
        alpha = 0.3
        residual = np.linspace(0.01, 0.1, 8)
        exact = exact_ppr_matrix(graph, alpha)
        want = residual @ exact
        total = np.zeros(8)
        num_samples = 4000
        for forest in sample_forests(graph, alpha, num_samples, rng=29):
            total += source_estimate_improved(forest, residual, graph.degrees)
        assert np.abs(total / num_samples - want).max() < 0.02


class TestVarianceReduction:
    """Lemma 5.1: the improved estimator never has larger variance."""

    def test_source_variance_ordering(self):
        graph = erdos_renyi(15, 0.3, rng=33)
        alpha = 0.1
        rng = np.random.default_rng(3)
        residual = rng.random(15) / 5
        basics, improveds = [], []
        for forest in sample_forests(graph, alpha, 600, rng=37):
            basics.append(source_estimate_basic(forest, residual))
            improveds.append(source_estimate_improved(forest, residual,
                                                      graph.degrees))
        basic_var = np.stack(basics).var(axis=0).sum()
        improved_var = np.stack(improveds).var(axis=0).sum()
        assert improved_var < basic_var

    def test_target_variance_ordering(self):
        graph = erdos_renyi(15, 0.3, rng=33)
        alpha = 0.1
        rng = np.random.default_rng(4)
        residual = rng.random(15) / 5
        basics, improveds = [], []
        for forest in sample_forests(graph, alpha, 600, rng=41):
            basics.append(target_estimate_basic(forest, residual))
            improveds.append(target_estimate_improved(forest, residual,
                                                      graph.degrees))
        basic_var = np.stack(basics).var(axis=0).sum()
        improved_var = np.stack(improveds).var(axis=0).sum()
        assert improved_var < basic_var


class TestIsolatedNodes:
    def test_isolated_component_falls_back(self, disconnected):
        forest = sample_forest(disconnected, 0.2, rng=0)
        residual = np.full(disconnected.num_nodes, 0.5)
        improved = source_estimate_improved(forest, residual,
                                            disconnected.degrees)
        # isolated node 5 roots itself with probability one
        assert improved[5] == pytest.approx(0.5)
        target_improved = target_estimate_improved(forest, residual,
                                                   disconnected.degrees)
        assert target_improved[5] == pytest.approx(0.5)
