"""PPRConfig tests: validation, resolution, budget arithmetic."""

import numpy as np
import pytest

from repro.core import PPRConfig
from repro.exceptions import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = PPRConfig()
        assert config.alpha == 0.01
        assert config.epsilon == 0.5

    @pytest.mark.parametrize("field,value", [
        ("alpha", 0.0), ("alpha", 1.0), ("alpha", -0.2),
        ("epsilon", 0.0), ("epsilon", -1.0),
        ("mu", 0.0), ("failure_probability", 0.0),
        ("failure_probability", 1.0), ("r_max", 0.0),
        ("budget_scale", 0.0), ("push_cost_ratio", 0.0),
        ("max_forests", 0), ("max_walks", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            PPRConfig(**{field: value})

    def test_frozen(self):
        config = PPRConfig()
        with pytest.raises(Exception):
            config.alpha = 0.5


class TestResolution:
    def test_mu_and_pf_default_to_inverse_n(self, k5):
        resolved = PPRConfig().resolve(k5)
        assert resolved.mu == pytest.approx(0.2)
        assert resolved.failure_probability == pytest.approx(0.2)

    def test_explicit_values_kept(self, k5):
        config = PPRConfig(mu=0.01, failure_probability=0.05)
        resolved = config.resolve(k5)
        assert resolved.mu == 0.01
        assert resolved.failure_probability == 0.05

    def test_resolve_idempotent(self, k5):
        resolved = PPRConfig().resolve(k5)
        assert resolved.resolve(k5) is resolved


class TestBudgets:
    def test_walk_budget_formula(self, k5):
        config = PPRConfig(epsilon=0.5, mu=0.2, failure_probability=0.2)
        want = (2 * 0.5 / 3 + 2) * np.log(2 / 0.2) / (0.5 ** 2 * 0.2)
        assert config.walk_budget(k5) == pytest.approx(want)

    def test_budget_scale_linear(self, k5):
        full = PPRConfig().walk_budget(k5)
        half = PPRConfig(budget_scale=0.5).walk_budget(k5)
        assert half == pytest.approx(full / 2)

    def test_budget_grows_with_n_through_mu(self, k5, grid3x3):
        # default mu = 1/n, so larger graphs get larger budgets
        assert PPRConfig().walk_budget(grid3x3) > PPRConfig().walk_budget(k5)

    def test_budget_decreases_with_epsilon(self, k5):
        loose = PPRConfig(epsilon=0.5).walk_budget(k5)
        tight = PPRConfig(epsilon=0.1).walk_budget(k5)
        assert tight > loose

    def test_num_forests_ceiling_and_clamps(self, k5):
        config = PPRConfig(max_forests=10)
        budget = config.walk_budget(k5)
        assert config.num_forests(k5, 1e-9) == 1          # floor at 1
        assert config.num_forests(k5, 1.0) == 10          # clamp at cap
        r_max = 3.0 / budget
        assert config.num_forests(k5, r_max) == 3         # ceil(r_max W)

    def test_with_overrides(self):
        config = PPRConfig().with_overrides(alpha=0.2, seed=9)
        assert config.alpha == 0.2
        assert config.seed == 9
        assert config.epsilon == 0.5
