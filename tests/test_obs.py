"""Observability layer: tracing, histograms, slow log, profiler.

Unit coverage for ``repro.obs`` plus the acceptance-level integration
test: a process-executor service with full head sampling must produce
debug span trees whose worker-side fold spans were recorded in a
forked child and stitched across the pipe — while serving payloads
byte-identical to a tracing-disabled twin.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.graph.generators import erdos_renyi
from repro.obs.histogram import (
    DEFAULT_BUCKETS,
    STAGES,
    HistogramRegistry,
    LatencyHistogram,
    format_le,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.slowlog import (
    ENTRY_FIELDS,
    SlowLog,
    format_entry,
    read_slowlog,
    summarize_entries,
)
from repro.obs.exposition import check_exposition
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace_events,
    new_request_id,
)
from repro.service import PPRService, ServiceConfig

SEED = 2022
ALPHA = 0.2
EPSILON = 0.5


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(300, 0.02, rng=SEED)


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------
class TestSpan:
    def test_nesting_offsets_and_durations(self):
        root = Span("query", request_id="r-1")
        with root.child("admission"):
            pass
        child = root.child("fold", batch=4)
        time.sleep(0.002)
        child.finish()
        root.finish()

        tree = root.to_dict()
        assert tree["name"] == "query"
        assert tree["offset_ms"] == 0.0
        names = [node["name"] for node in tree["children"]]
        assert names == ["admission", "fold"]
        fold = tree["children"][1]
        assert fold["attrs"] == {"batch": 4}
        assert fold["duration_ms"] >= 1.0
        # children start inside the parent's window
        assert 0.0 <= fold["offset_ms"] <= tree["duration_ms"]

    def test_finish_is_idempotent(self):
        span = Span("x")
        first = span.finish().end
        time.sleep(0.001)
        assert span.finish().end == first

    def test_context_manager_records_exception(self):
        span = Span("boom")
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("bad fold")
        assert span.end is not None
        assert span.attrs["error"] == "RuntimeError: bad fold"

    def test_add_raw_grafts_dict_list_and_ignores_none(self):
        root = Span("parent")
        worker = Span("worker", pid=1234)
        worker.child("fold").finish()
        raw = worker.finish().to_raw()

        root.add_raw(None)
        assert root.children == []
        root.add_raw(raw)
        root.add_raw([raw, raw])
        root.finish()

        tree = root.to_dict()
        grafted = tree["children"]
        assert [node["name"] for node in grafted] == ["worker"] * 3
        assert grafted[0]["children"][0]["name"] == "fold"
        assert grafted[0]["attrs"]["pid"] == 1234

    def test_null_span_is_inert(self):
        assert NULL_SPAN.enabled is False
        assert NULL_SPAN.child("anything") is NULL_SPAN
        assert NULL_SPAN.annotate(key="value") is NULL_SPAN
        assert NULL_SPAN.finish() is NULL_SPAN
        NULL_SPAN.add_raw({"name": "ignored"})
        assert NULL_SPAN.children == []
        assert NULL_SPAN.duration == 0.0
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert NULL_SPAN.to_dict() == {}


class TestTracer:
    def test_sampling_is_deterministic_per_seed(self):
        ids = [f"req-{index}" for index in range(200)]
        first = Tracer(0.37, seed=7)
        second = Tracer(0.37, seed=7)
        other_seed = Tracer(0.37, seed=8)
        decisions = [first.should_sample(rid) for rid in ids]
        assert decisions == [second.should_sample(rid) for rid in ids]
        assert decisions != [other_seed.should_sample(rid)
                             for rid in ids]
        # the rate is roughly honoured (crc32 is uniform enough)
        assert 0.15 < sum(decisions) / len(ids) < 0.60

    def test_rate_bounds(self):
        assert not Tracer(0.0).should_sample("any")
        assert Tracer(1.0).should_sample("any")
        with pytest.raises(ValueError):
            Tracer(1.5)
        with pytest.raises(ValueError):
            Tracer(0.5, capacity=0)

    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(0.0)
        assert tracer.trace("query", "id-1") is NULL_SPAN
        assert tracer.finish(NULL_SPAN) is None
        assert tracer.stats()["dropped"] == 1

    def test_force_bypasses_sampling(self):
        tracer = Tracer(0.0)
        span = tracer.trace("index_refresh", "id-1", force=True)
        assert span.enabled
        tree = tracer.finish(span)
        assert tree["name"] == "index_refresh"
        assert tracer.traces() == [tree]

    def test_ring_is_bounded(self):
        tracer = Tracer(1.0, capacity=4)
        for index in range(10):
            tracer.finish(tracer.trace("query", f"id-{index}"))
        kept = tracer.traces()
        assert len(kept) == 4
        assert kept[-1]["attrs"]["request_id"] == "id-9"
        assert tracer.stats()["buffered"] == 4

    def test_null_tracer(self):
        assert NULL_TRACER.trace("x", force=True) is NULL_SPAN
        assert NULL_TRACER.stats()["sampled"] == 0

    def test_request_ids_are_unique_and_pid_tagged(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert first.split("-")[0] == f"{os.getpid():x}"


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_buckets_ascending_and_le_format(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert format_le(0.025) == "0.025"
        assert format_le(10.0) == "10"

    def test_snapshot_is_cumulative_with_inf(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5.56)
        assert snap["buckets"] == [("0.01", 2), ("0.1", 3), ("1", 4),
                                   ("+Inf", 5)]

    def test_quantile_reports_bucket_upper_bound(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        assert hist.quantile(0.5) == 0.0  # empty
        for _ in range(9):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(0.99) == 1.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_threaded_observers_lose_nothing(self):
        hist = LatencyHistogram()
        per_thread = 500

        def worker(seed):
            for index in range(per_thread):
                hist.observe((seed + index % 7) * 1e-4)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 4 * per_thread
        assert hist.snapshot()["buckets"][-1][1] == 4 * per_thread

    def test_registry_is_fixed_at_construction(self):
        registry = HistogramRegistry()
        assert registry.stages == STAGES
        registry.observe("fold", 0.01)
        assert registry.histogram("fold").count == 1
        assert registry.snapshot()["fold"]["count"] == 1
        assert registry.quantile("merge", 0.5) == 0.0
        with pytest.raises(KeyError):
            registry.observe("not_a_stage", 0.01)


# ----------------------------------------------------------------------
# Slow log
# ----------------------------------------------------------------------
def _record(log, **overrides):
    entry = dict(request_id="abc-1", endpoint="query", kind="source",
                 node=7, alpha=ALPHA, epsilon=EPSILON, seconds=0.5)
    entry.update(overrides)
    return log.record(**entry)


class TestSlowLog:
    def test_admission_threshold_and_errors(self):
        log = SlowLog(threshold_ms=100.0)
        assert _record(log, seconds=0.05) is None  # fast, skipped
        assert _record(log, seconds=0.25) is not None  # slow, kept
        fast_error = _record(log, seconds=0.001, error="boom")
        assert fast_error is not None and fast_error["status"] == "error"
        stats = log.stats()
        assert stats["written"] == 2 and stats["skipped"] == 1

    def test_entry_schema_is_stable(self):
        log = SlowLog(threshold_ms=0.0)
        entry = _record(log, batch_size=4, disposition="executor",
                        work={"pushes": 12}, trace={"name": "query"})
        assert tuple(sorted(entry)) == tuple(sorted(ENTRY_FIELDS))
        assert entry["disposition"] == "executor"
        assert entry["work"] == {"pushes": 12}
        assert entry["trace"] == {"name": "query"}

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowLog(path, threshold_ms=0.0) as log:
            _record(log, seconds=0.1)
            _record(log, seconds=0.2, error="boom")
        entries = read_slowlog(path)
        assert [entry["seconds"] for entry in entries] == [0.1, 0.2]
        # every line is standalone JSON with sorted keys
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert lines[0] == json.dumps(json.loads(lines[0]),
                                      sort_keys=True)

    def test_read_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_slowlog(path)

    def test_summarize_and_format(self):
        log = SlowLog(threshold_ms=0.0)
        trace = {"name": "query", "duration_ms": 200.0, "children": [
            {"name": "fold", "duration_ms": 150.0}]}
        _record(log, seconds=0.2, disposition="executor", batch_size=3,
                trace=trace)
        _record(log, seconds=0.4, error="boom", disposition="error")
        summary = summarize_entries(log.recent())
        overview = summary["overview"]
        assert overview["entries"] == 2
        assert overview["errors"] == 1
        assert overview["max_seconds"] == 0.4
        assert overview["dispositions"] == {"error": 1, "executor": 1}
        spans = {row["span"]: row for row in summary["stages"]}
        assert spans["fold"]["count"] == 1
        assert spans["fold"]["total_ms"] == 150.0

        lines = [format_entry(entry) for entry in log.recent()]
        assert "batch=3" in lines[0] and "executor" in lines[0]
        assert lines[1].startswith("ERR") and "boom" in lines[1]


class TestSlowLogRotation:
    def test_rotates_at_size_cap(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowLog(path, threshold_ms=0.0, max_bytes=600) as log:
            for index in range(12):
                _record(log, request_id=f"rid-{index}", seconds=0.1)
            stats = log.stats()
        assert stats["rotations"] >= 1
        assert stats["max_bytes"] == 600
        rotated = tmp_path / "slow.jsonl.1"
        assert rotated.exists()
        # both generations stay within ~max_bytes each
        assert path.stat().st_size <= 600 + 400
        assert rotated.stat().st_size <= 600 + 400
        # every admitted entry survives in exactly one generation
        # (older generations beyond .1 are dropped by design)
        live = read_slowlog(path)
        old = read_slowlog(rotated)
        assert live and old
        ids = [entry["request_id"] for entry in old + live]
        assert ids == sorted(ids, key=lambda rid: int(rid.split("-")[1]))

    def test_no_rotation_without_cap(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowLog(path, threshold_ms=0.0) as log:
            for index in range(20):
                _record(log, request_id=f"rid-{index}", seconds=0.1)
            assert log.stats()["rotations"] == 0
        assert not (tmp_path / "slow.jsonl.1").exists()
        assert len(read_slowlog(path)) == 20

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            SlowLog(max_bytes=0)

    def test_memory_only_cap_is_harmless(self):
        log = SlowLog(threshold_ms=0.0, max_bytes=100)
        for _ in range(5):
            _record(log, seconds=0.1)
        assert log.stats()["rotations"] == 0


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _tree(self):
        root = Span("query", request_id="rid-9")
        with root.child("admission"):
            pass
        with root.child("fold", batch=2):
            time.sleep(0.001)
        return root.finish().to_dict()

    def test_trees_become_threads_of_complete_events(self):
        document = chrome_trace_events([self._tree(), self._tree()])
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        metadata = [event for event in events if event["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "repro-serve"
        # one thread_name per tree, request id in the label
        thread_names = [event for event in metadata
                        if event["name"] == "thread_name"]
        assert len(thread_names) == 2
        assert "rid-9" in thread_names[0]["args"]["name"]
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "query", "admission", "fold"}
        for event in complete:
            assert event["dur"] >= 0.0 and event["ts"] >= 0.0
        fold = next(event for event in complete
                    if event["name"] == "fold")
        assert fold["args"]["batch"] == 2

    def test_empty_and_malformed_trees_are_skipped(self):
        document = chrome_trace_events([{}, None, "junk"])
        assert len(document["traceEvents"]) == 1  # process_name only


# ----------------------------------------------------------------------
# Exposition format checker
# ----------------------------------------------------------------------
VALID_EXPOSITION = (
    "# HELP repro_requests_total Requests served.\n"
    "# TYPE repro_requests_total counter\n"
    'repro_requests_total{tenant="acme"} 3\n'
    'repro_requests_total{tenant="beta"} 1\n'
    "# HELP repro_latency_seconds Latency.\n"
    "# TYPE repro_latency_seconds histogram\n"
    'repro_latency_seconds_bucket{le="0.1"} 2\n'
    'repro_latency_seconds_bucket{le="+Inf"} 4\n'
    "repro_latency_seconds_sum 1.5\n"
    "repro_latency_seconds_count 4\n"
)


class TestCheckExposition:
    def test_valid_document_passes(self):
        assert check_exposition(VALID_EXPOSITION) == []

    def test_missing_trailing_newline(self):
        failures = check_exposition(VALID_EXPOSITION.rstrip("\n"))
        assert any("newline" in failure for failure in failures)

    def test_sample_without_metadata(self):
        failures = check_exposition("orphan_total 1\n")
        assert any("HELP" in failure or "TYPE" in failure
                   for failure in failures)

    def test_duplicate_labelset_rejected(self):
        text = ("# HELP x_total X.\n# TYPE x_total counter\n"
                'x_total{a="1"} 1\nx_total{a="1"} 2\n')
        assert any("duplicate" in failure.lower()
                   for failure in check_exposition(text))

    def test_negative_counter_rejected(self):
        text = ("# HELP x_total X.\n# TYPE x_total counter\n"
                "x_total -1\n")
        assert any("counter" in failure.lower()
                   for failure in check_exposition(text))

    def test_non_monotone_buckets_rejected(self):
        text = ("# HELP h H.\n# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\nh_count 3\n")
        failures = check_exposition(text)
        assert any("monoton" in failure.lower() or "cumulative"
                   in failure.lower() for failure in failures)

    def test_missing_inf_bucket_rejected(self):
        text = ("# HELP h H.\n# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\nh_sum 1.0\nh_count 5\n')
        assert any("+Inf" in failure
                   for failure in check_exposition(text))

    def test_count_must_match_inf_bucket(self):
        text = ("# HELP h H.\n# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\nh_sum 1.0\nh_count 4\n')
        assert any("_count" in failure
                   for failure in check_exposition(text))

    def test_bad_label_syntax_rejected(self):
        text = ("# HELP x_total X.\n# TYPE x_total counter\n"
                "x_total{not closed 1\n")
        assert check_exposition(text)

    def test_service_render_is_clean(self, graph):
        config = ServiceConfig(graph="test", alpha=ALPHA,
                               epsilon=EPSILON, budget_scale=0.05,
                               seed=SEED, max_batch=4, max_wait_ms=2.0,
                               cache_entries=8, port=0, workers=1,
                               executor="thread")
        with PPRService(config, graph=graph) as service:
            service.query("source", 3, top=5, tenant="acme")
            service.query("source", 4, top=5)
            text = service.metrics_text()
        assert check_exposition(text) == []
        assert 'tenant="acme"' in text


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_samples_and_collapsed_dump(self, tmp_path):
        with SamplingProfiler(interval=0.001) as profiler:
            deadline = time.perf_counter() + 0.08
            while time.perf_counter() < deadline:
                sum(i * i for i in range(1000))
        assert profiler.samples > 0
        lines = profiler.collapsed()
        assert lines and all(" " in line for line in lines)
        stack, count = lines[0].rsplit(" ", 1)
        assert ";" in stack or "." in stack
        assert int(count) >= 1

        out = tmp_path / "profile.txt"
        assert profiler.dump(str(out)) == profiler.samples
        assert out.read_text().splitlines() == lines

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)


# ----------------------------------------------------------------------
# Acceptance: cross-process stitching + payload byte-identity
# ----------------------------------------------------------------------
def _span_nodes(tree):
    yield tree
    for child in tree.get("children", ()):
        yield from _span_nodes(child)


class TestServiceTracingIntegration:
    NODES = (0, 3, 11, 42)

    def _config(self, **overrides):
        return ServiceConfig(graph="test", alpha=ALPHA, epsilon=EPSILON,
                             budget_scale=0.05, seed=SEED, max_batch=4,
                             max_wait_ms=2.0, cache_entries=0, port=0,
                             workers=2, executor="process", **overrides)

    def test_worker_spans_stitch_and_payloads_match(self, graph):
        with PPRService(self._config(trace_sample_rate=1.0),
                        graph=graph) as traced:
            debug_payload = traced.query("source", 3, top=5, debug=True)
            traced_payloads = [traced.query("source", node, top=5)
                               for node in self.NODES]
            tracer_stats = traced.healthz()["observability"]["tracing"]
        with PPRService(self._config(), graph=graph) as plain:
            plain_payloads = [plain.query("source", node, top=5)
                              for node in self.NODES]

        # acceptance 1: the debug span tree reaches into the worker
        debug = debug_payload["debug"]
        assert debug["disposition"] == "executor"
        tree = debug["trace"]
        assert tree["name"] == "query"
        nodes = list(_span_nodes(tree))
        names = [node["name"] for node in nodes]
        for expected in ("admission", "cache_lookup", "batch",
                         "dispatch", "worker", "fold", "merge",
                         "serialize"):
            assert expected in names, f"missing span {expected}"
        worker = next(node for node in nodes if node["name"] == "worker")
        assert worker["attrs"]["pid"] != os.getpid()  # forked child
        worker_children = [node["name"]
                           for node in worker.get("children", ())]
        assert "fold" in worker_children
        assert debug["counters"]  # work counters inline
        assert tracer_stats["sampled"] >= len(self.NODES) + 1

        # acceptance 2: tracing must not perturb served bytes
        assert "debug" not in traced_payloads[0]
        assert (json.dumps(traced_payloads, sort_keys=True)
                == json.dumps(plain_payloads, sort_keys=True))

    def test_sampled_rate_zero_serves_identical_payloads(self, graph):
        """debug=1 still works (forced trace) when sampling is off."""
        with PPRService(self._config(), graph=graph) as service:
            payload = service.query("source", 3, top=5, debug=True)
            assert payload["debug"]["trace"]["name"] == "query"
            assert service.tracer.stats()["sampled"] == 1

    def test_telemetry_tenants_and_slo_do_not_perturb_payloads(
            self, graph):
        """Full telemetry (tracing + tenant labels + hair-trigger SLO
        windows) must serve bytes identical to the plain twin."""
        loud = self._config(trace_sample_rate=1.0,
                            slo_latency_ms=0.001,
                            slo_fast_window_s=1.0,
                            slo_slow_window_s=5.0,
                            slo_burn_threshold=1.0)
        with PPRService(loud, graph=graph) as traced:
            loud_payloads = [
                traced.query("source", node, top=5,
                             tenant=f"tenant-{index % 2}")
                for index, node in enumerate(self.NODES)]
            # the instrumentation itself saw the traffic...
            assert traced.metrics.tenant_table()
            assert traced.statusz()["slo"]
        with PPRService(self._config(), graph=graph) as plain:
            plain_payloads = [plain.query("source", node, top=5)
                              for node in self.NODES]
        # ...but the served bytes never change
        assert (json.dumps(loud_payloads, sort_keys=True)
                == json.dumps(plain_payloads, sort_keys=True))
