"""Generator tests: structural guarantees + reproducibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    powerlaw_configuration,
    random_tree,
    star_graph,
    watts_strogatz,
    with_random_weights,
)
from repro.graph.validation import check_graph_invariants


class TestDeterministicTopologies:
    def test_complete(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert np.all(graph.degrees == 5.0)

    def test_cycle(self):
        graph = cycle_graph(7)
        assert graph.num_edges == 7
        assert np.all(graph.degrees == 2.0)

    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1.0
        assert graph.degree(2) == 2.0

    def test_path_single_node(self):
        assert path_graph(1).num_edges == 0

    def test_star(self):
        graph = star_graph(6)
        assert graph.num_nodes == 7
        assert graph.degree(0) == 6.0

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        # edges: 3*3 horizontal + 2*4 vertical
        assert graph.num_edges == 17

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)


class TestRandomTree:
    def test_is_tree(self):
        graph = random_tree(40, rng=5)
        assert graph.num_edges == 39
        assert graph.is_connected

    def test_reproducible(self):
        assert random_tree(20, rng=1) == random_tree(20, rng=1)

    def test_single_node(self):
        assert random_tree(1, rng=0).num_edges == 0


class TestErdosRenyi:
    def test_extreme_probabilities(self):
        assert erdos_renyi(10, 0.0, rng=0).num_edges == 0
        assert erdos_renyi(10, 1.0, rng=0).num_edges == 45

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi(200, 0.1, rng=3)
        expected = 0.1 * 200 * 199 / 2
        assert abs(graph.num_edges - expected) < 5 * np.sqrt(expected)

    def test_reproducible(self):
        assert erdos_renyi(50, 0.2, rng=9) == erdos_renyi(50, 0.2, rng=9)

    def test_invariants(self):
        check_graph_invariants(erdos_renyi(60, 0.15, rng=2))

    def test_bad_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = barabasi_albert(50, 3, rng=4)
        # seed clique C(4,2)=6 edges + 46 nodes * 3 attachments
        assert graph.num_edges == 6 + 46 * 3
        assert graph.is_connected

    def test_hub_emerges(self):
        graph = barabasi_albert(300, 2, rng=8)
        assert graph.degrees.max() > 4 * graph.degrees.mean()

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 5)


class TestChungLu:
    def test_mean_degree_targeted(self):
        expected = np.full(300, 8.0)
        graph = chung_lu(expected, rng=11)
        assert abs(graph.average_degree - 8.0) < 1.5

    def test_heavy_tail_respected(self):
        weights = np.ones(400)
        weights[0] = 80.0
        graph = chung_lu(weights, rng=13)
        assert graph.degrees[0] > 5 * graph.degrees[1:].mean()

    def test_all_zero_rejected(self):
        with pytest.raises(GraphError):
            chung_lu(np.zeros(5))


class TestPowerlawConfiguration:
    def test_degree_bounds(self):
        graph = powerlaw_configuration(200, exponent=2.5, min_degree=3,
                                       max_degree=20, rng=17)
        # erasure may reduce but never increase degrees
        assert graph.degrees.max() <= 20
        check_graph_invariants(graph)

    def test_validation(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(10, exponent=0.5)


class TestWattsStrogatz:
    def test_no_rewire_is_ring(self):
        graph = watts_strogatz(20, 2, 0.0, rng=0)
        assert graph.num_edges == 40
        assert np.all(graph.degrees == 4.0)

    def test_rewire_keeps_simple(self):
        graph = watts_strogatz(50, 3, 0.5, rng=23)
        check_graph_invariants(graph)

    def test_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 6, 0.1)


class TestWithRandomWeights:
    def test_symmetric_integer_weights(self):
        base = erdos_renyi(30, 0.2, rng=31)
        weighted = with_random_weights(base, low=1, high=10, rng=3)
        assert weighted.is_weighted
        dense = weighted.to_scipy_adjacency().toarray()
        assert np.allclose(dense, dense.T)
        assert np.all(weighted.weights == np.round(weighted.weights))
        check_graph_invariants(weighted)

    def test_same_topology(self):
        base = erdos_renyi(30, 0.2, rng=31)
        weighted = with_random_weights(base, rng=3)
        assert np.array_equal(base.indptr, weighted.indptr)
        assert weighted.num_edges == base.num_edges

    def test_rejects_directed(self, directed_line):
        with pytest.raises(GraphError):
            with_random_weights(directed_line)


class TestPropertyBased:
    @given(n=st.integers(3, 40), p=st.floats(0.0, 1.0), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_erdos_renyi_always_valid(self, n, p, seed):
        check_graph_invariants(erdos_renyi(n, p, rng=seed))

    @given(n=st.integers(2, 40), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_random_tree_always_spanning(self, n, seed):
        graph = random_tree(n, rng=seed)
        assert graph.num_edges == n - 1
        assert graph.is_connected

    @given(n=st.integers(5, 40), m=st.integers(1, 4), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_barabasi_albert_always_connected(self, n, m, seed):
        if m >= n:
            return
        graph = barabasi_albert(n, m, rng=seed)
        assert graph.is_connected
        check_graph_invariants(graph)


class TestStochasticBlockModel:
    def test_block_structure(self):
        from repro.graph.generators import stochastic_block_model
        graph = stochastic_block_model([40, 40], [[0.4, 0.01], [0.01, 0.4]],
                                       rng=5)
        assert graph.num_nodes == 80
        check_graph_invariants(graph)
        # internal edges dominate external
        arcs = graph.edges()
        internal = np.sum((arcs[:, 0] < 40) == (arcs[:, 1] < 40))
        external = arcs.shape[0] - internal
        assert internal > 5 * external

    def test_edge_counts_near_expectation(self):
        from repro.graph.generators import stochastic_block_model
        graph = stochastic_block_model([50, 50], [[0.2, 0.05], [0.05, 0.2]],
                                       rng=7)
        expected = 2 * 0.2 * 50 * 49 / 2 + 0.05 * 50 * 50
        assert abs(graph.num_edges - expected) < 5 * np.sqrt(expected)

    def test_zero_probability_block(self):
        from repro.graph.generators import stochastic_block_model
        graph = stochastic_block_model([10, 10], [[0.5, 0.0], [0.0, 0.5]],
                                       rng=9)
        labels = graph.connected_components
        assert labels[:10].max() != labels[10:].min() or not graph.is_connected

    def test_reproducible(self):
        from repro.graph.generators import stochastic_block_model
        spec = ([15, 15], [[0.3, 0.1], [0.1, 0.3]])
        assert stochastic_block_model(*spec, rng=3) == \
            stochastic_block_model(*spec, rng=3)

    def test_validation(self):
        from repro.graph.generators import stochastic_block_model
        with pytest.raises(GraphError):
            stochastic_block_model([10], [[0.5, 0.1], [0.1, 0.5]])
        with pytest.raises(GraphError):
            stochastic_block_model([10, 10], [[0.5, 0.2], [0.1, 0.5]])
        with pytest.raises(GraphError):
            stochastic_block_model([10, 10], [[1.5, 0.1], [0.1, 0.5]])
