"""Edge-list IO round-trip tests."""

import pytest

from repro.exceptions import GraphError
from repro.graph import from_edges, read_edge_list, write_edge_list


class TestRoundTrip:
    def test_unweighted(self, tmp_path, k5):
        path = tmp_path / "k5.txt"
        write_edge_list(k5, path)
        loaded = read_edge_list(path)
        assert loaded == k5

    def test_weighted(self, tmp_path, weighted_small):
        path = tmp_path / "w.txt"
        write_edge_list(weighted_small, path)
        loaded = read_edge_list(path)
        assert loaded == weighted_small

    def test_directed(self, tmp_path, directed_line):
        path = tmp_path / "d.txt"
        write_edge_list(directed_line, path)
        loaded = read_edge_list(path, directed=True)
        assert loaded == directed_line

    def test_fractional_weights_survive(self, tmp_path):
        graph = from_edges([(0, 1)], weights=[0.123456789012345])
        path = tmp_path / "frac.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.degree(0) == pytest.approx(0.123456789012345, rel=1e-15)


class TestParsing:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n% another comment\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_weight_column_autodetected(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("0 1 2.5\n1 2 1.0\n")
        graph = read_edge_list(path)
        assert graph.is_weighted
        assert graph.degree(1) == pytest.approx(3.5)

    def test_force_unweighted(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("0 1 2.5\n")
        graph = read_edge_list(path, weighted=False)
        assert not graph.is_weighted

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("zero one\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_isolated_nodes_survive_round_trip(self, tmp_path):
        graph = from_edges([(0, 1)], num_nodes=5)
        path = tmp_path / "iso.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 5
        assert loaded == graph

    def test_header_parsing_tolerates_foreign_comments(self, tmp_path):
        path = tmp_path / "foreign.txt"
        path.write_text("# SNAP dataset something\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 2
