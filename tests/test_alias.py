"""Alias-table correctness: exact encoded distribution + sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import AliasTable, from_edges
from repro.graph.generators import erdos_renyi, with_random_weights


class TestEncodedDistribution:
    def test_unweighted_is_uniform(self, k5):
        table = AliasTable(k5)
        for node in range(5):
            assert np.allclose(table.expected_distribution(node), 0.25)

    def test_weighted_matches_edge_weights(self, weighted_small):
        table = AliasTable(weighted_small)
        for node in range(weighted_small.num_nodes):
            want = (weighted_small.edge_weights_of(node)
                    / weighted_small.degree(node))
            assert np.allclose(table.expected_distribution(node), want,
                               atol=1e-12)

    @given(weights=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_any_weight_vector_encoded_exactly(self, weights):
        # star graph: hub 0 with one weighted edge per leaf
        edges = [(0, i + 1) for i in range(len(weights))]
        graph = from_edges(edges, weights=weights)
        table = AliasTable(graph)
        want = np.asarray(weights) / np.sum(weights)
        assert np.allclose(table.expected_distribution(0), want, atol=1e-9)


class TestSampling:
    def test_empirical_frequencies(self, weighted_small, rng):
        table = AliasTable(weighted_small)
        node = 2
        draws = table.sample_neighbors(np.full(20000, node), rng=rng)
        want = dict(zip(weighted_small.neighbors(node).tolist(),
                        (weighted_small.edge_weights_of(node)
                         / weighted_small.degree(node)).tolist()))
        for neighbor, probability in want.items():
            frequency = np.mean(draws == neighbor)
            assert frequency == pytest.approx(probability, abs=0.02)

    def test_mixed_frontier(self, weighted_small, rng):
        table = AliasTable(weighted_small)
        nodes = np.array([0, 1, 2, 3, 4] * 100)
        neighbors = table.sample_neighbors(nodes, rng=rng)
        # every sample must be an actual neighbour of its start node
        for start, neighbor in zip(nodes, neighbors):
            assert neighbor in weighted_small.neighbors(start)

    def test_isolated_node_rejected(self, disconnected):
        table = AliasTable(disconnected)
        with pytest.raises(GraphError):
            table.sample_neighbors(np.array([5]), rng=0)

    def test_precomputed_uniforms_path(self, k5, rng):
        table = AliasTable(k5)
        nodes = np.zeros(100, dtype=np.int64)
        uniforms = (rng.random(100), rng.random(100))
        neighbors = table.sample_neighbors(nodes, uniforms=uniforms)
        assert np.all(np.isin(neighbors, k5.neighbors(0)))

    def test_cached_on_graph(self, k5):
        assert k5.alias_table is k5.alias_table


class TestRandomWeightedGraphs:
    def test_distribution_on_random_graph(self):
        graph = with_random_weights(erdos_renyi(15, 0.4, rng=1), rng=2)
        table = AliasTable(graph)
        for node in range(graph.num_nodes):
            if graph.out_degrees[node] == 0:
                continue
            want = graph.edge_weights_of(node) / graph.degree(node)
            assert np.allclose(table.expected_distribution(node), want,
                               atol=1e-9)
