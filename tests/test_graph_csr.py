"""Unit tests for the CSR Graph class."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, from_edges
from repro.graph.validation import check_graph_invariants


class TestConstruction:
    def test_basic_sizes(self, k5):
        assert k5.num_nodes == 5
        assert k5.num_edges == 10
        assert k5.num_arcs == 20
        assert len(k5) == 5

    def test_single_node_graph(self):
        graph = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            Graph(np.array([1, 2]), np.array([0], dtype=np.int64))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 2, 1]), np.array([1, 0], dtype=np.int64))

    def test_indptr_tail_must_match_indices(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 3]), np.array([0], dtype=np.int64))

    def test_empty_vertex_set_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([0]), np.array([], dtype=np.int64))

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1]), np.array([5], dtype=np.int64))

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([1, 0], dtype=np.int64),
                  np.array([1.0, -1.0]))

    def test_zero_weights_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([1, 0], dtype=np.int64),
                  np.array([1.0, 0.0]))

    def test_weight_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([1, 0], dtype=np.int64),
                  np.array([1.0]))


class TestDegrees:
    def test_unweighted_degrees(self, star4):
        assert star4.degree(0) == 4.0
        assert star4.degree(1) == 1.0
        assert star4.total_weight == 8.0

    def test_weighted_degrees(self, weighted_triangle):
        # node 0: edges (0,1)=1 and (0,2)=3
        assert weighted_triangle.degree(0) == pytest.approx(4.0)
        assert weighted_triangle.degree(1) == pytest.approx(3.0)
        assert weighted_triangle.degree(2) == pytest.approx(5.0)

    def test_out_degrees_vs_degrees_unweighted(self, k5):
        assert np.array_equal(k5.out_degrees.astype(float), k5.degrees)

    def test_average_degree(self, k5):
        assert k5.average_degree == pytest.approx(4.0)

    def test_degree_out_of_range(self, k5):
        with pytest.raises(GraphError):
            k5.degree(5)

    def test_weighted_trailing_isolated_node(self):
        """Regression: weighted degrees with an isolated last node
        (reduceat used to index past the weights array)."""
        graph = from_edges([(0, 1)], num_nodes=3, weights=[2.5])
        assert graph.degrees.tolist() == [2.5, 2.5, 0.0]


class TestNeighbors:
    def test_neighbors_of_hub(self, star4):
        assert sorted(star4.neighbors(0).tolist()) == [1, 2, 3, 4]

    def test_neighbors_of_leaf(self, star4):
        assert star4.neighbors(1).tolist() == [0]

    def test_edge_weights_of_unweighted(self, k5):
        assert np.all(k5.edge_weights_of(0) == 1.0)

    def test_edge_weights_of_weighted(self, weighted_triangle):
        weights = dict(zip(weighted_triangle.neighbors(0).tolist(),
                           weighted_triangle.edge_weights_of(0).tolist()))
        assert weights == {1: 1.0, 2: 3.0}

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 3)

    def test_edges_shape(self, k5):
        arcs = k5.edges()
        assert arcs.shape == (20, 2)


class TestDerivedStructures:
    def test_transition_matrix_rows_sum_to_one(self, weighted_small):
        sums = np.asarray(weighted_small.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_transition_matrix_isolated_row_zero(self, disconnected):
        sums = np.asarray(disconnected.transition_matrix.sum(axis=1)).ravel()
        assert sums[5] == 0.0

    def test_transition_transpose(self, weighted_small):
        direct = weighted_small.transition_matrix.toarray()
        transposed = weighted_small.transition_matrix_transpose.toarray()
        assert np.allclose(direct.T, transposed)

    def test_cumulative_weights_last_is_degree(self, weighted_small):
        cum = weighted_small.cumulative_weights
        for node in range(weighted_small.num_nodes):
            hi = weighted_small.indptr[node + 1]
            lo = weighted_small.indptr[node]
            if hi > lo:
                assert cum[hi - 1] == pytest.approx(
                    weighted_small.degree(node))

    def test_cumulative_weights_requires_weighted(self, k5):
        with pytest.raises(GraphError):
            _ = k5.cumulative_weights

    def test_adjacency_round_trip(self, weighted_triangle):
        dense = weighted_triangle.to_scipy_adjacency().toarray()
        assert dense[0, 1] == 1.0
        assert dense[1, 2] == 2.0
        assert dense[0, 2] == 3.0
        assert np.allclose(dense, dense.T)


class TestStructure:
    def test_connected_components(self, disconnected):
        labels = disconnected.connected_components
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert len({labels[0], labels[3], labels[5]}) == 3

    def test_is_connected(self, k5, disconnected):
        assert k5.is_connected
        assert not disconnected.is_connected

    def test_subgraph_relabels(self, k5):
        sub = k5.subgraph(np.array([1, 3, 4]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 3  # triangle within K5

    def test_subgraph_empty_rejected(self, k5):
        with pytest.raises(GraphError):
            k5.subgraph(np.array([], dtype=np.int64))

    def test_subgraph_out_of_range(self, k5):
        with pytest.raises(GraphError):
            k5.subgraph(np.array([7]))

    def test_reverse_undirected_is_self(self, k5):
        assert k5.reverse() is k5

    def test_reverse_directed(self, directed_line):
        reverse = directed_line.reverse()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert not reverse.has_edge(0, 1)

    def test_double_reverse_restores(self, directed_line):
        twice = directed_line.reverse().reverse()
        assert twice == directed_line


class TestDunder:
    def test_equality(self, k5):
        from repro.graph import complete_graph
        assert k5 == complete_graph(5)
        assert k5 != complete_graph(4)

    def test_equality_weight_sensitivity(self, weighted_triangle):
        other = from_edges([(0, 1), (1, 2), (0, 2)],
                           weights=[1.0, 2.0, 4.0])
        assert weighted_triangle != other

    def test_repr_mentions_sizes(self, weighted_triangle):
        text = repr(weighted_triangle)
        assert "n=3" in text and "weighted" in text

    def test_invariants_hold_for_fixtures(self, k5, weighted_small,
                                          disconnected, grid3x3):
        for graph in (k5, weighted_small, disconnected, grid3x3):
            check_graph_invariants(graph)


class TestPersistence:
    def test_round_trip_unweighted(self, k5, tmp_path):
        path = tmp_path / "k5.npz"
        k5.save(path)
        assert Graph.load(path) == k5

    def test_round_trip_weighted_directed(self, tmp_path):
        graph = from_edges([(0, 1), (2, 1)], weights=[0.5, 2.0],
                           directed=True)
        path = tmp_path / "wd.npz"
        graph.save(path)
        loaded = Graph.load(path)
        assert loaded == graph
        assert loaded.directed

    def test_dataset_disk_cache(self, tmp_path):
        from repro.graph.datasets import clear_dataset_cache, load_dataset
        clear_dataset_cache()
        first = load_dataset("youtube", scale=0.05,
                             cache_dir=str(tmp_path))
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        clear_dataset_cache()
        second = load_dataset("youtube", scale=0.05,
                              cache_dir=str(tmp_path))
        assert first == second
