"""RNG helper tests."""

import numpy as np
import pytest

from repro.rng import BlockUniforms, ensure_rng, spawn_children


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnChildren:
    def test_count_and_independence(self):
        children = spawn_children(0, 3)
        assert len(children) == 3
        draws = {child.random() for child in children}
        assert len(draws) == 3

    def test_reproducible(self):
        first = [c.random() for c in spawn_children(7, 2)]
        second = [c.random() for c in spawn_children(7, 2)]
        assert first == second

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)


class TestBlockUniforms:
    def test_values_in_unit_interval(self):
        block = BlockUniforms(3, block_size=16)
        values = [block.next() for _ in range(100)]  # crosses block edges
        assert all(0.0 <= v < 1.0 for v in values)

    def test_matches_generator_stream(self):
        block = BlockUniforms(9, block_size=8)
        reference = np.random.default_rng(9)
        want = list(reference.random(8)) + list(reference.random(8))
        got = [block.next() for _ in range(16)]
        assert np.allclose(got, want)

    def test_next_int_in_bounds(self):
        block = BlockUniforms(1)
        values = [block.next_int(7) for _ in range(200)]
        assert min(values) >= 0 and max(values) < 7

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockUniforms(0, block_size=0)
