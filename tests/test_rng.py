"""RNG helper tests."""

import numpy as np
import pytest

from repro.rng import BlockUniforms, ensure_rng, spawn_children


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_seed_forms_normalise_to_same_stream(self):
        # every accepted seed form of the same value drives an
        # identical stream — the parallel engine relies on this when a
        # chunk seed round-trips through a worker process
        from_int = ensure_rng(11).random(4)
        from_np = ensure_rng(np.int64(11)).random(4)
        from_generator = ensure_rng(np.random.default_rng(11)).random(4)
        assert np.array_equal(from_int, from_np)
        assert np.array_equal(from_int, from_generator)

    def test_none_streams_are_fresh(self):
        assert ensure_rng(None).random() != ensure_rng(None).random()


class TestSpawnChildren:
    def test_count_and_independence(self):
        children = spawn_children(0, 3)
        assert len(children) == 3
        draws = {child.random() for child in children}
        assert len(draws) == 3

    def test_reproducible(self):
        first = [c.random() for c in spawn_children(7, 2)]
        second = [c.random() for c in spawn_children(7, 2)]
        assert first == second

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_zero_count(self):
        assert spawn_children(0, 0) == []

    def test_streams_statistically_independent(self):
        # chunk streams feed independent Monte-Carlo chunks; any pair
        # correlation would bias the merged estimator
        draws = np.array([child.random(2000)
                          for child in spawn_children(2022, 8)])
        correlations = np.corrcoef(draws)
        off_diagonal = correlations[~np.eye(8, dtype=bool)]
        assert np.abs(off_diagonal).max() < 0.08

    def test_prefix_stability(self):
        # the first k children are the same regardless of how many are
        # spawned — this is what lets the engine's chunk plan grow
        # without perturbing earlier chunks
        few = [c.random() for c in spawn_children(3, 2)]
        many = [c.random() for c in spawn_children(3, 5)]
        assert few == many[:2]


class TestBlockUniforms:
    def test_values_in_unit_interval(self):
        block = BlockUniforms(3, block_size=16)
        values = [block.next() for _ in range(100)]  # crosses block edges
        assert all(0.0 <= v < 1.0 for v in values)

    def test_matches_generator_stream(self):
        block = BlockUniforms(9, block_size=8)
        reference = np.random.default_rng(9)
        want = list(reference.random(8)) + list(reference.random(8))
        got = [block.next() for _ in range(16)]
        assert np.allclose(got, want)

    def test_next_int_in_bounds(self):
        block = BlockUniforms(1)
        values = [block.next_int(7) for _ in range(200)]
        assert min(values) >= 0 and max(values) < 7

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockUniforms(0, block_size=0)

    def test_block_boundary_refill(self):
        # the refill at an exhausted block must continue the underlying
        # stream with no skipped or repeated variates
        block = BlockUniforms(4, block_size=4)
        spanning = [block.next() for _ in range(10)]
        want = np.random.default_rng(4).random(12)[:10]
        assert np.allclose(spanning, want)
        assert len(set(spanning)) == len(spanning)

    def test_refill_exactly_at_boundary(self):
        block = BlockUniforms(4, block_size=4)
        for _ in range(4):
            block.next()
        # next call crosses into the second block
        second_block_first = block.next()
        reference = np.random.default_rng(4)
        reference.random(4)
        assert second_block_first == reference.random(4)[0]
