"""GraphDelta tests: op validation, CLI spec parsing, wire forms, and
CSR splicing — :meth:`GraphDelta.apply` must agree exactly with
rebuilding the mutated edge list from scratch."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import EdgeOp, GraphDelta, from_edges, parse_edge_spec
from repro.graph.generators import erdos_renyi, with_random_weights


def _rows(graph):
    """``{node: sorted [(neighbor, weight), ...]}`` — order-insensitive
    adjacency view for comparing two CSR graphs."""
    out = {}
    for node in range(graph.num_nodes):
        lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
        weights = ([1.0] * (hi - lo) if graph.weights is None
                   else graph.weights[lo:hi].tolist())
        out[node] = sorted(zip(graph.indices[lo:hi].tolist(), weights))
    return out


class TestEdgeOp:
    def test_unknown_op(self):
        with pytest.raises(GraphError, match="unknown edge op"):
            EdgeOp("toggle", 0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            EdgeOp("add", 3, 3)

    def test_negative_node(self):
        with pytest.raises(GraphError, match="negative"):
            EdgeOp("add", -1, 2)

    def test_remove_takes_no_weight(self):
        with pytest.raises(GraphError, match="no weight"):
            EdgeOp("remove", 0, 1, 2.0)

    def test_set_weight_requires_weight(self):
        with pytest.raises(GraphError, match="requires a weight"):
            EdgeOp("set_weight", 0, 1)

    def test_upsert_requires_weight(self):
        with pytest.raises(GraphError, match="requires a weight"):
            EdgeOp("upsert", 0, 1)

    @pytest.mark.parametrize("weight", [0.0, -1.5, float("nan"),
                                        float("inf")])
    def test_bad_weight(self, weight):
        with pytest.raises(GraphError, match="finite and positive"):
            EdgeOp("add", 0, 1, weight)

    def test_to_dict_round_trip(self):
        op = EdgeOp("set_weight", 2, 5, 1.5)
        assert op.to_dict() == {"op": "set_weight", "u": 2, "v": 5,
                                "weight": 1.5}
        assert EdgeOp(**op.to_dict()) == op

    def test_remove_to_dict_omits_weight(self):
        assert EdgeOp("remove", 1, 0).to_dict() == {"op": "remove",
                                                    "u": 1, "v": 0}


class TestParseEdgeSpec:
    def test_add_without_weight(self):
        op = parse_edge_spec("3:7", op="add")
        assert (op.op, op.u, op.v, op.weight) == ("add", 3, 7, None)

    def test_add_with_weight(self):
        op = parse_edge_spec("3:7:2.5", op="add")
        assert op.weight == 2.5

    def test_remove(self):
        op = parse_edge_spec("0:1", op="remove")
        assert (op.op, op.weight) == ("remove", None)

    def test_remove_rejects_weight(self):
        with pytest.raises(GraphError, match="expected U:V"):
            parse_edge_spec("0:1:2.0", op="remove")

    def test_set_weight_needs_weight(self):
        with pytest.raises(GraphError, match="expected U:V:W"):
            parse_edge_spec("0:1", op="set_weight")

    def test_garbage_spec(self):
        with pytest.raises(GraphError, match="bad edge spec"):
            parse_edge_spec("a:b", op="add")

    def test_too_many_fields(self):
        with pytest.raises(GraphError, match="bad edge spec"):
            parse_edge_spec("1:2:3:4", op="add")


class TestWireForms:
    def test_from_dicts_rejects_non_list(self):
        with pytest.raises(GraphError, match="must be a list"):
            GraphDelta.from_dicts({"op": "add", "u": 0, "v": 1})

    def test_from_dicts_rejects_empty(self):
        with pytest.raises(GraphError, match="no operations"):
            GraphDelta.from_dicts([])

    def test_from_dicts_rejects_non_dict_item(self):
        with pytest.raises(GraphError, match="expected an object"):
            GraphDelta.from_dicts(["add"])

    def test_from_dicts_rejects_unknown_field(self):
        with pytest.raises(GraphError, match="unknown edge-op field"):
            GraphDelta.from_dicts([{"op": "add", "u": 0, "v": 1,
                                    "cost": 2}])

    def test_round_trip(self):
        delta = (GraphDelta().add_edge(0, 1, 2.0).remove_edge(2, 3)
                 .upsert_edge(4, 5, 0.5))
        again = GraphDelta.from_dicts(delta.to_dicts())
        assert again.to_dicts() == delta.to_dicts()
        assert len(again) == 3

    def test_touched_nodes_sorted_unique(self):
        delta = GraphDelta().add_edge(5, 1).remove_edge(1, 3)
        assert delta.touched_nodes().tolist() == [1, 3, 5]

    def test_touched_nodes_empty(self):
        assert GraphDelta().touched_nodes().size == 0


class TestApply:
    def test_empty_delta_is_identity(self, path4):
        assert GraphDelta().apply(path4) is path4

    def test_add_edge_undirected(self, path4):
        new = GraphDelta().add_edge(0, 3).apply(path4)
        assert new.num_edges == path4.num_edges + 1
        assert _rows(new)[0] == [(1, 1.0), (3, 1.0)]
        assert _rows(new)[3] == [(0, 1.0), (2, 1.0)]
        # the source graph is untouched
        assert path4.num_edges == 3

    def test_add_existing_edge_fails(self, path4):
        with pytest.raises(GraphError, match="already exists"):
            GraphDelta().add_edge(0, 1).apply(path4)

    def test_remove_edge(self, path4):
        new = GraphDelta().remove_edge(1, 2).apply(path4)
        assert new.num_edges == 2
        assert _rows(new)[1] == [(0, 1.0)]
        assert _rows(new)[2] == [(3, 1.0)]

    def test_remove_missing_edge_fails(self, path4):
        with pytest.raises(GraphError, match="does not exist"):
            GraphDelta().remove_edge(0, 2).apply(path4)

    def test_set_weight(self, weighted_triangle):
        new = GraphDelta().set_weight(1, 2, 9.0).apply(weighted_triangle)
        assert _rows(new)[1] == [(0, 1.0), (2, 9.0)]
        assert _rows(new)[2] == [(0, 3.0), (1, 9.0)]

    def test_set_weight_missing_edge_fails(self, path4):
        with pytest.raises(GraphError, match="does not exist"):
            GraphDelta().set_weight(0, 2, 2.0).apply(path4)

    def test_upsert_inserts_then_overwrites(self, path4):
        new = (GraphDelta().upsert_edge(0, 2, 2.0)
               .upsert_edge(0, 2, 5.0).apply(path4))
        assert _rows(new)[0] == [(1, 1.0), (2, 5.0)]

    def test_weighted_op_promotes_unweighted_graph(self, path4):
        assert path4.weights is None
        new = GraphDelta().add_edge(0, 3, 2.0).apply(path4)
        assert new.weights is not None
        # untouched edges get the implicit weight 1.0
        assert _rows(new)[1] == [(0, 1.0), (2, 1.0)]

    def test_unit_weight_ops_stay_unweighted(self, path4):
        new = GraphDelta().add_edge(0, 3).apply(path4)
        assert new.weights is None

    def test_remove_then_readd_in_one_delta(self, path4):
        new = (GraphDelta().remove_edge(0, 1)
               .add_edge(0, 1, 4.0).apply(path4))
        assert _rows(new)[0] == [(1, 4.0)]

    def test_out_of_range_edge_fails(self, path4):
        with pytest.raises(GraphError, match="out of range"):
            GraphDelta().add_edge(0, 99).apply(path4)

    def test_directed_touches_one_row(self, directed_line):
        new = GraphDelta().add_edge(2, 0).apply(directed_line)
        assert new.directed
        assert _rows(new)[2] == [(0, 1.0)]
        assert _rows(new)[0] == [(1, 1.0)]  # 0's row unchanged

    def test_untouched_rows_bit_identical(self, random_graph):
        new = GraphDelta().upsert_edge(0, 1, 2.0).apply(random_graph)
        for node in range(2, random_graph.num_nodes):
            lo, hi = (int(random_graph.indptr[node]),
                      int(random_graph.indptr[node + 1]))
            nlo, nhi = int(new.indptr[node]), int(new.indptr[node + 1])
            assert np.array_equal(new.indices[nlo:nhi],
                                  random_graph.indices[lo:hi])

    def test_matches_from_edges_reference(self):
        """A mixed op sequence must agree with a from-scratch rebuild."""
        graph = with_random_weights(erdos_renyi(25, 0.2, rng=11),
                                    low=1.0, high=3.0, rng=4)
        delta = (GraphDelta().remove_edge(*_first_edge(graph))
                 .upsert_edge(0, 24, 2.5)
                 .set_weight(*_first_edge(graph, skip=1), 7.0))
        new = delta.apply(graph)

        edges = {}
        for node, neighbors in _rows(graph).items():
            for neighbor, weight in neighbors:
                edges[tuple(sorted((node, neighbor)))] = weight
        del edges[tuple(sorted(_first_edge(graph)))]
        edges[(0, 24)] = 2.5
        edges[tuple(sorted(_first_edge(graph, skip=1)))] = 7.0
        reference = from_edges(sorted(edges),
                               weights=[edges[e] for e in sorted(edges)],
                               num_nodes=graph.num_nodes)
        assert _rows(new) == _rows(reference)
        assert new.num_edges == reference.num_edges


def _first_edge(graph, skip: int = 0):
    """The ``skip``-th undirected edge of ``graph`` in CSR order."""
    seen = 0
    for node in range(graph.num_nodes):
        lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
        for neighbor in graph.indices[lo:hi].tolist():
            if node < neighbor:
                if seen == skip:
                    return node, neighbor
                seen += 1
    raise AssertionError("graph has too few edges")
