r"""Verification of the trajectory laws of §4.1 (Theorems 4.1/4.2).

Theorem 4.2: the loop-erased α-walk from a fixed start produces the
trajectory ``γ = (v_1, …, v_j)`` *ending with an α-stop* with
probability

    Pr(Γ = γ) = β d_{v_j} · det((L+βD)^{Δ_k}) / det((L+βD)^{Δ_0}) · w(γ),

where ``Δ_0`` is the former-trajectory (blocked) set, ``Δ_k = Δ_0 ∪ γ``,
the minors delete those rows/columns, and ``w(γ)`` multiplies the
traversed edge weights.  We enumerate every observed trajectory on
tiny graphs and compare empirical frequencies against the formula —
with empty and non-empty ``Δ_0``, unweighted and weighted.
"""

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.forests.wilson import loop_erased_alpha_walk
from repro.graph import complete_graph, from_edges
from repro.linalg.beta_laplacian import beta_from_alpha


def _regularized_laplacian(graph, alpha):
    beta = beta_from_alpha(alpha)
    degrees = np.asarray(graph.degrees)
    return (np.diag(degrees) - graph.to_scipy_adjacency().toarray()
            + beta * np.diag(degrees)), beta


def _det_minor(matrix, delete):
    keep = [i for i in range(matrix.shape[0]) if i not in delete]
    if not keep:
        return 1.0
    return float(np.linalg.det(matrix[np.ix_(keep, keep)]))


def _trajectory_weight(graph, trajectory):
    weight = 1.0
    dense = graph.to_scipy_adjacency().toarray()
    for u, v in zip(trajectory[:-1], trajectory[1:]):
        weight *= dense[u, v]
    return weight


def _empirical_law(graph, start, alpha, blocked, trials, seed):
    rng = np.random.default_rng(seed)
    alpha_stopped = Counter()
    for _ in range(trials):
        trajectory, by_alpha = loop_erased_alpha_walk(
            graph, start, alpha, rng=rng, blocked=blocked)
        if by_alpha:
            alpha_stopped[tuple(trajectory)] += 1
    return alpha_stopped


class TestTheorem42:
    @pytest.mark.parametrize("alpha", [0.3, 0.6])
    def test_triangle_empty_delta0(self, alpha):
        graph = from_edges([(0, 1), (1, 2), (0, 2)])
        matrix, beta = _regularized_laplacian(graph, alpha)
        trials = 60_000
        observed = _empirical_law(graph, 0, alpha, None, trials, seed=1)
        denominator = _det_minor(matrix, set())
        for trajectory, count in observed.items():
            want = (beta * graph.degrees[trajectory[-1]]
                    * _det_minor(matrix, set(trajectory)) / denominator
                    * _trajectory_weight(graph, trajectory))
            assert count / trials == pytest.approx(want, abs=0.01)

    def test_k4_with_blocked_set(self):
        graph = complete_graph(4)
        alpha = 0.4
        matrix, beta = _regularized_laplacian(graph, alpha)
        blocked = {3}
        trials = 60_000
        observed = _empirical_law(graph, 0, alpha, blocked, trials, seed=2)
        denominator = _det_minor(matrix, blocked)
        for trajectory, count in observed.items():
            assert 3 not in trajectory  # alpha-stopped paths avoid Delta_0
            want = (beta * graph.degrees[trajectory[-1]]
                    * _det_minor(matrix, blocked | set(trajectory))
                    / denominator
                    * _trajectory_weight(graph, trajectory))
            assert count / trials == pytest.approx(want, abs=0.01)

    def test_weighted_triangle(self, weighted_triangle):
        alpha = 0.35
        matrix, beta = _regularized_laplacian(weighted_triangle, alpha)
        trials = 60_000
        observed = _empirical_law(weighted_triangle, 0, alpha, None,
                                  trials, seed=3)
        denominator = _det_minor(matrix, set())
        for trajectory, count in observed.items():
            want = (beta * weighted_triangle.degrees[trajectory[-1]]
                    * _det_minor(matrix, set(trajectory)) / denominator
                    * _trajectory_weight(weighted_triangle, trajectory))
            assert count / trials == pytest.approx(want, abs=0.012)

    def test_alpha_stop_probabilities_sum_with_hits(self):
        """α-stopped and blocked-hit trajectories partition the walks."""
        graph = complete_graph(4)
        rng = np.random.default_rng(4)
        hits = 0
        trials = 20_000
        for _ in range(trials):
            _, by_alpha = loop_erased_alpha_walk(graph, 0, 0.3, rng=rng,
                                                 blocked={2})
            hits += not by_alpha
        assert 0 < hits < trials


class TestWalkUtility:
    def test_trajectory_is_self_avoiding(self, random_graph):
        rng = np.random.default_rng(5)
        for _ in range(50):
            trajectory, _ = loop_erased_alpha_walk(random_graph, 0, 0.1,
                                                   rng=rng)
            assert len(set(trajectory)) == len(trajectory)

    def test_consecutive_nodes_adjacent(self, random_graph):
        trajectory, _ = loop_erased_alpha_walk(random_graph, 3, 0.1, rng=6)
        for u, v in zip(trajectory[:-1], trajectory[1:]):
            assert random_graph.has_edge(u, v)

    def test_blocked_start_returns_immediately(self, k5):
        trajectory, by_alpha = loop_erased_alpha_walk(k5, 0, 0.3,
                                                      blocked={0})
        assert trajectory == [0]
        assert not by_alpha

    def test_hit_ends_on_blocked_node(self, k5):
        rng = np.random.default_rng(7)
        for _ in range(30):
            trajectory, by_alpha = loop_erased_alpha_walk(
                k5, 0, 0.05, rng=rng, blocked={4})
            if not by_alpha:
                assert trajectory[-1] == 4

    def test_dangling_start_is_instant_root(self, disconnected):
        trajectory, by_alpha = loop_erased_alpha_walk(disconnected, 5, 0.2,
                                                      rng=8)
        assert trajectory == [5]
        assert by_alpha

    def test_validation(self, k5):
        with pytest.raises(ConfigError):
            loop_erased_alpha_walk(k5, 9, 0.2)
        with pytest.raises(ConfigError):
            loop_erased_alpha_walk(k5, 0, 0.0)
