"""Multiprocess query executor: shared views, worker pool, fallback.

The executor's contract is *byte identity* — a batch folded in a
forked worker over shared-memory banks must return exactly the bytes
the in-process solver returns — plus liveness: crashed workers
respawn, retired segments outlive in-flight borrowers, shutdown never
leaks ``/dev/shm`` segments.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.batch import BatchSourceSolver
from repro.core.config import PPRConfig
from repro.exceptions import ConfigError, ReproError
from repro.graph.generators import erdos_renyi
from repro.service import (
    ExecutorError,
    IndexManager,
    MicroBatchScheduler,
    PPRService,
    ProcessExecutor,
    QueryRequest,
    ServiceConfig,
)

SEED = 2022
ALPHA = 0.2
EPSILON = 0.5


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(200, 0.03, rng=SEED)


def _manager(graph, **overrides):
    config = PPRConfig(alpha=ALPHA, epsilon=EPSILON, seed=SEED,
                       budget_scale=0.05, **overrides)
    manager = IndexManager(config, num_forests=4)
    manager.register_graph("test", graph)
    return manager


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSharedIndexView:
    def test_view_pins_both_banks(self, graph):
        manager = _manager(graph)
        view = manager.shared_view("test")
        try:
            assert view.generation == 0
            assert view.graph_handle.nbytes > 0
            assert view.index_handle.nbytes > 0
            meta = view.index_handle.meta_dict
            assert meta["kind"] == "forest-index"
            assert meta["num_nodes"] == graph.num_nodes
        finally:
            view.release()
        manager.close_shared()

    def test_views_reuse_banks_within_a_generation(self, graph):
        manager = _manager(graph)
        first = manager.shared_view("test")
        second = manager.shared_view("test")
        assert first.index_handle == second.index_handle
        assert first.graph_handle == second.graph_handle
        first.release()
        second.release()
        manager.close_shared()

    def test_refresh_retires_only_after_last_borrower(self, graph):
        from repro.parallel.shared_bank import attach_bank

        manager = _manager(graph)
        view = manager.shared_view("test")
        old_handle = view.index_handle
        manager.refresh("test", block=True)
        fresh = manager.shared_view("test")
        assert fresh.generation == 1
        assert fresh.index_handle != old_handle
        # the old segments are retired but must stay attachable while
        # the in-flight borrower (our view) holds them
        attached = attach_bank(old_handle)
        attached.close()
        view.release()
        # last borrower dropped -> the old generation is unlinked
        with pytest.raises(FileNotFoundError):
            attach_bank(old_handle)
        fresh.release()
        manager.close_shared()

    def test_close_shared_unlinks_everything(self, graph):
        from repro.parallel.shared_bank import attach_bank

        manager = _manager(graph)
        view = manager.shared_view("test")
        handles = (view.graph_handle, view.index_handle)
        view.release()
        manager.close_shared()
        for handle in handles:
            with pytest.raises(FileNotFoundError):
                attach_bank(handle)


class TestProcessExecutor:
    @pytest.fixture()
    def executor(self, graph):
        manager = _manager(graph)
        executor = ProcessExecutor(manager, workers=2, task_timeout=60.0)
        with executor:
            yield executor
        manager.close_shared()

    def test_workers_must_be_positive(self, graph):
        with pytest.raises(ReproError):
            ProcessExecutor(_manager(graph), workers=0)

    def test_batch_is_byte_identical_to_inline(self, graph, executor):
        manager = executor.index_manager
        nodes = [0, 5, 17, 5]
        for kind in ("source", "target"):
            remote = executor.run_batch("test", kind, ALPHA, EPSILON,
                                        nodes)
            inline = manager.get_solver("test", kind).query_many(nodes)
            assert len(remote) == len(inline)
            for ours, theirs in zip(remote, inline):
                assert np.array_equal(ours.estimates, theirs.estimates)
                assert ours.work.as_dict() == theirs.work.as_dict()

    def test_warm_reaches_every_worker(self, executor):
        assert executor.warm("test", ALPHA) == 2
        stats = executor.stats()
        assert all(stats["alive"])
        assert all(done >= 1 for done in stats["tasks_done"])

    def test_stats_shape(self, executor):
        executor.run_batch("test", "source", ALPHA, EPSILON, [3])
        stats = executor.stats()
        assert stats["mode"] == "process"
        assert stats["workers"] == 2
        assert stats["in_flight"] == 0
        assert stats["respawns"] == 0
        assert len(stats["utilization"]) == 2
        assert sum(stats["tasks_done"]) >= 1

    def test_unknown_graph_propagates_config_error(self, executor):
        with pytest.raises(ConfigError, match="unknown graph"):
            executor.run_batch("nope", "source", ALPHA, EPSILON, [0])

    def test_worker_error_raises_executor_error(self, executor):
        # an out-of-range node fails inside the worker's solver
        with pytest.raises(ExecutorError, match="worker batch failed"):
            executor.run_batch("test", "source", ALPHA, EPSILON,
                               [10**9])

    def test_crashed_worker_respawns_and_pool_recovers(self, graph,
                                                       executor):
        before = executor.run_batch("test", "source", ALPHA, EPSILON,
                                    [1, 2])
        victim = executor._procs[0].pid
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(
            lambda: executor.stats()["respawns"] >= 1
            and all(executor.stats()["alive"]))
        after = executor.run_batch("test", "source", ALPHA, EPSILON,
                                   [1, 2])
        for ours, theirs in zip(before, after):
            assert np.array_equal(ours.estimates, theirs.estimates)

    def test_timed_out_reply_is_not_misattributed(self, graph,
                                                  monkeypatch):
        """A late reply for a timed-out task must never answer the next.

        After a timeout the parent marks the worker idle while the
        worker is still computing; the next batch queues on the same
        pipe behind it.  The worker's reply for the OLD task arrives
        first — without task-id matching it would be attributed to the
        NEW batch, silently serving one caller another's estimates.
        """
        slow_node = 13

        original = BatchSourceSolver.query_many

        def slow(self, nodes):
            if list(nodes) == [slow_node]:
                time.sleep(1.0)
            return original(self, nodes)

        # patched before start(): the forked worker inherits the patch
        monkeypatch.setattr(BatchSourceSolver, "query_many", slow)
        manager = _manager(graph)
        executor = ProcessExecutor(manager, workers=1).start()
        try:
            with pytest.raises(ExecutorError, match="timed out"):
                executor.run_batch("test", "source", ALPHA, EPSILON,
                                   [slow_node], timeout=0.2)
            fresh = executor.run_batch("test", "source", ALPHA, EPSILON,
                                       [7])
            solver = manager.get_solver("test", "source")
            assert len(fresh) == 1
            assert np.array_equal(fresh[0].estimates,
                                  solver.query_many([7])[0].estimates)
            assert not np.array_equal(
                fresh[0].estimates,
                solver.query_many([slow_node])[0].estimates)
        finally:
            executor.shutdown()
            manager.close_shared()

    def test_run_after_shutdown_raises(self, graph):
        manager = _manager(graph)
        executor = ProcessExecutor(manager, workers=1).start()
        executor.shutdown()
        with pytest.raises(ExecutorError, match="not running"):
            executor.run_batch("test", "source", ALPHA, EPSILON, [0])
        manager.close_shared()


class TestWorkerCacheEviction:
    def test_graph_eviction_drops_dependent_indexes_and_solvers(
            self, graph):
        """Evicting a graph must not strand index/solver views on it."""
        from repro.service.executor import _Task, _WorkerCache

        manager = _manager(graph)
        manager.register_graph("other", erdos_renyi(150, 0.03,
                                                    rng=SEED + 1))
        view_a = manager.shared_view("test")
        view_b = manager.shared_view("other")
        try:
            cache = _WorkerCache(capacity=1)
            task = _Task(0, view_a.graph_handle, view_a.index_handle,
                         manager.config, "source", (0,))
            cache.solver_for(task)
            assert set(cache.graphs) == {view_a.graph_handle}
            assert len(cache.indexes) == 1 and len(cache.solvers) == 1
            # a second graph evicts the first AND everything keyed on
            # it — otherwise those entries pin the evicted (possibly
            # unlinked) segments forever
            cache.graph_for(view_b.graph_handle)
            assert set(cache.graphs) == {view_b.graph_handle}
            assert not cache.indexes
            assert not cache.solvers
        finally:
            view_a.release()
            view_b.release()
            manager.close_shared()


class _FailingExecutor:
    """Stub that always refuses, to exercise the inline fallback."""

    def __init__(self):
        self.calls = 0

    def run_batch(self, *args, **kwargs):
        self.calls += 1
        raise ExecutorError("stub refuses")


class TestSchedulerFallback:
    def test_executor_failure_falls_back_inline(self, graph):
        manager = _manager(graph)
        failing = _FailingExecutor()
        scheduler = MicroBatchScheduler(manager, max_batch=4,
                                        max_wait_ms=2.0,
                                        executor=failing)
        scheduler.start()
        try:
            result = scheduler.submit(QueryRequest(
                graph="test", kind="source", node=7, alpha=ALPHA,
                epsilon=EPSILON))
        finally:
            scheduler.stop(drain=True)
        assert failing.calls == 1
        assert scheduler.fallback_batches == 1
        inline = manager.get_solver("test", "source").query(7)
        assert np.array_equal(result.estimates, inline.estimates)


class TestServiceByteIdentity:
    """Thread-mode and process-mode services answer identical bytes.

    Both configs use the parallel build path (``workers=0`` resolves
    to the engine, as does ``workers=2``), which is bit-identical for
    every worker count — the serial sampler (``workers=1``) draws a
    legitimately different bank.
    """

    NODES = (0, 3, 11, 42, 3)

    def _payloads(self, graph, **overrides):
        config = ServiceConfig(graph="test", alpha=ALPHA,
                               epsilon=EPSILON, budget_scale=0.05,
                               seed=SEED, max_batch=4, max_wait_ms=2.0,
                               cache_entries=0, port=0, **overrides)
        with PPRService(config, graph=graph) as svc:
            payloads = [svc.query(kind, node, top=5)
                        for kind in ("source", "target")
                        for node in self.NODES]
            payloads.append(svc.pair(1, 2))
            executor_stats = svc.healthz()["executor"]
        return payloads, executor_stats

    def test_process_executor_matches_thread_mode(self, graph):
        thread_payloads, thread_stats = self._payloads(
            graph, workers=0, executor="thread")
        process_payloads, process_stats = self._payloads(
            graph, workers=2, executor="process")
        assert thread_stats["mode"] == "thread"
        assert process_stats["mode"] == "process"
        assert sum(process_stats["tasks_done"]) >= 1
        assert thread_payloads == process_payloads

    def test_no_leaked_segments_after_stop(self, graph):
        def segments():
            try:
                return {name for name in os.listdir("/dev/shm")
                        if name.startswith("psm_")}
            except FileNotFoundError:
                return set()

        before = segments()
        self._payloads(graph, workers=2, executor="process")
        leaked = segments() - before
        assert not leaked
