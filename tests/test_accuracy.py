"""Accuracy-metric tests."""

import numpy as np
import pytest

from repro.core import (
    PPRResult,
    degree_normalized,
    l1_error,
    max_relative_error,
    precision_at_k,
)
from repro.exceptions import ConfigError


class TestL1:
    def test_zero_for_identical(self):
        vector = np.array([0.2, 0.8])
        assert l1_error(vector, vector) == 0.0

    def test_simple_value(self):
        assert l1_error(np.array([0.5, 0.5]),
                        np.array([0.4, 0.6])) == pytest.approx(0.2)

    def test_accepts_ppr_result(self):
        result = PPRResult(estimates=np.array([0.5, 0.5]), kind="source",
                           query_node=0, method="x", alpha=0.1, epsilon=0.5)
        assert l1_error(result, np.array([0.5, 0.5])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            l1_error(np.zeros(2), np.zeros(3))


class TestMaxRelativeError:
    def test_thresholding(self):
        estimate = np.array([0.0, 0.2])
        exact = np.array([0.001, 0.1])
        # only the second entry clears mu = 0.05
        assert max_relative_error(estimate, exact, 0.05) == pytest.approx(1.0)

    def test_empty_mask(self):
        assert max_relative_error(np.zeros(3), np.zeros(3), 0.5) == 0.0

    def test_mu_validation(self):
        with pytest.raises(ConfigError):
            max_relative_error(np.zeros(2), np.zeros(2), 0.0)


class TestPrecisionAtK:
    def test_perfect(self):
        vector = np.array([0.4, 0.3, 0.2, 0.1])
        assert precision_at_k(vector, vector, 2) == 1.0

    def test_half(self):
        estimate = np.array([0.4, 0.3, 0.2, 0.1])
        exact = np.array([0.4, 0.1, 0.2, 0.3])
        assert precision_at_k(estimate, exact, 2) == 0.5

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            precision_at_k(np.zeros(2), np.zeros(2), 0)


class TestDegreeNormalized:
    def test_division(self):
        vector = np.array([0.4, 0.6])
        degrees = np.array([2.0, 3.0])
        assert np.allclose(degree_normalized(vector, degrees), [0.2, 0.2])

    def test_zero_degree_maps_to_zero(self):
        assert degree_normalized(np.array([0.5]), np.array([0.0]))[0] == 0.0
