"""Benchmark-harness tests: workloads, timing helpers, reporting, and
quick sanity runs of the experiment drivers."""

import numpy as np
import pytest

from repro.bench import (
    QUERY_DISTRIBUTIONS,
    Timer,
    format_markdown_table,
    high_degree_nodes,
    low_degree_nodes,
    summarize,
    uniform_nodes,
)
from repro.bench import experiments
from repro.bench.harness import run_with_timing
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 0.08, rng=301)


class TestWorkloads:
    def test_uniform_distinct(self, graph):
        nodes = uniform_nodes(graph, 20, rng=1)
        assert len(set(nodes.tolist())) == 20

    def test_high_degree_pool(self, graph):
        nodes = high_degree_nodes(graph, 10, rng=2)
        threshold = np.percentile(graph.degrees, 85)
        assert np.all(graph.degrees[nodes] >= min(
            threshold, graph.degrees[nodes].max()))

    def test_low_degree_pool(self, graph):
        low = low_degree_nodes(graph, 10, rng=3)
        high = high_degree_nodes(graph, 10, rng=3)
        assert graph.degrees[low].mean() < graph.degrees[high].mean()

    def test_count_validation(self, graph):
        with pytest.raises(ConfigError):
            uniform_nodes(graph, 0)
        with pytest.raises(ConfigError):
            uniform_nodes(graph, 1000)

    def test_registry(self):
        assert set(QUERY_DISTRIBUTIONS) == {"uniform", "high_degree",
                                            "low_degree"}


class TestHarness:
    def test_timer(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.seconds >= 0.0

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["count"] == 3

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0

    def test_run_with_timing_collects_stats(self, graph):
        from repro.core import single_source
        timings = run_with_timing(
            lambda q: single_source(graph, q, method="speedlv", alpha=0.1,
                                    seed=1),
            [0, 1])
        assert len(timings.seconds) == 2
        assert "num_forests" in timings.counters


class TestReporting:
    def test_table_rendering(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 2, "b": 1e-9}]
        table = format_markdown_table(rows)
        assert table.splitlines()[0] == "| a | b |"
        assert "0.1235" in table
        assert "1e-09" in table

    def test_empty(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_explicit_columns(self):
        table = format_markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]


class TestExperimentDrivers:
    """Quick structural runs at tiny scale (shapes checked by the
    benchmarks themselves)."""

    def test_table1_rows(self):
        rows = experiments.table1(scale=0.05)
        assert len(rows) == 7

    def test_fig2_density(self):
        rows = experiments.fig2_eigenvalue_density(("youtube",), scale=0.05,
                                                   bins=10)
        assert len(rows) == 10
        assert abs(sum(r["pdf"] for r in rows) - 1.0) < 1e-6

    def test_fig2_tau(self):
        rows = experiments.fig2_tau_vs_alpha(("youtube",), scale=0.05,
                                             alphas=(0.1, 0.01))
        assert len(rows) == 2
        assert all(r["tau_lemma44"] < r["naive_walk_steps"] for r in rows)

    def test_fig3_rows(self):
        rows = experiments.fig3_single_source_time(
            ("youtube",), ("fora", "speedlv"), (0.5,), scale=0.05,
            num_queries=2, budget_scale=0.02)
        assert {r["method"] for r in rows} == {"fora", "speedlv"}

    def test_fig8_rows(self):
        rows = experiments.fig8_single_target_time(
            ("youtube",), ("back", "backlv"), (0.5,), scale=0.05,
            num_queries=2, budget_scale=0.02)
        assert len(rows) == 2

    def test_ablation_estimators(self):
        rows = experiments.ablation_estimator_variance(scale=0.05,
                                                       num_forests=10)
        assert rows[0]["improved_total_variance"] <= rows[0][
            "basic_total_variance"]

    def test_ablation_push(self):
        rows = experiments.ablation_push_variants(scale=0.05,
                                                  r_maxes=(0.01,))
        balanced = next(r for r in rows if r["variant"] == "balanced")
        assert balanced["residual_ceiling"] <= 0.01 + 1e-12

    def test_bench_defaults_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "9")
        assert experiments.bench_defaults()["num_queries"] == 9


class TestMoreExperimentDrivers:
    """Micro-scale structural runs of the remaining drivers."""

    def test_fig4_rows(self):
        rows = experiments.fig4_l1_error(
            ("youtube",), ("foralv",), (0.5,), scale=0.05,
            num_queries=2, budget_scale=0.05)
        assert len(rows) == 1
        assert rows[0]["mean_l1_error"] >= 0.0

    def test_fig5_and_fig6_rows(self):
        rows = experiments.fig5_index_build(("youtube",), (0.5,),
                                            alpha=0.1, scale=0.05)
        assert {r["method"] for r in rows} == {"fora+", "speedppr+",
                                               "foralv+", "speedlv+"}
        size_rows = experiments.fig6_index_size(("youtube",), alpha=0.1,
                                                scale=0.05)
        assert all(r["index_mb"] > 0 for r in size_rows)

    def test_fig7_rows(self):
        rows = experiments.fig7_index_query(("youtube",), (0.5,),
                                            alpha=0.1, scale=0.05,
                                            num_queries=2,
                                            budget_scale=0.05)
        labels = {r["method"] for r in rows}
        assert "speedlv+" in labels and "speedlv (online)" in labels

    def test_fig12_rows(self):
        rows = experiments.fig12_query_distributions(
            ("youtube",), alpha=0.1, scale=0.05, num_queries=2,
            budget_scale=0.05)
        assert {r["mode"] for r in rows} == {"SU", "SH", "SL",
                                             "TU", "TH", "TL"}

    def test_fig13_rows(self):
        rows = experiments.fig13_small_alpha(
            ("youtube",), alphas=(0.1,), scale=0.05, num_queries=1,
            budget_scale=0.05)
        assert rows[0]["speedlv_l1"] < rows[0]["uniform_l1"]
        assert rows[0]["ground_truth_work"] > 0

    def test_alpha_sweep_rows(self):
        rows = experiments.alpha_sweep_single_source(
            alphas=(0.2, 0.05), scale=0.05, num_queries=1,
            budget_scale=0.05)
        assert len(rows) == 4

    def test_batch_amortization_rows(self):
        rows = experiments.ablation_batch_amortization(
            scale=0.05, num_queries=2, budget_scale=0.05)
        assert rows[0]["bank_forests"] >= 1

    def test_sampler_throughput_rows(self):
        rows = experiments.ablation_sampler_throughput(
            alphas=(0.1,), repetitions=2, scale=0.05)
        assert {r["sampler"] for r in rows} == {"wilson", "cycle_popping",
                                                "batch"}
