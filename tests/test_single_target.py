"""Integration tests of the single-target algorithms (§6)."""

import numpy as np
import pytest

from repro.core import PPRConfig, l1_error
from repro.core.single_target import back, backl, backlv, backlv_plus, rback
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.linalg import exact_single_target
from repro.montecarlo import ForestIndex

ALL = [back, rback, backl, backlv]


@pytest.fixture(scope="module")
def medium_graph():
    return erdos_renyi(150, 0.06, rng=107)


def _config(**kwargs):
    defaults = dict(alpha=0.1, epsilon=0.5, seed=13)
    defaults.update(kwargs)
    return PPRConfig(**defaults)


class TestAccuracy:
    @pytest.mark.parametrize("algorithm", ALL)
    def test_close_to_exact(self, medium_graph, algorithm):
        target = int(np.argmax(medium_graph.degrees))
        exact = exact_single_target(medium_graph, target, 0.1)
        result = algorithm(medium_graph, target, _config())
        if algorithm in (back, rback):
            # push-only baselines carry the additive floor n*r_max = eps
            assert l1_error(result, exact) < 0.5
        else:
            # the two-stage methods estimate the leftover and land far
            # below the additive floor
            assert l1_error(result, exact) < 0.1 * max(exact.sum(), 1.0)

    def test_back_additive_guarantee(self, medium_graph):
        target = 3
        exact = exact_single_target(medium_graph, target, 0.1)
        result = back(medium_graph, target, _config())
        r_max = result.stats["r_max"]
        assert np.all(exact - result.estimates >= -1e-10)
        assert np.all(exact - result.estimates <= r_max + 1e-10)

    def test_backlv_beats_backl_on_average(self, medium_graph):
        target = int(np.argmax(medium_graph.degrees))
        exact = exact_single_target(medium_graph, target, 0.1)
        errors = {"backl": [], "backlv": []}
        for seed in range(6):
            for name, algorithm in (("backl", backl), ("backlv", backlv)):
                result = algorithm(medium_graph, target,
                                   _config(seed=seed, r_max=0.05))
                errors[name].append(l1_error(result, exact))
        assert np.mean(errors["backlv"]) < np.mean(errors["backl"])

    def test_small_alpha(self, medium_graph):
        target = int(np.argmax(medium_graph.degrees))
        exact = exact_single_target(medium_graph, target, 0.01)
        result = backlv(medium_graph, target, _config(alpha=0.01))
        assert l1_error(result, exact) < 0.1 * max(exact.sum(), 1.0)


class TestCostShape:
    def test_two_stage_pushes_less_than_back(self, medium_graph):
        """BACKL's r_max floor guarantees it never out-pushes BACK."""
        target = int(np.argmax(medium_graph.degrees))
        baseline = back(medium_graph, target, _config())
        two_stage = backlv(medium_graph, target, _config())
        assert two_stage.stats["num_pushes"] <= baseline.stats["num_pushes"]

    def test_low_degree_targets_cheap(self, medium_graph):
        """§7.6: low-degree targets finish almost immediately."""
        low = int(np.argmin(medium_graph.degrees))
        high = int(np.argmax(medium_graph.degrees))
        cheap = back(medium_graph, low, _config())
        costly = back(medium_graph, high, _config())
        assert cheap.stats["num_pushes"] <= costly.stats["num_pushes"]


class TestMetadata:
    @pytest.mark.parametrize("algorithm,name", [
        (back, "back"), (rback, "rback"), (backl, "backl"),
        (backlv, "backlv")])
    def test_method_and_kind(self, medium_graph, algorithm, name):
        result = algorithm(medium_graph, 1, _config())
        assert result.method == name
        assert result.kind == "target"

    def test_deterministic_under_seed(self, medium_graph):
        first = backlv(medium_graph, 2, _config(seed=3))
        second = backlv(medium_graph, 2, _config(seed=3))
        assert np.allclose(first.estimates, second.estimates)

    def test_target_out_of_range(self, medium_graph):
        with pytest.raises(ConfigError):
            backlv(medium_graph, -1, _config())


class TestIndexedVariant:
    def test_backlv_plus(self, medium_graph):
        index = ForestIndex.build(medium_graph, 0.1, 40, rng=8)
        target = int(np.argmax(medium_graph.degrees))
        exact = exact_single_target(medium_graph, target, 0.1)
        result = backlv_plus(medium_graph, target, index, _config())
        assert result.method == "backlv+"
        assert l1_error(result, exact) < 0.05 * max(exact.sum(), 1.0)

    def test_index_checks(self, medium_graph, k5):
        wrong_graph = ForestIndex.build(k5, 0.1, 5, rng=9)
        with pytest.raises(ConfigError):
            backlv_plus(medium_graph, 0, wrong_graph, _config())
        with pytest.raises(ConfigError):
            backlv_plus(medium_graph, 0, "not an index", _config())
