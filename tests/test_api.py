"""High-level dispatch API tests."""

import numpy as np
import pytest

import repro
from repro.core import (
    SINGLE_SOURCE_METHODS,
    SINGLE_TARGET_METHODS,
    PPRConfig,
    single_source,
    single_target,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.montecarlo import ForestIndex, WalkIndex


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(80, 0.1, rng=201)


class TestDispatch:
    def test_all_online_source_methods(self, graph):
        for name in SINGLE_SOURCE_METHODS:
            result = single_source(graph, 0, method=name, alpha=0.1, seed=1)
            assert result.method == name

    def test_all_target_methods(self, graph):
        for name in SINGLE_TARGET_METHODS:
            result = single_target(graph, 0, method=name, alpha=0.1, seed=1)
            assert result.method == name

    def test_case_insensitive(self, graph):
        assert single_source(graph, 0, method="SPEEDLV", alpha=0.1,
                             seed=1).method == "speedlv"

    def test_unknown_methods(self, graph):
        with pytest.raises(ConfigError):
            single_source(graph, 0, method="pagerank")
        with pytest.raises(ConfigError):
            single_target(graph, 0, method="push")

    def test_indexed_dispatch(self, graph):
        walk_index = WalkIndex.build_speedppr_plus(graph, 0.1, rng=1)
        forest_index = ForestIndex.build(graph, 0.1, 10, rng=2)
        assert single_source(graph, 0, method="speedppr+", index=walk_index,
                             alpha=0.1).method == "speedppr+"
        assert single_source(graph, 0, method="speedlv+",
                             index=forest_index, alpha=0.1).method == "speedlv+"
        assert single_target(graph, 0, method="backlv+",
                             index=forest_index, alpha=0.1).method == "backlv+"

    def test_index_required_for_plus_methods(self, graph):
        with pytest.raises(ConfigError):
            single_source(graph, 0, method="fora+")
        with pytest.raises(ConfigError):
            single_target(graph, 0, method="backlv+")

    def test_index_rejected_for_online(self, graph):
        forest_index = ForestIndex.build(graph, 0.1, 5, rng=3)
        with pytest.raises(ConfigError):
            single_source(graph, 0, method="speedlv", index=forest_index)
        with pytest.raises(ConfigError):
            single_target(graph, 0, method="backlv", index=forest_index)


class TestConfigPlumbing:
    def test_overrides_applied(self, graph):
        result = single_source(graph, 0, method="speedlv", alpha=0.2,
                               epsilon=0.3, seed=5)
        assert result.alpha == 0.2
        assert result.epsilon == 0.3

    def test_config_object_plus_overrides(self, graph):
        config = PPRConfig(alpha=0.2, seed=5)
        result = single_source(graph, 0, method="foralv", config=config,
                               epsilon=0.25)
        assert result.alpha == 0.2
        assert result.epsilon == 0.25

    def test_bad_override_rejected(self, graph):
        with pytest.raises(ConfigError):
            single_source(graph, 0, method="fora", alpha=2.0)


class TestPackageSurface:
    def test_top_level_exports(self):
        for name in ("Graph", "single_source", "single_target",
                     "load_dataset", "PPRConfig", "sample_forest",
                     "exact_single_source"):
            assert hasattr(repro, name)

    def test_quickstart_flow(self):
        graph = repro.load_dataset("youtube", scale=0.05)
        result = repro.single_source(graph, 0, method="speedlv", alpha=0.05,
                                     budget_scale=0.05, seed=3)
        top = result.top_k(5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]
        assert abs(result.total_mass - 1.0) < 0.3
