"""Unit tests for graph builders (edge lists and foreign formats)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    from_adjacency,
    from_edges,
    from_networkx,
    from_scipy_sparse,
)
from repro.graph.validation import check_graph_invariants

import scipy.sparse as sp


class TestFromEdges:
    def test_simple_undirected(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)

    def test_num_nodes_inferred(self):
        graph = from_edges([(0, 7)])
        assert graph.num_nodes == 8

    def test_num_nodes_explicit_allows_isolated(self):
        graph = from_edges([(0, 1)], num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.degree(4) == 0.0

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_nodes=3)

    def test_self_loops_dropped_by_default(self):
        graph = from_edges([(0, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loops_kept_when_allowed(self):
        graph = from_edges([(0, 0), (0, 1)], allow_self_loops=True,
                           directed=True)
        assert graph.has_edge(0, 0)

    def test_parallel_edges_merged_unweighted(self):
        graph = from_edges([(0, 1), (0, 1), (1, 0)])
        assert graph.num_edges == 1
        assert graph.degree(0) == 1.0

    def test_parallel_edges_sum_weights(self):
        graph = from_edges([(0, 1), (0, 1)], weights=[2.0, 3.0])
        assert graph.degree(0) == pytest.approx(5.0)

    def test_directed(self):
        graph = from_edges([(0, 1)], directed=True)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_empty_edge_list(self):
        graph = from_edges([], num_nodes=3)
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 0)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            from_edges(np.array([[0, 1, 2]]))

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(0, 1)], weights=[1.0, 2.0])

    def test_non_positive_weights_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(0, 1)], weights=[0.0])

    def test_symmetric_weighted_storage(self):
        graph = from_edges([(0, 1)], weights=[2.5])
        dense = graph.to_scipy_adjacency().toarray()
        assert dense[0, 1] == dense[1, 0] == 2.5

    def test_invariants(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)],
                           weights=[1, 2, 3, 4])
        check_graph_invariants(graph)


class TestFromAdjacency:
    def test_round_trip(self):
        dense = np.array([[0, 2.0, 0], [2.0, 0, 1.0], [0, 1.0, 0]])
        graph = from_adjacency(dense)
        assert graph.is_weighted
        assert graph.degree(1) == pytest.approx(3.0)

    def test_unweighted_detection(self):
        dense = np.array([[0, 1], [1, 0]], dtype=float)
        graph = from_adjacency(dense)
        assert not graph.is_weighted

    def test_diagonal_cleared(self):
        dense = np.array([[5.0, 1], [1, 5.0]])
        graph = from_adjacency(dense)
        assert not graph.has_edge(0, 0)

    def test_asymmetric_undirected_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency(np.array([[0, 1.0], [0, 0]]))

    def test_asymmetric_directed_ok(self):
        graph = from_adjacency(np.array([[0, 1.0], [0, 0]]), directed=True)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency(np.zeros((2, 3)))

    def test_negative_entries_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency(np.array([[0, -1.0], [-1.0, 0]]))


class TestFromScipySparse:
    def test_csr_input(self):
        matrix = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 1

    def test_explicit_zero_removed(self):
        matrix = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        matrix[0, 1] = 0.0
        matrix[1, 0] = 0.0
        graph = from_scipy_sparse(matrix.tocsr(), directed=True)
        assert graph.num_edges == 0

    def test_force_weighted_flag(self):
        matrix = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        graph = from_scipy_sparse(matrix, weighted=True)
        assert graph.is_weighted


class TestFromNetworkx:
    nx = pytest.importorskip("networkx")

    def test_simple(self):
        nx = self.nx
        graph = from_networkx(nx.karate_club_graph())
        assert graph.num_nodes == 34
        assert graph.num_edges == 78

    def test_weights_respected(self):
        nx = self.nx
        g = nx.Graph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c", weight=3.0)
        graph = from_networkx(g)
        assert graph.is_weighted
        # sorted labels: a=0, b=1, c=2
        assert graph.degree(1) == pytest.approx(5.0)

    def test_directed(self):
        nx = self.nx
        g = nx.DiGraph()
        g.add_edge(0, 1)
        graph = from_networkx(g)
        assert graph.directed
        assert not graph.has_edge(1, 0)
