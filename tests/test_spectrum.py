"""Spectrum / τ tests — Lemma 4.4 and the KPM estimator."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.linalg import (
    estimate_spectral_density,
    exact_ppr_matrix,
    tau_exact,
    tau_from_density,
    tau_from_eigenvalues,
    transition_eigenvalues,
)


class TestEigenvalues:
    def test_range_and_top(self, random_graph):
        eigenvalues = transition_eigenvalues(random_graph)
        assert eigenvalues.min() >= -1.0 - 1e-9
        assert eigenvalues.max() == pytest.approx(1.0, abs=1e-9)

    def test_count(self, k5):
        assert transition_eigenvalues(k5).size == 5

    def test_complete_graph_spectrum(self, k5):
        # P of K_n has eigenvalues 1 and -1/(n-1) (multiplicity n-1)
        eigenvalues = np.sort(transition_eigenvalues(k5))
        assert np.allclose(eigenvalues[:4], -0.25, atol=1e-9)
        assert eigenvalues[-1] == pytest.approx(1.0)

    def test_bipartite_has_minus_one(self, path4):
        eigenvalues = transition_eigenvalues(path4)
        assert eigenvalues.min() == pytest.approx(-1.0, abs=1e-9)

    def test_directed_rejected(self, directed_line):
        with pytest.raises(ConfigError):
            transition_eigenvalues(directed_line)


class TestTauExact:
    def test_lemma44_equals_diagonal_sum(self, random_graph):
        """tau = sum_i 1/(1-(1-a)l_i) must equal sum_u pi(u,u)/alpha."""
        alpha = 0.2
        via_spectrum = tau_exact(random_graph, alpha)
        diagonal = np.trace(exact_ppr_matrix(random_graph, alpha))
        assert via_spectrum == pytest.approx(diagonal / alpha, rel=1e-9)

    def test_weighted_graph(self, random_weighted_graph):
        alpha = 0.1
        via_spectrum = tau_exact(random_weighted_graph, alpha)
        diagonal = np.trace(exact_ppr_matrix(random_weighted_graph, alpha))
        assert via_spectrum == pytest.approx(diagonal / alpha, rel=1e-9)

    def test_bounds(self, random_graph):
        # each term lies in (1/(2-a), 1/a] so n/(2-a) < tau <= n/a
        alpha = 0.05
        n = random_graph.num_nodes
        tau = tau_exact(random_graph, alpha)
        assert n / (2 - alpha) < tau <= n / alpha + 1e-9

    def test_monotone_in_alpha(self, random_graph):
        taus = [tau_exact(random_graph, a) for a in (0.5, 0.1, 0.02)]
        assert taus[0] < taus[1] < taus[2]

    def test_insensitivity_vs_naive(self, random_graph):
        """The headline claim: tau grows far slower than n/alpha.

        The trivial eigenvalue 1 (one per connected component)
        contributes exactly 1/alpha; on a 30-node test graph that term
        dominates, so compare the growth of the non-trivial remainder —
        the part that scales with n on real graphs.
        """
        def nontrivial_tau(alpha):
            return tau_exact(random_graph, alpha) - 1.0 / alpha

        growth_tau = nontrivial_tau(0.001) / nontrivial_tau(0.1)
        growth_naive = 0.1 / 0.001
        assert growth_tau < growth_naive / 5

    def test_bad_eigenvalues_rejected(self):
        with pytest.raises(ConfigError):
            tau_from_eigenvalues(np.array([1.5]), 0.1)


class TestKernelPolynomialMethod:
    def test_density_integrates_to_one(self):
        graph = erdos_renyi(300, 0.05, rng=5)
        density = estimate_spectral_density(graph, num_moments=60,
                                            num_probes=12, rng=1)
        _, mass = density.histogram(bins=40)
        assert mass.sum() == pytest.approx(1.0, abs=1e-6)

    def test_density_concentrates_near_zero_on_random_graph(self):
        graph = erdos_renyi(400, 0.04, rng=6)
        density = estimate_spectral_density(graph, num_moments=60,
                                            num_probes=12, rng=2)
        centres, mass = density.histogram(bins=20)
        central = mass[np.abs(centres) < 0.4].sum()
        assert central > 0.5

    def test_tau_from_density_close_to_exact(self):
        graph = erdos_renyi(250, 0.06, rng=7)
        density = estimate_spectral_density(graph, num_moments=120,
                                            num_probes=24, rng=3)
        for alpha in (0.3, 0.1):
            approx = tau_from_density(density, alpha)
            exact = tau_exact(graph, alpha)
            assert approx == pytest.approx(exact, rel=0.15)

    def test_parameter_validation(self, k5):
        with pytest.raises(ConfigError):
            estimate_spectral_density(k5, num_moments=1)
        with pytest.raises(ConfigError):
            estimate_spectral_density(k5, num_probes=0)

    def test_directed_rejected(self, directed_line):
        with pytest.raises(ConfigError):
            estimate_spectral_density(directed_line)


class TestTauHutchinson:
    def test_matches_exact(self, random_graph):
        from repro.linalg import tau_hutchinson
        alpha = 0.2
        exact = tau_exact(random_graph, alpha)
        estimate = tau_hutchinson(random_graph, alpha, num_probes=400,
                                  rng=5)
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_works_directed(self, directed_line):
        from repro.linalg import tau_hutchinson
        # tiny graph: tr[(I-(1-a)P)^-1] computable by hand via matrix
        from repro.linalg.transition import transition_matrix
        alpha = 0.5
        dense = transition_matrix(directed_line).toarray()
        want = np.trace(np.linalg.inv(np.eye(3) - (1 - alpha) * dense))
        estimate = tau_hutchinson(directed_line, alpha, num_probes=600,
                                  rng=6)
        assert estimate == pytest.approx(want, rel=0.1)

    def test_probe_validation(self, k5):
        from repro.linalg import tau_hutchinson
        with pytest.raises(ConfigError):
            tau_hutchinson(k5, 0.2, num_probes=0)
