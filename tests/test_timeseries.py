"""Tests for the fixed-interval rolling time-series store.

Everything injects explicit ``now`` values, so the windowing
arithmetic is tested deterministically — no sleeps, no wall clock.
"""

import threading

import pytest

from repro.obs.timeseries import (
    RollingCounter,
    RollingGauge,
    RollingHistogram,
    TimeSeriesStore,
)


class TestRollingCounter:
    def test_total_over_window(self):
        counter = RollingCounter(interval=1.0, capacity=10)
        for tick in range(5):
            counter.add(2.0, now=float(tick))
        assert counter.total(5.0, now=4.0) == pytest.approx(10.0)
        # a 2 s window sees only the last two ticks
        assert counter.total(2.0, now=4.0) == pytest.approx(4.0)

    def test_rate_is_total_over_window(self):
        counter = RollingCounter(interval=1.0, capacity=10)
        for tick in range(4):
            counter.add(3.0, now=float(tick))
        assert counter.rate(4.0, now=3.0) == pytest.approx(3.0)

    def test_stale_slots_expire(self):
        counter = RollingCounter(interval=1.0, capacity=4)
        counter.add(5.0, now=0.0)
        # 100 ticks later the ring has wrapped many times over
        assert counter.total(4.0, now=100.0) == 0.0

    def test_slot_reset_on_wrap(self):
        counter = RollingCounter(interval=1.0, capacity=3)
        counter.add(1.0, now=0.0)
        counter.add(1.0, now=3.0)  # same slot as tick 0, must reset
        assert counter.total(1.0, now=3.0) == pytest.approx(1.0)
        assert counter.total(3.0, now=3.0) == pytest.approx(1.0)

    def test_window_longer_than_capacity_is_clamped(self):
        counter = RollingCounter(interval=1.0, capacity=4)
        for tick in range(8):
            counter.add(1.0, now=float(tick))
        # only capacity ticks of history exist
        assert counter.total(100.0, now=7.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCounter(interval=0.0)
        with pytest.raises(ValueError):
            RollingCounter(capacity=1)

    def test_empty(self):
        counter = RollingCounter()
        assert counter.total(60.0, now=10.0) == 0.0
        assert counter.rate(60.0, now=10.0) == 0.0

    def test_thread_safety_totals(self):
        counter = RollingCounter(interval=1.0, capacity=8)

        def work():
            for _ in range(500):
                counter.add(1.0, now=1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total(1.0, now=1.0) == pytest.approx(2000.0)


class TestRollingGauge:
    def test_latest_and_mean(self):
        gauge = RollingGauge(interval=1.0, capacity=10)
        gauge.set(1.0, now=0.0)
        gauge.set(3.0, now=1.0)
        gauge.set(5.0, now=2.0)
        assert gauge.latest() == pytest.approx(5.0)
        assert gauge.mean(10.0, now=2.0) == pytest.approx(3.0)
        assert gauge.max(10.0, now=2.0) == pytest.approx(5.0)

    def test_latest_within_tick_overwrites(self):
        gauge = RollingGauge(interval=1.0, capacity=10)
        gauge.set(1.0, now=0.1)
        gauge.set(9.0, now=0.9)
        assert gauge.latest() == pytest.approx(9.0)

    def test_empty_window(self):
        gauge = RollingGauge()
        assert gauge.latest() == 0.0
        assert gauge.mean(60.0, now=5.0) == 0.0
        assert gauge.max(60.0, now=5.0) == 0.0


class TestRollingHistogram:
    def test_quantiles_bucket_resolution(self):
        histogram = RollingHistogram(interval=1.0, capacity=10)
        for _ in range(9):
            histogram.observe(0.004, now=1.0)
        histogram.observe(0.9, now=1.0)
        assert histogram.count(10.0, now=1.0) == 10
        # p50 lands in the bucket covering 4 ms; p99 in the slow tail
        assert histogram.quantile(0.50, 10.0, now=1.0) <= 0.01
        assert histogram.quantile(0.99, 10.0, now=1.0) >= 0.9

    def test_observations_expire(self):
        histogram = RollingHistogram(interval=1.0, capacity=4)
        histogram.observe(0.1, now=0.0)
        assert histogram.count(4.0, now=0.0) == 1
        assert histogram.count(4.0, now=50.0) == 0
        assert histogram.quantile(0.5, 4.0, now=50.0) == 0.0

    def test_snapshot_shape(self):
        histogram = RollingHistogram(interval=1.0, capacity=4)
        histogram.observe(0.002, now=0.0)
        snapshot = histogram.snapshot(4.0, now=0.0)
        assert snapshot["count"] == 1
        les = [le for le, _ in snapshot["buckets"]]
        assert les[-1] == "+Inf"
        counts = [count for _, count in snapshot["buckets"]]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 1


class TestTimeSeriesStore:
    def test_create_or_get(self):
        store = TimeSeriesStore()
        assert store.counter("x") is store.counter("x")
        assert store.gauge("g") is store.gauge("g")
        assert store.histogram("h") is store.histogram("h")

    def test_window_snapshot(self):
        store = TimeSeriesStore(interval=1.0, capacity=10)
        store.counter("requests").add(now=1.0)
        store.counter("requests").add(now=2.0)
        store.gauge("depth").set(3.0, now=2.0)
        store.histogram("latency").observe(0.01, now=2.0)
        snapshot = store.window_snapshot(10.0, now=2.0)
        assert snapshot["window_seconds"] == 10.0
        assert snapshot["counters"]["requests"]["total"] == 2.0
        assert snapshot["gauges"]["depth"]["latest"] == 3.0
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["histograms"]["latency"]["p99"] > 0.0

    def test_bounded_memory(self):
        store = TimeSeriesStore(interval=1.0, capacity=16)
        counter = store.counter("c")
        for tick in range(10_000):
            counter.add(now=float(tick))
        # ring capacity bounds retained history regardless of volume
        assert counter.total(10_000.0, now=9_999.0) <= 16.0
