"""Edge-case and branch-coverage tests across the stack."""

import numpy as np
import pytest

from repro.core import PPRConfig, l1_error
from repro.core.single_source import fora, speedlv
from repro.exceptions import ConfigError, ConvergenceError, ReproError
from repro.forests.sampling import (
    AUTO_SAMPLER_ALPHA_THRESHOLD,
    sample_forest,
)
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.linalg import exact_single_source
from repro.montecarlo import WalkIndex


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro.exceptions import ConfigError as CE
        from repro.exceptions import GraphError as GE
        assert issubclass(CE, ReproError)
        assert issubclass(GE, ReproError)
        assert issubclass(ConvergenceError, ReproError)

    def test_convergence_error_payload(self):
        error = ConvergenceError("nope", iterations=5, residual=0.25)
        assert error.iterations == 5
        assert error.residual == 0.25
        assert "nope" in str(error)


class TestAutoSamplerSelection:
    def test_threshold_boundary(self, k5):
        above = sample_forest(k5, AUTO_SAMPLER_ALPHA_THRESHOLD, rng=0,
                              method="auto")
        below = sample_forest(k5, AUTO_SAMPLER_ALPHA_THRESHOLD / 2, rng=0,
                              method="auto")
        assert above.method == "cycle_popping"
        assert below.method == "wilson"


class TestWalkStageThinning:
    def test_max_walks_cap_respected(self):
        graph = erdos_renyi(60, 0.1, rng=801)
        config = PPRConfig(alpha=0.2, epsilon=0.5, seed=1, max_walks=50)
        result = fora(graph, 0, config)
        assert result.stats["num_walks"] <= 60  # cap + 1-per-node floor
        # still a sane estimate
        exact = exact_single_source(graph, 0, 0.2)
        assert l1_error(result, exact) < 1.5

    def test_max_forests_cap_respected(self):
        graph = erdos_renyi(60, 0.1, rng=801)
        config = PPRConfig(alpha=0.2, epsilon=0.01, seed=1, max_forests=3)
        result = speedlv(graph, 0, config)
        assert result.stats["num_forests"] <= 3


class TestWalkIndexClamping:
    def test_demand_beyond_stored_reuses_full_set(self):
        graph = erdos_renyi(20, 0.3, rng=802)
        index = WalkIndex.build(graph, 0.2,
                                np.full(20, 2, dtype=np.int64), rng=0)
        residual = np.full(20, 0.9)
        # scale demands ~ 0.9 * 1e6 walks per node, only 2 stored
        estimate = index.estimate_from_residual(residual, 1e6)
        assert estimate.sum() == pytest.approx(residual.sum())

    def test_nodes_without_stored_walks_skipped(self):
        graph = erdos_renyi(20, 0.3, rng=803)
        counts = np.zeros(20, dtype=np.int64)
        counts[:10] = 5
        index = WalkIndex.build(graph, 0.2, counts, rng=1)
        residual = np.zeros(20)
        residual[15] = 1.0  # only a node with no stored walks
        estimate = index.estimate_from_residual(residual, 100.0)
        assert np.all(estimate == 0.0)


class TestDegenerateGraphs:
    def test_single_node_everything(self):
        graph = from_edges([], num_nodes=1)
        exact = exact_single_source(graph, 0, 0.3)
        assert exact[0] == pytest.approx(1.0)
        forest = sample_forest(graph, 0.3, rng=0)
        assert forest.roots.tolist() == [0]
        result = speedlv(graph, 0, PPRConfig(alpha=0.3, seed=1))
        assert result.estimates[0] == pytest.approx(1.0, abs=1e-9)

    def test_two_node_path_closed_form(self):
        # P2: pi(0,0) = solve by hand: pi00 = a + (1-a) pi10,
        # pi10 = a*0 + (1-a) pi00 => pi00 = a/(1-(1-a)^2)... verify vs LU
        graph = path_graph(2)
        alpha = 0.4
        expected_00 = alpha / (1.0 - (1.0 - alpha) ** 2)
        assert exact_single_source(graph, 0, alpha)[0] == pytest.approx(
            expected_00)

    def test_star_hub_symmetry(self):
        graph = star_graph(6)
        vector = exact_single_source(graph, 0, 0.2)
        # all leaves identical by symmetry
        assert np.allclose(vector[1:], vector[1])

    def test_query_on_tiny_graph_all_methods(self, k5):
        from repro.core import SINGLE_SOURCE_METHODS, SINGLE_TARGET_METHODS
        from repro.core import single_source, single_target
        exact = exact_single_source(k5, 0, 0.3)
        for method in SINGLE_SOURCE_METHODS:
            result = single_source(k5, 0, method=method, alpha=0.3, seed=2)
            assert l1_error(result, exact) < 0.6
        for method in SINGLE_TARGET_METHODS:
            single_target(k5, 0, method=method, alpha=0.3, seed=2)


class TestNumericalRobustness:
    def test_extreme_alpha_values(self, random_graph):
        for alpha in (1e-6, 1 - 1e-6):
            exact = exact_single_source(random_graph, 0, alpha)
            assert exact.sum() == pytest.approx(1.0)

    def test_huge_weight_ratio(self):
        graph = from_edges([(0, 1), (1, 2)], weights=[1e-6, 1e6])
        exact = exact_single_source(graph, 0, 0.2)
        assert exact.sum() == pytest.approx(1.0)
        forest = sample_forest(graph, 0.2, rng=0)
        forest.validate()

    def test_speedlv_on_extreme_weights(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2)],
                           weights=[1e-6, 1e6, 1.0])
        exact = exact_single_source(graph, 0, 0.2)
        result = speedlv(graph, 0, PPRConfig(alpha=0.2, seed=3))
        assert l1_error(result, exact) < 0.2
