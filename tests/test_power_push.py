"""Power-push tests (the SPEED* deterministic stage)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import exact_ppr_matrix
from repro.push import power_push


def _check_invariant(graph, source, alpha, result, atol=1e-10):
    exact = exact_ppr_matrix(graph, alpha)
    reconstructed = result.reserve + result.residual @ exact
    assert np.allclose(reconstructed, exact[source], atol=atol)


class TestCorrectness:
    @pytest.mark.parametrize("local_start", [True, False])
    @pytest.mark.parametrize("target", [0.5, 0.1, 0.001])
    def test_eq6_invariant(self, random_graph, local_start, target):
        result = power_push(random_graph, 0, 0.15, target,
                            local_start=local_start)
        _check_invariant(random_graph, 0, 0.15, result)

    def test_mass_criterion_met(self, random_graph):
        result = power_push(random_graph, 0, 0.1, 0.01)
        assert result.residual_mass <= 0.01 + 1e-12

    def test_max_criterion_met(self, random_graph):
        result = power_push(random_graph, 0, 0.1, 0.003, criterion="max")
        assert result.residual.max() <= 0.003 + 1e-12
        _check_invariant(random_graph, 0, 0.1, result)

    def test_tiny_target_approaches_exact(self, random_graph):
        alpha = 0.2
        exact = exact_ppr_matrix(random_graph, alpha)[0]
        result = power_push(random_graph, 0, alpha, 1e-10)
        assert np.allclose(result.reserve, exact, atol=1e-8)

    def test_weighted(self, random_weighted_graph):
        result = power_push(random_weighted_graph, 1, 0.1, 0.01)
        _check_invariant(random_weighted_graph, 1, 0.1, result)

    def test_dangling_source(self, disconnected):
        result = power_push(disconnected, 5, 0.2, 0.001)
        assert result.reserve[5] == pytest.approx(1.0, abs=1e-3)


class TestValidation:
    def test_bad_target(self, k5):
        with pytest.raises(ConfigError):
            power_push(k5, 0, 0.1, 0.0)
        with pytest.raises(ConfigError):
            power_push(k5, 0, 0.1, 1.5)

    def test_bad_criterion(self, k5):
        with pytest.raises(ConfigError):
            power_push(k5, 0, 0.1, 0.1, criterion="median")

    def test_bad_node(self, k5):
        with pytest.raises(ConfigError):
            power_push(k5, 5, 0.1, 0.1)

    def test_work_accounted(self, random_graph):
        result = power_push(random_graph, 0, 0.1, 0.001)
        assert result.work > 0
