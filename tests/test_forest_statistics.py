"""Forest-statistics diagnostics: the α·τ tree-count identity & co."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.forests import collect_forest_statistics
from repro.graph.generators import erdos_renyi
from repro.linalg import exact_ppr_matrix, tau_exact


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.15, rng=901)


class TestIdentities:
    def test_mean_trees_equals_alpha_tau(self, graph):
        """E[#trees] = Σ_u π(u,u) = α·τ (Theorem 3.6 + Lemma 4.4)."""
        alpha = 0.2
        stats = collect_forest_statistics(graph, alpha, num_forests=2000,
                                          rng=1)
        want = alpha * tau_exact(graph, alpha)
        assert stats.mean_trees == pytest.approx(want, rel=0.05)

    def test_root_frequency_is_ppr_diagonal(self, graph):
        alpha = 0.25
        stats = collect_forest_statistics(graph, alpha, num_forests=3000,
                                          rng=2)
        diagonal = np.diag(exact_ppr_matrix(graph, alpha))
        assert np.abs(stats.root_frequency - diagonal).max() < 0.04

    def test_implied_tau_matches_measured_steps(self, graph):
        alpha = 0.15
        stats = collect_forest_statistics(graph, alpha, num_forests=2000,
                                          rng=3)
        assert stats.implied_tau_at(alpha) == pytest.approx(
            stats.mean_steps, rel=0.1)

    def test_tree_sizes_partition_the_graph(self, graph):
        stats = collect_forest_statistics(graph, 0.3, num_forests=200,
                                          rng=4)
        # mean size * mean trees = n (sizes partition V in every sample)
        assert stats.tree_size_mean * stats.mean_trees == pytest.approx(
            graph.num_nodes, rel=0.05)
        assert 1 <= stats.tree_size_max <= graph.num_nodes

    def test_more_trees_at_larger_alpha(self, graph):
        low = collect_forest_statistics(graph, 0.05, num_forests=300, rng=5)
        high = collect_forest_statistics(graph, 0.6, num_forests=300, rng=5)
        assert high.mean_trees > low.mean_trees


class TestValidation:
    def test_bad_count(self, graph):
        with pytest.raises(ConfigError):
            collect_forest_statistics(graph, 0.2, num_forests=0)

    def test_bad_alpha_for_implied_tau(self, graph):
        stats = collect_forest_statistics(graph, 0.2, num_forests=5, rng=6)
        with pytest.raises(ConfigError):
            stats.implied_tau_at(0.0)
