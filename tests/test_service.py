"""Serving layer: cache, metrics, scheduler, index lifecycle, HTTP."""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.batch import BatchSourceSolver, BatchTargetSolver
from repro.core.config import PPRConfig
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.montecarlo.forest_index import ForestIndex
from repro.service import (
    IndexManager,
    MicroBatchScheduler,
    PPRService,
    QueryRequest,
    ResultCache,
    SchedulerFull,
    ServiceConfig,
    ServiceMetrics,
    cache_key,
)
from repro.service.http import make_server, serve_forever
from repro.service.metrics import BatchSizeHistogram, LatencyRing

SEED = 2022
ALPHA = 0.2
EPSILON = 0.5


def assert_prometheus_exposition(text: str) -> None:
    """Strict Prometheus text-format (v0.0.4) structural checks.

    Every sample must be preceded by its family's ``# HELP`` and
    ``# TYPE`` lines and must parse against the exposition grammar;
    histogram bucket series must be cumulative (non-decreasing in
    emission order), terminate with ``le="+Inf"``, and the ``+Inf``
    bucket must equal the family's ``_count`` for the same label set.
    """
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
        r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" (\S+)$")
    le_re = re.compile(r'(?:\{|,)le="([^"]+)"')
    helped: set[str] = set()
    types: dict[str, str] = {}
    buckets: dict[tuple[str, str], list[tuple[str, float]]] = {}
    counts: dict[tuple[str, str], float] = {}

    def family(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                return name[:-len(suffix)]
        return name

    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] in ("counter", "gauge", "histogram"), line
            types[parts[2]] = parts[3]
            continue
        match = sample_re.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labels, value_text = match.groups()
        value = float(value_text)  # grammar: value must parse
        base = family(name)
        assert base in types, f"sample before its TYPE line: {line!r}"
        assert base in helped, f"sample before its HELP line: {line!r}"
        if types[base] == "histogram" and name.endswith("_bucket"):
            le = le_re.search(labels or "")
            assert le, f"histogram bucket without le label: {line!r}"
            rest = re.sub(r'(\{|,)le="[^"]*",?', r"\1", labels)
            rest = rest.replace("{,", "{").replace(",}", "}")
            buckets.setdefault((base, rest), []).append(
                (le.group(1), value))
        elif types[base] == "histogram" and name.endswith("_count"):
            counts[(base, labels or "{}")] = value
    assert buckets, "no histogram series in exposition"
    for (base, labels), series in buckets.items():
        values = [value for _, value in series]
        assert values == sorted(values), (
            f"non-cumulative buckets for {base}{labels}: {series}")
        assert series[-1][0] == "+Inf", (
            f"{base}{labels} bucket series does not end with +Inf")
        assert (base, labels) in counts, (
            f"histogram {base}{labels} has no _count sample")
        assert series[-1][1] == counts[(base, labels)], (
            f"{base}{labels}: +Inf bucket {series[-1][1]} != "
            f"_count {counts[(base, labels)]}")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(300, 0.02, rng=SEED)


@pytest.fixture(scope="module")
def service_config():
    return ServiceConfig(graph="test", alpha=ALPHA, epsilon=EPSILON,
                         budget_scale=0.05, seed=SEED, max_batch=8,
                         max_wait_ms=5.0, queue_capacity=64,
                         cache_entries=16, port=0)


@pytest.fixture(scope="module")
def service(graph, service_config):
    with PPRService(service_config, graph=graph) as svc:
        yield svc


class TestResultCache:
    def test_epsilon_dominance(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "source", 1, 0.1)
        cache.put(key, epsilon=0.25, value="tight")
        assert cache.get(key, epsilon=0.25) == "tight"
        assert cache.get(key, epsilon=0.5) == "tight"   # looser query OK
        assert cache.get(key, epsilon=0.1) is None      # tighter: miss

    def test_put_never_loosens(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "source", 1, 0.1)
        cache.put(key, epsilon=0.2, value="tight")
        cache.put(key, epsilon=0.9, value="loose")
        assert cache.get(key, epsilon=0.2) == "tight"
        cache.put(key, epsilon=0.05, value="tighter")
        assert cache.get(key, epsilon=0.1) == "tighter"

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        keys = [cache_key("g", "batch", "source", n, 0.1) for n in range(3)]
        cache.put(keys[0], 0.5, "a")
        cache.put(keys[1], 0.5, "b")
        assert cache.get(keys[0], 0.5) == "a"   # refresh key 0
        cache.put(keys[2], 0.5, "c")            # evicts key 1, not key 0
        assert cache.get(keys[0], 0.5) == "a"
        assert cache.get(keys[1], 0.5) is None
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        key = cache_key("g", "batch", "source", 1, 0.1)
        cache.put(key, 0.5, "value")
        assert cache.get(key, 0.5) is None
        assert len(cache) == 0

    def test_stats_counters(self):
        cache = ResultCache(capacity=4)
        key = cache_key("g", "batch", "source", 1, 0.1)
        assert cache.get(key, 0.5) is None
        cache.put(key, 0.5, "v")
        assert cache.get(key, 0.5) == "v"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == 0.5

    def test_epsilon_excluded_from_key(self):
        tight = cache_key("g", "batch", "source", 1, 0.1)
        assert tight == cache_key("g", "batch", "source", 1, 0.1)
        assert tight != cache_key("g", "batch", "target", 1, 0.1)
        assert tight != cache_key("g", "batch", "source", 1, 0.2)


class TestMetrics:
    def test_latency_ring_quantiles(self):
        ring = LatencyRing(window=8)
        assert ring.quantile(0.99) == 0.0
        for value in (1.0, 2.0, 3.0, 4.0):
            ring.record(value)
        assert ring.count == 4
        assert ring.quantile(0.5) == pytest.approx(2.5)
        # the ring keeps only the most recent window
        for value in (10.0,) * 8:
            ring.record(value)
        assert ring.quantile(0.5) == 10.0

    def test_batch_histogram_buckets(self):
        hist = BatchSizeHistogram()
        for size in (1, 3, 8, 200):
            hist.record(size)
        snap = hist.snapshot()
        buckets = dict(snap["buckets"])
        assert buckets["1"] == 1
        assert buckets["4"] == 2
        assert buckets["8"] == 3
        assert buckets["+Inf"] == 4
        assert snap["sum"] == 212
        assert snap["count"] == 4

    def test_render_exposes_required_series(self):
        metrics = ServiceMetrics()
        metrics.record_request("query", 0.012)
        metrics.record_batch(4, {"walk_steps": 10, "pushes": 3})
        metrics.record_rejection()
        metrics.register_gauge("repro_service_queue_depth", lambda: 2.0)
        metrics.register_gauge(
            "repro_service_cache",
            lambda: {'{stat="hit_rate"}': 0.25, '{stat="size"}': 3.0})
        text = metrics.render()
        assert 'repro_service_requests_total{endpoint="query"} 1' in text
        assert "repro_service_rejected_total 1" in text
        assert "repro_service_batches_total 1" in text
        assert 'repro_service_batch_size_bucket{le="4"} 1' in text
        assert "repro_service_batch_size_count 1" in text
        assert 'repro_service_latency_seconds_bucket{le="0.025"} 1' in text
        assert "repro_service_latency_seconds_count 1" in text
        assert ('repro_service_stage_seconds_bucket{stage="fold",'
                in text)
        assert "repro_service_work_walk_steps_total 10" in text
        assert "repro_service_work_pushes_total 3" in text
        assert "repro_service_queue_depth 2.0" in text
        assert 'repro_service_cache{stat="hit_rate"} 0.25' in text

    def test_snapshot_work_is_detached(self):
        metrics = ServiceMetrics()
        metrics.record_batch(1, {"walk_steps": 5})
        snap = metrics.snapshot()
        metrics.record_batch(1, {"walk_steps": 5})
        assert snap["work"]["walk_steps"] == 5
        assert metrics.snapshot()["work"]["walk_steps"] == 10

    def test_stage_histograms_feed_snapshot_quantiles(self):
        metrics = ServiceMetrics()
        for seconds in (0.001, 0.002, 0.2):
            metrics.record_fold(seconds)
        metrics.record_stage("serialize", 0.0001)
        snap = metrics.snapshot()
        assert snap["fold_p50"] > 0
        assert snap["fold_p99"] >= snap["fold_p50"]

    def test_exposition_is_strictly_well_formed(self):
        metrics = ServiceMetrics()
        metrics.record_request("query", 0.012)
        metrics.record_request("pair", 3.5)
        metrics.record_stage("admission", 1e-6)
        metrics.record_fold(0.02)
        metrics.record_batch(3, {"pushes": 1})
        metrics.register_gauge("repro_service_queue_depth", lambda: 0.0)
        assert_prometheus_exposition(metrics.render())

    def test_tenant_sanitization(self):
        from repro.service.metrics import DEFAULT_TENANT, clean_tenant
        assert clean_tenant("acme-prod_1.eu:a") == "acme-prod_1.eu:a"
        assert clean_tenant(None) == DEFAULT_TENANT
        assert clean_tenant("") == DEFAULT_TENANT
        assert clean_tenant('evil"} 1\n') == DEFAULT_TENANT
        assert clean_tenant("x" * 65) == DEFAULT_TENANT
        assert clean_tenant("  spaced  ") == "spaced"

    def test_tenant_attribution_table_and_render(self):
        metrics = ServiceMetrics()
        metrics.record_request("query", 0.010, tenant="acme",
                               work={"pushes": 5})
        metrics.record_request("query", 0.020, tenant="acme",
                               work={"pushes": 7})
        metrics.record_request("query", 0.030)  # default tenant
        metrics.record_rejection(tenant="acme")
        metrics.record_failure(tenant="beta")
        rows = {row["tenant"]: row for row in metrics.tenant_table()}
        assert rows["acme"]["requests"] == 2
        assert rows["acme"]["rejected"] == 1
        assert rows["acme"]["work"] == 12
        assert rows["acme"]["p99_seconds"] > 0
        assert rows["beta"]["errors"] == 1
        assert rows["default"]["requests"] == 1
        text = metrics.render()
        assert ('repro_service_tenant_requests_total{tenant="acme"} 2'
                in text)
        assert ('repro_service_tenant_rejected_total{tenant="acme"} 1'
                in text)
        assert ('repro_service_tenant_errors_total{tenant="beta"} 1'
                in text)
        assert ('repro_service_tenant_work_total{tenant="acme"} 12'
                in text)
        assert ('repro_service_tenant_latency_seconds_count'
                '{tenant="acme"} 2') in text
        assert_prometheus_exposition(text)

    def test_straggler_and_shard_tables(self):
        metrics = ServiceMetrics()
        metrics.record_shard_fold(0, 0.001)
        metrics.record_shard_fold(1, 0.5)
        metrics.record_straggler(1)
        rows = {row["shard"]: row for row in metrics.shard_table()}
        assert rows[0]["straggler_folds"] == 0
        assert rows[1]["straggler_folds"] == 1
        assert rows[1]["fold_p99_seconds"] >= rows[0]["fold_p50_seconds"]
        assert metrics.snapshot()["straggler_folds"] == {1: 1}
        text = metrics.render()
        assert ('repro_service_straggler_folds_total{shard="1"} 1'
                in text)

    def test_window_snapshot_and_slo_report_require_wiring(self):
        from repro.obs.slo import SLOEngine, default_specs
        from repro.obs.timeseries import TimeSeriesStore
        bare = ServiceMetrics()
        assert bare.window_snapshot(60.0) is None
        assert bare.slo_report() == []
        wired = ServiceMetrics(timeseries=TimeSeriesStore(),
                               slo=SLOEngine(default_specs()))
        wired.record_request("query", 0.012, tenant="acme")
        wired.record_rejection()
        snapshot = wired.window_snapshot(60.0)
        assert snapshot["counters"]["requests"]["total"] == 1.0
        assert snapshot["counters"]["rejected"]["total"] == 1.0
        assert snapshot["histograms"]["latency"]["count"] == 1
        names = {report["name"] for report in wired.slo_report()}
        assert names == {"availability", "latency"}


class TestIndexManager:
    def _manager(self, graph, **overrides):
        config = PPRConfig(alpha=ALPHA, epsilon=EPSILON, seed=SEED,
                           budget_scale=0.05, **overrides)
        manager = IndexManager(config, num_forests=6)
        manager.register_graph("test", graph)
        return manager

    def test_build_once_per_graph_alpha(self, graph):
        manager = self._manager(graph)
        first = manager.get_index("test")
        assert manager.get_index("test") is first
        assert manager.stats()["builds"] == 1
        other_alpha = manager.get_index("test", alpha=0.5)
        assert other_alpha is not first
        assert manager.stats()["builds"] == 2

    def test_unknown_graph_raises(self, graph):
        manager = self._manager(graph)
        with pytest.raises(ConfigError, match="unknown graph"):
            manager.get_index("nope")

    def test_solvers_share_one_bank_across_epsilon(self, graph):
        manager = self._manager(graph)
        tight = manager.get_solver("test", "source", epsilon=0.25)
        loose = manager.get_solver("test", "source", epsilon=0.5)
        assert tight is not loose
        assert tight.index is loose.index          # shared bank
        assert manager.stats()["builds"] == 1      # epsilon never rebuilds
        assert not tight._owns_index
        assert manager.get_solver("test", "source", epsilon=0.25) is tight

    def test_refresh_swaps_generation_and_drops_solvers(self, graph):
        manager = self._manager(graph)
        before = manager.get_index("test")
        solver = manager.get_solver("test", "source")
        assert manager.generation("test") == 0
        manager.refresh("test", block=True)
        after = manager.get_index("test")
        assert manager.generation("test") == 1
        assert after is not before
        # old bank object is untouched for in-flight holders
        assert before.num_forests == after.num_forests
        assert manager.get_solver("test", "source") is not solver
        # refreshed bank is deterministically different (new seed)
        assert not all(
            np.array_equal(a.roots, b.roots)
            for a, b in zip(before.forests, after.forests))

    def test_drop_and_memory_accounting(self, graph):
        manager = self._manager(graph)
        manager.warm("test")
        assert manager.memory_bytes() > 0
        stats = manager.stats()
        assert stats["memory_bytes"] == manager.memory_bytes()
        (bank_stats,) = stats["banks"].values()
        assert bank_stats["num_forests"] == 6
        manager.drop("test")
        assert manager.memory_bytes() == 0
        assert manager.stats()["banks"] == {}


class TestIndexManagerBankDir:
    """Generation-0 preload from a saved bank directory."""

    def _saved_bank(self, graph, tmp_path, **save_kwargs):
        index = ForestIndex.build(graph, ALPHA, 6, rng=SEED)
        index.save_bank(tmp_path / "bank", **save_kwargs)
        return index, str(tmp_path / "bank")

    def _manager(self, graph, bank_dir=None, **config_overrides):
        config = PPRConfig(alpha=ALPHA, epsilon=EPSILON, seed=SEED,
                           budget_scale=0.05, **config_overrides)
        manager = IndexManager(config, num_forests=6, bank_dir=bank_dir)
        manager.register_graph("test", graph)
        return manager

    def test_preload_skips_sampling_and_matches_the_saved_bank(
            self, graph, tmp_path):
        saved, bank_dir = self._saved_bank(graph, tmp_path)
        manager = self._manager(graph, bank_dir=bank_dir)
        index = manager.get_index("test")
        assert manager.stats()["builds"] == 1
        residuals = np.random.default_rng(1).random((2, graph.num_nodes))
        assert np.array_equal(saved.estimate_source_many(residuals),
                              index.estimate_source_many(residuals))

    def test_relabeled_bank_serves_identical_answers(self, graph,
                                                     tmp_path):
        saved, bank_dir = self._saved_bank(graph, tmp_path,
                                           node_order="degree")
        manager = self._manager(graph, bank_dir=bank_dir)
        index = manager.get_index("test")
        assert index.bank_node_order == "degree"
        residuals = np.random.default_rng(1).random((2, graph.num_nodes))
        assert np.array_equal(saved.estimate_source_many(residuals),
                              index.estimate_source_many(residuals))

    def test_refresh_resamples_instead_of_reloading(self, graph,
                                                    tmp_path):
        _, bank_dir = self._saved_bank(graph, tmp_path)
        manager = self._manager(graph, bank_dir=bank_dir)
        before = manager.get_index("test")
        manager.refresh("test", block=True)
        after = manager.get_index("test")
        assert after is not before
        assert after.forests  # sampled, not attached

    def test_alpha_mismatch_refused(self, graph, tmp_path):
        _, bank_dir = self._saved_bank(graph, tmp_path)
        manager = self._manager(graph, bank_dir=bank_dir)
        with pytest.raises(ConfigError, match="alpha"):
            manager.get_index("test", alpha=0.5)

    def test_bank_dir_rejects_dynamic(self, graph, tmp_path):
        _, bank_dir = self._saved_bank(graph, tmp_path)
        with pytest.raises(ConfigError, match="dynamic"):
            IndexManager(PPRConfig(alpha=ALPHA, seed=SEED),
                         dynamic=True, bank_dir=bank_dir)
        with pytest.raises(ConfigError, match="dynamic"):
            ServiceConfig(bank_dir=bank_dir, dynamic=True)


class TestBatchSolverLifecycle:
    def test_context_manager_and_close_idempotent(self, graph):
        with BatchSourceSolver(graph, alpha=ALPHA, epsilon=EPSILON,
                               seed=SEED, budget_scale=0.05,
                               num_forests=4) as solver:
            solver.query(0)
            assert not solver.closed
        assert solver.closed
        solver.close()  # idempotent
        with pytest.raises(ConfigError, match="closed"):
            solver.query(0)

    def test_injected_index_not_rebuilt_and_kept_open(self, graph):
        index = ForestIndex.build(graph, ALPHA, 4, rng=SEED)
        forests_before = list(index.forests)
        solver = BatchSourceSolver(graph, alpha=ALPHA, epsilon=EPSILON,
                                   seed=SEED, budget_scale=0.05,
                                   index=index)
        assert solver.index is index
        assert solver.stats()["owns_index"] is False
        solver.close()
        # borrowed bank survives the borrower
        assert index.forests == forests_before

    def test_injected_index_validation(self, graph):
        index = ForestIndex.build(graph, ALPHA, 2, rng=SEED)
        with pytest.raises(ConfigError, match="alpha"):
            BatchSourceSolver(graph, alpha=0.5, index=index)
        small = erdos_renyi(10, 0.3, rng=1)
        with pytest.raises(ConfigError, match="nodes"):
            BatchSourceSolver(small, alpha=ALPHA, index=index)

    def test_stats_track_queries(self, graph):
        with BatchTargetSolver(graph, alpha=ALPHA, epsilon=EPSILON,
                               seed=SEED, budget_scale=0.05,
                               num_forests=4) as solver:
            solver.query_many([0, 1, 2])
            stats = solver.stats()
            assert stats["queries_served"] == 3
            assert stats["push_work"] > 0
            assert stats["push_work_per_query"] == stats["push_work"] / 3
            assert stats["index_size_bytes"] > 0

    def test_query_is_query_many_of_one(self, graph):
        with BatchSourceSolver(graph, alpha=ALPHA, epsilon=EPSILON,
                               seed=SEED, budget_scale=0.05,
                               num_forests=4) as solver:
            alone = solver.query(3)
            batched = solver.query_many([3, 7, 11])[0]
            assert np.array_equal(alone.estimates, batched.estimates)


class TestScheduler:
    def _scheduler(self, graph, **overrides):
        manager = IndexManager(
            PPRConfig(alpha=ALPHA, epsilon=EPSILON, seed=SEED,
                      budget_scale=0.05), num_forests=4)
        manager.register_graph("test", graph)
        defaults = dict(max_batch=8, max_wait_ms=5.0, queue_capacity=8)
        defaults.update(overrides)
        return MicroBatchScheduler(manager, **defaults)

    def test_empty_deadline_flush_is_noop(self, graph):
        scheduler = self._scheduler(graph, max_wait_ms=1.0)
        scheduler.start()
        try:
            time.sleep(0.05)  # several empty deadline windows pass
            assert scheduler.batches_executed == 0
            assert scheduler.queue_depth == 0
            result = scheduler.submit(QueryRequest(
                graph="test", kind="source", node=0,
                alpha=ALPHA, epsilon=EPSILON))
            assert result.query_node == 0
        finally:
            scheduler.stop()

    def test_full_queue_rejects_with_retry_after(self, graph):
        scheduler = self._scheduler(graph, queue_capacity=2)
        # not started: admissions accumulate
        for node in (0, 1):
            scheduler.submit_nowait(QueryRequest(
                graph="test", kind="source", node=node,
                alpha=ALPHA, epsilon=EPSILON))
        with pytest.raises(SchedulerFull) as excinfo:
            scheduler.submit_nowait(QueryRequest(
                graph="test", kind="source", node=2,
                alpha=ALPHA, epsilon=EPSILON))
        assert excinfo.value.depth == 2
        assert excinfo.value.retry_after > 0
        assert scheduler.queue_depth == 2

    def test_mixed_epsilon_never_shares_a_batch(self, graph):
        scheduler = self._scheduler(graph, max_batch=16, max_wait_ms=20.0)
        pendings = []
        for node in range(4):
            pendings.append(scheduler.submit_nowait(QueryRequest(
                graph="test", kind="source", node=node,
                alpha=ALPHA, epsilon=0.5)))
        for node in range(3):
            pendings.append(scheduler.submit_nowait(QueryRequest(
                graph="test", kind="source", node=node,
                alpha=ALPHA, epsilon=0.25)))
        assert len({p.request.group_key for p in pendings}) == 2
        scheduler.start()
        try:
            results = [p.resolve(timeout=30.0) for p in pendings]
        finally:
            scheduler.stop()
        # each answer was solved at its own epsilon, in exactly 2 batches
        assert [r.epsilon for r in results] == [0.5] * 4 + [0.25] * 3
        assert scheduler.batches_executed == 2

    def test_each_kind_batches_separately(self):
        """Top-k and pairwise queries have their own batching rules:
        every kind groups only with itself (same graph/α/ε)."""
        requests = {
            "source": QueryRequest(graph="g", kind="source", node=5,
                                   alpha=0.1, epsilon=0.5),
            "target": QueryRequest(graph="g", kind="target", node=5,
                                   alpha=0.1, epsilon=0.5),
            "pair": QueryRequest(graph="g", kind="pair", node=5,
                                 alpha=0.1, epsilon=0.5, source=2),
            "topk": QueryRequest(graph="g", kind="topk", node=5,
                                 alpha=0.1, epsilon=0.5, k=3),
            "multiseed": QueryRequest(graph="g", kind="multiseed",
                                      node=5, alpha=0.1, epsilon=0.5,
                                      seeds=[5, 7], weights=[0.5, 0.5]),
        }
        for kind, request in requests.items():
            assert request.solver_kind == kind
        keys = {request.group_key for request in requests.values()}
        assert len(keys) == len(requests)
        with pytest.raises(ConfigError, match="source="):
            QueryRequest(graph="g", kind="pair", node=5, alpha=0.1,
                         epsilon=0.5)
        with pytest.raises(ConfigError, match="k"):
            QueryRequest(graph="g", kind="topk", node=5, alpha=0.1,
                         epsilon=0.5)
        with pytest.raises(ConfigError, match="seeds"):
            QueryRequest(graph="g", kind="multiseed", node=5, alpha=0.1,
                         epsilon=0.5)

    def test_payload_items_per_kind(self):
        pair = QueryRequest(graph="g", kind="pair", node=5, alpha=0.1,
                            epsilon=0.5, source=2)
        topk = QueryRequest(graph="g", kind="topk", node=5, alpha=0.1,
                            epsilon=0.5, k=3)
        multi = QueryRequest(graph="g", kind="multiseed", node=5,
                             alpha=0.1, epsilon=0.5, seeds=[5, 7],
                             weights=[0.25, 0.75])
        plain = QueryRequest(graph="g", kind="source", node=5,
                             alpha=0.1, epsilon=0.5)
        assert pair.payload_item == (2, 5)
        assert topk.payload_item == (5, 3)
        assert multi.payload_item == ((5, 7), (0.25, 0.75))
        assert plain.payload_item == 5

    def test_batched_results_match_direct_solver(self, graph):
        scheduler = self._scheduler(graph, max_batch=4, max_wait_ms=2.0)
        scheduler.start()
        try:
            results = [scheduler.submit(QueryRequest(
                graph="test", kind="source", node=node,
                alpha=ALPHA, epsilon=EPSILON)) for node in range(5)]
        finally:
            scheduler.stop()
        direct = scheduler.index_manager.get_solver(
            "test", "source", alpha=ALPHA, epsilon=EPSILON)
        for node, result in enumerate(results):
            assert np.array_equal(result.estimates,
                                  direct.query(node).estimates)


class TestPPRService:
    def test_query_caches_and_is_deterministic(self, service):
        first, hit_first = service.query_result("source", 5)
        again, hit_again = service.query_result("source", 5)
        assert not hit_first and hit_again
        assert np.array_equal(first.estimates, again.estimates)

    def test_node_validation_before_admission(self, service):
        with pytest.raises(ConfigError, match="out of range"):
            service.query_result("source", 10_000)
        with pytest.raises(ConfigError, match="kind"):
            service.query_result("walks", 0)

    def test_query_payload_shape(self, service):
        payload = service.query("source", 3, top=5)
        assert payload["kind"] == "source"
        assert payload["alpha"] == ALPHA
        assert len(payload["top"]) == 5
        assert payload["top"] == sorted(payload["top"], key=lambda kv: -kv[1])
        assert payload["work"]["pushes"] >= 0

    def test_pair_matches_target_column(self, service):
        payload = service.pair(2, 9)
        target_result, _ = service.query_result("target", 9)
        assert payload["value"] == target_result[2]
        with pytest.raises(ConfigError, match="source"):
            service.pair(10_000, 9)

    def test_healthz_and_metrics_populated(self, service):
        service.query("source", 1)
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["graph"] == "test"
        assert health["num_nodes"] == 300
        assert health["requests"] >= 1
        assert health["batches"] >= 1
        assert health["index"]["builds"] >= 1
        text = service.metrics_text()
        assert "repro_service_queue_depth 0.0" in text
        assert 'repro_service_cache{stat="hits"}' in text
        assert 'repro_service_index_bytes{bank="test@0.2"}' in text
        assert health["observability"]["tracing"]["sample_rate"] == 0.0
        assert health["observability"]["slowlog"]["written"] >= 0

    def test_results_match_standalone_manager(self, graph, service,
                                              service_config):
        """Service answers == direct solver calls from a fresh manager."""
        fresh = PPRService(service_config, graph=graph).index_manager
        direct = fresh.get_solver("test", "source", alpha=ALPHA,
                                  epsilon=EPSILON)
        for node in (0, 5, 17):
            served, _ = service.query_result("source", node,
                                             use_cache=False)
            assert np.array_equal(served.estimates,
                                  direct.query(node).estimates)


class TestQuerySurface:
    """The three first-class query kinds, end to end through the
    service facade: scheduler batching, cache policy, and the
    estimator identities each kind is built on."""

    def test_multiseed_is_weighted_sum_bit_identical(self, service):
        seeds, weights = [0, 5, 17], [0.2, 0.3, 0.5]
        combined, _ = service.multiseed_result(seeds, weights,
                                               use_cache=False)
        manual = np.zeros(300)
        for seed, weight in zip(seeds, weights):
            row, _ = service.query_result("source", seed, use_cache=False)
            manual += weight * row.estimates
        assert np.array_equal(combined.estimates, manual)

    def test_topk_is_prefix_of_full_vector_ranking(self, service):
        """At a fixed seed the early-terminating answer agrees with
        the full-budget ranking over the same forest stream, and the
        full-budget rankings are exact prefixes of each other."""
        from repro.core.topk import BatchTopKSolver
        served, _ = service.topk_result(3, 5, use_cache=False)
        solver = service.index_manager.get_solver(
            "test", "topk", alpha=ALPHA, epsilon=EPSILON)
        full = BatchTopKSolver(service.index_manager.graph("test"),
                               config=solver.config, early_stop=False,
                               max_forests=solver.max_forests)
        try:
            full10 = full.query_topk(3, 10)
            full5 = full.query_topk(3, 5)
        finally:
            full.close()
        # deeper full-budget rankings extend shallower ones exactly
        assert full5.nodes.tolist() == full10.nodes.tolist()[:5]
        # the early-stopped set matches the full-budget set at k
        overlap = len(set(served.nodes.tolist())
                      & set(full5.nodes.tolist()))
        assert overlap >= 4
        if not served.converged:
            assert served.nodes.tolist() == full5.nodes.tolist()

    def test_pair_agrees_with_full_vector_entry(self, service):
        result, _ = service.pair_result(2, 9, use_cache=False)
        column, _ = service.query_result("target", 9, use_cache=False)
        assert float(result) == column[2]
        assert result.method == "batch-pair"

    def test_topk_cache_prefix_dominance(self, service):
        node = 11
        deep, hit_deep = service.topk_result(node, 8)
        shallow, hit_shallow = service.topk_result(node, 5)
        assert not hit_deep and hit_shallow
        # the shallow hit is served as an exact prefix of the deep entry
        assert shallow.nodes.tolist() == deep.nodes.tolist()[:5]
        assert np.array_equal(shallow.estimates, deep.estimates[:5])
        # a deeper request than any cached entry must miss
        deeper, hit_deeper = service.topk_result(node, 10)
        assert not hit_deeper
        assert deeper.k == 10

    def test_topk_and_multiseed_payload_shapes(self, service):
        topk = service.query_topk(4, 3)
        assert topk["kind"] == "topk"
        assert topk["k"] == 3
        assert len(topk["top"]) == 3
        assert isinstance(topk["converged"], bool)
        assert topk["num_forests"] >= 1
        assert topk["work"]["forests_sampled"] >= 1
        multi = service.query_multiseed([4, 9], top=5)
        assert multi["kind"] == "multiseed"
        assert multi["seeds"] == [4, 9]
        assert multi["weights"] == [0.5, 0.5]
        assert len(multi["top"]) == 5
        assert multi["total_mass"] == pytest.approx(1.0, abs=1e-9)

    def test_admission_guards(self, service):
        with pytest.raises(ConfigError, match="topk_max_k"):
            service.query_topk(0, service.config.topk_max_k + 1)
        with pytest.raises(ConfigError, match="multiseed_max_seeds"):
            service.query_multiseed(
                list(range(service.config.multiseed_max_seeds + 1)))
        with pytest.raises(ConfigError):
            service.query_topk(10_000, 3)
        with pytest.raises(ConfigError):
            service.query_multiseed([0, 10_000])

    def test_per_kind_request_counters(self, service):
        service.query_topk(6, 3)
        service.query_multiseed([6, 8])
        service.pair(6, 8)
        text = service.metrics_text()
        for kind in ("topk", "multiseed", "pair"):
            assert (f'repro_service_requests_total{{endpoint="{kind}"}}'
                    in text)
        assert_prometheus_exposition(text)


class TestHTTP:
    @pytest.fixture(scope="class")
    def base_url(self, service):
        server = make_server(service, port=0)
        serve_forever(server, in_thread=True)
        yield f"http://127.0.0.1:{server.server_port}"
        server.shutdown()
        server.server_close()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()

    def _post(self, url, payload):
        body = json.dumps(payload).encode()
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())

    def test_healthz(self, base_url):
        status, body = self._get(f"{base_url}/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_query_roundtrip(self, base_url):
        status, payload = self._post(f"{base_url}/query",
                                     {"kind": "source", "node": 4, "top": 3})
        assert status == 200
        assert payload["node"] == 4
        assert len(payload["top"]) == 3

    def test_pair_roundtrip(self, base_url):
        status, payload = self._post(f"{base_url}/pair",
                                     {"source": 1, "target": 6})
        assert status == 200
        assert isinstance(payload["value"], float)

    def test_topk_roundtrip(self, base_url):
        status, payload = self._post(f"{base_url}/topk",
                                     {"node": 4, "k": 3})
        assert status == 200
        assert payload["kind"] == "topk"
        assert len(payload["top"]) == 3
        assert isinstance(payload["converged"], bool)

    def test_multiseed_roundtrip(self, base_url):
        status, payload = self._post(
            f"{base_url}/multiseed",
            {"seeds": [1, 6], "weights": [0.25, 0.75], "top": 4})
        assert status == 200
        assert payload["kind"] == "multiseed"
        assert payload["seeds"] == [1, 6]
        assert payload["weights"] == [0.25, 0.75]
        assert len(payload["top"]) == 4

    def test_bad_requests(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/query", {"kind": "source"})  # no node
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/query",
                       {"kind": "source", "node": 10_000})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/topk", {"node": 4})  # no k
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/multiseed", {"seeds": []})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{base_url}/nope")
        assert excinfo.value.code == 404

    def test_metrics_endpoint(self, base_url):
        self._post(f"{base_url}/query", {"kind": "source", "node": 2})
        status, body = self._get(f"{base_url}/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_service_batches_total" in text
        assert "repro_service_latency_seconds_bucket" in text
        assert 'repro_service_stage_seconds_bucket{stage="batch_wait"' \
            in text
        assert_prometheus_exposition(text)

    def test_tenant_attribution_over_http(self, base_url):
        body = json.dumps({"kind": "source", "node": 9}).encode()
        request = urllib.request.Request(
            f"{base_url}/query", data=body,
            headers={"Content-Type": "application/json",
                     "X-Tenant": "acme"})
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
        # a tenant query argument works too (header wins when both)
        self._post(f"{base_url}/query?tenant=beta",
                   {"kind": "source", "node": 10})
        _, metrics_body = self._get(f"{base_url}/metrics")
        text = metrics_body.decode()
        for tenant in ("acme", "beta"):
            assert (f'repro_service_tenant_requests_total'
                    f'{{tenant="{tenant}"}}') in text
            assert (f'repro_service_tenant_latency_seconds_count'
                    f'{{tenant="{tenant}"}}') in text
        assert_prometheus_exposition(text)

    def test_statusz_endpoint(self, base_url):
        self._post(f"{base_url}/query?tenant=acme",
                   {"kind": "source", "node": 11})
        status, body = self._get(f"{base_url}/statusz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["graph"] == "test"
        assert payload["totals"]["requests"] >= 1
        assert set(payload["windows"]) == {"60s", "300s"}
        assert payload["windows"]["60s"]["counters"]["requests"][
            "total"] >= 1
        slo_states = {report["name"]: report["state"]
                      for report in payload["slo"]}
        assert set(slo_states) == {"availability", "latency"}
        tenants = {row["tenant"] for row in payload["tenants"]}
        assert "acme" in tenants

    def test_request_id_echoed_on_get_and_errors(self, base_url):
        with urllib.request.urlopen(f"{base_url}/healthz",
                                    timeout=10) as response:
            assert response.headers["X-Request-Id"]  # minted
        for url, data in ((f"{base_url}/nope", None),
                          (f"{base_url}/nope", b"{}"),
                          (f"{base_url}/query", b'{"kind": "source"}')):
            request = urllib.request.Request(
                url, data=data,
                headers={"Content-Type": "application/json",
                         "X-Request-Id": "rid-err-1"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code in (400, 404)
            assert excinfo.value.headers["X-Request-Id"] == "rid-err-1"

    def test_request_id_echoed_and_propagated(self, base_url):
        body = json.dumps({"kind": "source", "node": 7}).encode()
        request = urllib.request.Request(
            f"{base_url}/query?debug=1", data=body,
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "trace-me-42"})
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"] == "trace-me-42"
            payload = json.loads(response.read())
        debug = payload["debug"]
        assert debug["request_id"] == "trace-me-42"
        assert debug["trace"]["name"] == "query"
        assert debug["trace"]["attrs"]["request_id"] == "trace-me-42"
        # a minted id comes back when the client sends none
        request = urllib.request.Request(
            f"{base_url}/query", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"]
            payload = json.loads(response.read())
        assert "debug" not in payload


class TestSLOIntegration:
    """A burn-rate alert fires under injected latency pressure and
    clears once the fast window recovers."""

    def test_latency_alert_fires_and_clears(self, graph):
        config = ServiceConfig(
            graph="test", alpha=ALPHA, epsilon=EPSILON,
            budget_scale=0.05, seed=SEED, max_batch=8,
            max_wait_ms=2.0, cache_entries=0, port=0,
            # hair-trigger latency SLO: every request breaches
            slo_latency_ms=0.001, slo_fast_window_s=1.0,
            slo_slow_window_s=5.0, slo_burn_threshold=1.0)
        with PPRService(config, graph=graph) as service:
            for node in range(10):
                service.query("source", node, top=3, tenant="acme")
            fired = {report["name"]: report
                     for report in service.statusz()["slo"]}
            assert fired["latency"]["state"] == "firing"
            assert fired["latency"]["fast_burn"] >= 1.0
            # no errors: availability stays healthy throughout
            assert fired["availability"]["state"] == "ok"
            # evaluate past the windows: the bad events age out and
            # the state machine transitions back to ok
            later = time.monotonic() + 30.0
            cleared = {report["name"]: report
                       for report in service.statusz(now=later)["slo"]}
            assert cleared["latency"]["state"] == "ok"
            transitions = [entry["state"] for entry
                           in cleared["latency"]["transitions"]]
            assert transitions[-2:] == ["firing", "ok"]
