"""Tests for the pair-query and batch-solver extensions."""

import numpy as np
import pytest

from repro.core import (
    BatchSourceSolver,
    BatchTargetSolver,
    PPRConfig,
    l1_error,
    pair_ppr,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.linalg import ExactSolver, exact_ppr_matrix


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.08, rng=401)


class TestPairPPR:
    def test_close_to_exact(self, graph):
        exact = exact_ppr_matrix(graph, 0.1)
        for source, target in ((0, 1), (5, 30), (7, 7)):
            value = pair_ppr(graph, source, target, alpha=0.1, seed=3)
            assert abs(float(value) - exact[source, target]) < 0.02

    def test_stats_attached(self, graph):
        value = pair_ppr(graph, 0, 1, alpha=0.1, seed=3)
        assert value.stats["num_forests"] >= 1
        assert value.stats["estimator"] == "improved"
        assert "push_seconds" in value.stats

    def test_directed_uses_basic(self):
        from repro.graph import from_edges
        directed = from_edges([(0, 1), (1, 2), (2, 0), (1, 0)],
                              directed=True)
        exact = exact_ppr_matrix(directed, 0.3)
        value = pair_ppr(directed, 0, 2, alpha=0.3, seed=4,
                         num_forests=3000)
        assert value.stats["estimator"] == "basic"
        assert abs(float(value) - exact[0, 2]) < 0.03

    def test_node_validation(self, graph):
        with pytest.raises(ConfigError):
            pair_ppr(graph, -1, 0)
        with pytest.raises(ConfigError):
            pair_ppr(graph, 0, 10**6)

    def test_is_a_float(self, graph):
        value = pair_ppr(graph, 0, 1, alpha=0.2, seed=5)
        assert isinstance(value, float)
        assert 0.0 <= float(value) <= 1.0 + 1e-9


class TestBatchSourceSolver:
    def test_many_queries_share_forests(self, graph):
        solver = BatchSourceSolver(graph, alpha=0.1, seed=6,
                                   num_forests=40)
        assert solver.num_forests == 40
        exact = ExactSolver(graph, 0.1)
        for source in (0, 3, 17):
            result = solver.query(source)
            assert result.method == "batch-source"
            assert l1_error(result, exact.single_source(source)) < 0.25

    def test_deterministic_given_seed(self, graph):
        first = BatchSourceSolver(graph, alpha=0.1, seed=9).query(0)
        second = BatchSourceSolver(graph, alpha=0.1, seed=9).query(0)
        assert np.allclose(first.estimates, second.estimates)

    def test_query_validation(self, graph):
        solver = BatchSourceSolver(graph, alpha=0.1, seed=6, num_forests=5)
        with pytest.raises(ConfigError):
            solver.query(10**6)

    def test_config_object_accepted(self, graph):
        config = PPRConfig(alpha=0.2, seed=1)
        solver = BatchSourceSolver(graph, config=config, num_forests=5)
        assert solver.config.alpha == 0.2


class TestBatchTargetSolver:
    def test_target_queries(self, graph):
        solver = BatchTargetSolver(graph, alpha=0.1, seed=7, num_forests=40)
        exact = ExactSolver(graph, 0.1)
        target = int(np.argmax(graph.degrees))
        result = solver.query(target)
        assert result.method == "batch-target"
        truth = exact.single_target(target)
        assert l1_error(result, truth) < 0.1 * max(truth.sum(), 1.0)

    def test_kind(self, graph):
        solver = BatchTargetSolver(graph, alpha=0.1, seed=7, num_forests=5)
        assert solver.query(0).kind == "target"


class TestPairBiPPR:
    def test_close_to_exact(self, graph):
        from repro.core.pairwise import pair_ppr_bippr
        from repro.linalg import exact_ppr_matrix
        exact = exact_ppr_matrix(graph, 0.1)
        for source, target in ((0, 1), (5, 30)):
            value = pair_ppr_bippr(graph, source, target, alpha=0.1, seed=3)
            assert abs(float(value) - exact[source, target]) < 0.02

    def test_stats(self, graph):
        from repro.core.pairwise import pair_ppr_bippr
        value = pair_ppr_bippr(graph, 0, 1, alpha=0.1, seed=3)
        assert value.stats["estimator"] == "bippr"
        assert value.stats["num_walks"] >= 1

    def test_validation(self, graph):
        from repro.core.pairwise import pair_ppr_bippr
        with pytest.raises(ConfigError):
            pair_ppr_bippr(graph, -1, 0)
