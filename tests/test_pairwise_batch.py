"""Tests for the pair-query and batch-solver extensions."""

import numpy as np
import pytest

from repro.core import (
    BatchMultiSeedSolver,
    BatchPairSolver,
    BatchSourceSolver,
    BatchTargetSolver,
    PPRConfig,
    l1_error,
    normalize_seed_set,
    pair_ppr,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.linalg import ExactSolver


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.08, rng=401)


class TestPairPPR:
    def test_close_to_exact(self, graph, exact_matrix):
        exact = exact_matrix(graph, 0.1)
        for source, target in ((0, 1), (5, 30), (7, 7)):
            value = pair_ppr(graph, source, target, alpha=0.1, seed=3)
            assert abs(float(value) - exact[source, target]) < 0.02

    def test_stats_attached(self, graph):
        value = pair_ppr(graph, 0, 1, alpha=0.1, seed=3)
        assert value.stats["num_forests"] >= 1
        assert value.stats["estimator"] == "improved"
        assert "push_seconds" in value.stats

    def test_directed_uses_basic(self, exact_matrix):
        from repro.graph import from_edges
        directed = from_edges([(0, 1), (1, 2), (2, 0), (1, 0)],
                              directed=True)
        exact = exact_matrix(directed, 0.3)
        value = pair_ppr(directed, 0, 2, alpha=0.3, seed=4,
                         num_forests=3000)
        assert value.stats["estimator"] == "basic"
        assert abs(float(value) - exact[0, 2]) < 0.03

    def test_node_validation(self, graph):
        with pytest.raises(ConfigError):
            pair_ppr(graph, -1, 0)
        with pytest.raises(ConfigError):
            pair_ppr(graph, 0, 10**6)

    def test_is_a_float(self, graph):
        value = pair_ppr(graph, 0, 1, alpha=0.2, seed=5)
        assert isinstance(value, float)
        assert 0.0 <= float(value) <= 1.0 + 1e-9


class TestBatchSourceSolver:
    def test_many_queries_share_forests(self, graph):
        solver = BatchSourceSolver(graph, alpha=0.1, seed=6,
                                   num_forests=40)
        assert solver.num_forests == 40
        exact = ExactSolver(graph, 0.1)
        for source in (0, 3, 17):
            result = solver.query(source)
            assert result.method == "batch-source"
            assert l1_error(result, exact.single_source(source)) < 0.25

    def test_deterministic_given_seed(self, graph):
        first = BatchSourceSolver(graph, alpha=0.1, seed=9).query(0)
        second = BatchSourceSolver(graph, alpha=0.1, seed=9).query(0)
        assert np.allclose(first.estimates, second.estimates)

    def test_query_validation(self, graph):
        solver = BatchSourceSolver(graph, alpha=0.1, seed=6, num_forests=5)
        with pytest.raises(ConfigError):
            solver.query(10**6)

    def test_config_object_accepted(self, graph):
        config = PPRConfig(alpha=0.2, seed=1)
        solver = BatchSourceSolver(graph, config=config, num_forests=5)
        assert solver.config.alpha == 0.2


class TestBatchTargetSolver:
    def test_target_queries(self, graph):
        solver = BatchTargetSolver(graph, alpha=0.1, seed=7, num_forests=40)
        exact = ExactSolver(graph, 0.1)
        target = int(np.argmax(graph.degrees))
        result = solver.query(target)
        assert result.method == "batch-target"
        truth = exact.single_target(target)
        assert l1_error(result, truth) < 0.1 * max(truth.sum(), 1.0)

    def test_kind(self, graph):
        solver = BatchTargetSolver(graph, alpha=0.1, seed=7, num_forests=5)
        assert solver.query(0).kind == "target"


class TestBatchPairSolver:
    def test_matches_target_column_entry(self, graph):
        """π(s, t) from the pair path == the s entry of the full
        single-target vector, bit for bit (shared r_max + shared
        forest bank make the two paths algebraically identical)."""
        index_kwargs = dict(alpha=0.1, epsilon=0.5, budget_scale=0.05,
                            seed=6, num_forests=24)
        with BatchTargetSolver(graph, **index_kwargs) as targets, \
                BatchPairSolver(graph, index=targets.index,
                                **index_kwargs) as pairs:
            for source, target in ((0, 1), (5, 30), (7, 7)):
                full = targets.query(target)
                value = pairs.query_pair(source, target)
                assert float(value) == full[source]

    def test_close_to_exact(self, graph, exact_matrix):
        exact = exact_matrix(graph, 0.1)
        with BatchPairSolver(graph, alpha=0.1, seed=3,
                             num_forests=600) as solver:
            for source, target in ((0, 1), (5, 30)):
                value = solver.query_pair(source, target)
                assert abs(float(value)
                           - exact[source, target]) < 0.02

    def test_run_items_matches_individual(self, graph):
        items = [(0, 1), (5, 30), (7, 7)]
        with BatchPairSolver(graph, alpha=0.1, seed=6,
                             num_forests=24) as solver:
            batched = solver.run_items(items)
            for (source, target), result in zip(items, batched):
                alone = solver.query_pair(source, target)
                assert float(result) == float(alone)
                assert (result.source, result.target) == (source, target)

    def test_result_shape_and_stats(self, graph):
        with BatchPairSolver(graph, alpha=0.1, seed=6,
                             num_forests=24) as solver:
            result = solver.query_pair(3, 8)
        assert result.method == "batch-pair"
        assert result.stats["estimator"] == "improved"
        assert result.work.pushes >= 1
        assert 0.0 <= float(result) <= 1.0 + 1e-9

    def test_validation(self, graph):
        with BatchPairSolver(graph, alpha=0.1, seed=6,
                             num_forests=5) as solver:
            with pytest.raises(ConfigError):
                solver.query_pair(-1, 0)
            with pytest.raises(ConfigError):
                solver.query_pair(0, 10**6)


class TestBatchMultiSeedSolver:
    def test_bit_identical_to_weighted_sum(self, graph):
        """The tentpole invariant: a multi-seed answer IS the weighted
        sum of the single-seed rows, bit for bit."""
        seeds, weights = [0, 5, 17], [0.2, 0.3, 0.5]
        with BatchMultiSeedSolver(graph, alpha=0.1, seed=6,
                                  num_forests=24) as solver:
            combined = solver.query_multiseed(seeds, weights)
            rows = solver.query_many(seeds)
        manual = np.zeros(graph.num_nodes)
        for weight, row in zip(weights, rows):
            manual += weight * row.estimates
        assert np.array_equal(combined.estimates, manual)

    def test_uniform_default_and_normalization(self, graph):
        with BatchMultiSeedSolver(graph, alpha=0.1, seed=6,
                                  num_forests=24) as solver:
            uniform = solver.query_multiseed([2, 9])
            scaled = solver.query_multiseed([2, 9], [10.0, 10.0])
        assert list(uniform.stats["weights"]) == [0.5, 0.5]
        assert np.array_equal(uniform.estimates, scaled.estimates)

    def test_single_seed_equals_plain_query(self, graph):
        with BatchMultiSeedSolver(graph, alpha=0.1, seed=6,
                                  num_forests=24) as solver:
            multi = solver.query_multiseed([7])
            plain = solver.query(7)
        assert np.array_equal(multi.estimates, plain.estimates)

    def test_run_items_matches_individual(self, graph):
        items = [((0, 5), (0.5, 0.5)), ((3,), (1.0,))]
        with BatchMultiSeedSolver(graph, alpha=0.1, seed=6,
                                  num_forests=24) as solver:
            batched = solver.run_items(items)
            for (seeds, weights), result in zip(items, batched):
                alone = solver.query_multiseed(list(seeds), list(weights))
                assert np.array_equal(result.estimates, alone.estimates)

    def test_normalize_seed_set(self, graph):
        seeds, weights = normalize_seed_set([4, 1], None, 120)
        assert seeds == (4, 1)
        assert weights == (0.5, 0.5)
        seeds, weights = normalize_seed_set([0, 1], [1.0, 3.0], 120)
        assert weights == (0.25, 0.75)
        with pytest.raises(ConfigError):
            normalize_seed_set([], None, 120)
        with pytest.raises(ConfigError):
            normalize_seed_set([0, 200], None, 120)
        with pytest.raises(ConfigError):
            normalize_seed_set([0, 1], [1.0], 120)
        with pytest.raises(ConfigError):
            normalize_seed_set([0, 1], [0.0, 0.0], 120)
        with pytest.raises(ConfigError):
            normalize_seed_set([0, 1], [-1.0, 2.0], 120)


class TestPairBiPPR:
    def test_close_to_exact(self, graph, exact_matrix):
        from repro.core.pairwise import pair_ppr_bippr
        exact = exact_matrix(graph, 0.1)
        for source, target in ((0, 1), (5, 30)):
            value = pair_ppr_bippr(graph, source, target, alpha=0.1, seed=3)
            assert abs(float(value) - exact[source, target]) < 0.02

    def test_stats(self, graph):
        from repro.core.pairwise import pair_ppr_bippr
        value = pair_ppr_bippr(graph, 0, 1, alpha=0.1, seed=3)
        assert value.stats["estimator"] == "bippr"
        assert value.stats["num_walks"] >= 1

    def test_validation(self, graph):
        from repro.core.pairwise import pair_ppr_bippr
        with pytest.raises(ConfigError):
            pair_ppr_bippr(graph, -1, 0)
