"""Shared fixtures: small graphs with known structure, plus memoized
exact-PPR oracles (the ground truth several suites compare against)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    from_edges,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_ppr_matrix


@pytest.fixture
def k5():
    """Complete graph on 5 nodes."""
    return complete_graph(5)


@pytest.fixture
def path4():
    """Path 0-1-2-3."""
    return path_graph(4)


@pytest.fixture
def cycle6():
    """6-cycle."""
    return cycle_graph(6)


@pytest.fixture
def star4():
    """Star: hub 0, leaves 1..4."""
    return star_graph(4)


@pytest.fixture
def grid3x3():
    """3x3 grid."""
    return grid_graph(3, 3)


@pytest.fixture
def weighted_triangle():
    """Triangle with weights 1, 2, 3."""
    return from_edges([(0, 1), (1, 2), (0, 2)], weights=[1.0, 2.0, 3.0])


@pytest.fixture
def weighted_small():
    """Small weighted graph with asymmetric degrees (5 nodes)."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 4)]
    weights = [2.0, 1.0, 4.0, 1.5, 3.0, 0.5]
    return from_edges(edges, weights=weights)


@pytest.fixture
def disconnected():
    """Two components: a triangle and an edge, plus an isolated node."""
    return from_edges([(0, 1), (1, 2), (0, 2), (3, 4)], num_nodes=6)


@pytest.fixture
def directed_line():
    """Directed path 0 -> 1 -> 2 (node 2 is dangling)."""
    return from_edges([(0, 1), (1, 2)], directed=True)


@pytest.fixture
def random_graph():
    """Seeded connected-ish ER graph, 30 nodes."""
    return erdos_renyi(30, 0.15, rng=12345)


@pytest.fixture
def random_weighted_graph():
    """Seeded weighted ER graph, 25 nodes."""
    graph = erdos_renyi(25, 0.2, rng=999)
    return with_random_weights(graph, low=1.0, high=5.0, rng=7)


@pytest.fixture
def rng():
    """Seeded generator for deterministic statistical tests."""
    return np.random.default_rng(2022)


@pytest.fixture(scope="session")
def exact_matrix():
    """Memoized exact-PPR oracle: ``oracle(graph, alpha)`` returns the
    dense π matrix (rows = sources), computed once per (graph, α)."""
    cache: dict[tuple[int, float], np.ndarray] = {}

    def oracle(graph, alpha: float) -> np.ndarray:
        key = (id(graph), float(alpha))
        if key not in cache:
            cache[key] = exact_ppr_matrix(graph, alpha)
        return cache[key]

    return oracle


@pytest.fixture(scope="session")
def exact_vector(exact_matrix):
    """Memoized exact single-source oracle: ``oracle(graph, alpha,
    source)`` is the π_source row of the exact matrix."""

    def oracle(graph, alpha: float, source: int) -> np.ndarray:
        return exact_matrix(graph, alpha)[source]

    return oracle
