"""Variance-reduced forest sampling: the variance_mode contract.

Pins down the three claims behind the mode knob:

- **measured reduction.** The empirical-variance harness
  (:func:`repro.forests.statistics.empirical_variance_ratio`) shows
  stratified banks at least halving the bank-mean variance of i.i.d.
  improved banks at equal forest count — the ≥1.5× gain that
  ``VARIANCE_GAIN`` encodes and ``recommended_size`` discounts by.
- **unbiasedness.** Coupling/regressing changes variance only: every
  mode's estimates still converge to the exact PPR vector.
- **plumbing.** The mode flows from ``PPRConfig`` / solver kwargs down
  to the samplers and estimators, is recorded on indexes and in stats,
  and the new work counters (``strata``, ``cv_fits``) are credited.
"""

import numpy as np
import pytest

from repro.core.api import single_source
from repro.core.config import VARIANCE_GAIN, VARIANCE_MODES, PPRConfig
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import (accumulate_cv_estimates,
                                      cv_combine)
from repro.forests.statistics import empirical_variance_ratio
from repro.graph import from_edges
from repro.graph.generators import chung_lu
from repro.linalg.exact import ExactSolver
from repro.montecarlo.forest_index import ForestIndex

ALPHA = 0.25


@pytest.fixture(scope="module")
def graph():
    degrees = 2.0 + 8.0 * (np.arange(400) % 23) / 22.0
    return chung_lu(degrees, rng=7)


@pytest.fixture(scope="module")
def directed_graph():
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]
    return from_edges(edges, directed=True, num_nodes=4)


class TestEmpiricalVarianceHarness:
    """The acceptance measurement behind VARIANCE_GAIN."""

    def test_stratified_halves_the_improved_variance(self, graph):
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        ratio = empirical_variance_ratio(
            graph, ALPHA, residual, num_forests=16, repetitions=60,
            mode="stratified", baseline_mode="improved", rng=7)
        assert ratio >= 1.5

    def test_control_variate_beats_basic_on_spread_residuals(self, graph):
        # the degree-mass variate correlates with the basic estimate
        # when residual mass covers many trees; the gain is largest
        # exactly where the basic estimator is noisiest
        residual = np.full(graph.num_nodes, 1.0 / graph.num_nodes)
        ratio = empirical_variance_ratio(
            graph, ALPHA, residual, num_forests=16, repetitions=60,
            mode="control_variate", baseline_mode="basic", rng=7)
        assert ratio >= 10.0

    def test_gain_constants_are_conservative(self):
        # the table promises no more than what the harness measures
        assert VARIANCE_GAIN["improved"] == 1.0
        assert VARIANCE_GAIN["control_variate"] == 1.0
        assert 1.0 < VARIANCE_GAIN["stratified"] <= 1.5

    def test_harness_validation(self, graph):
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        with pytest.raises(ConfigError, match="repetitions"):
            empirical_variance_ratio(graph, ALPHA, residual,
                                     repetitions=1)
        with pytest.raises(ConfigError, match="unknown variance mode"):
            empirical_variance_ratio(graph, ALPHA, residual,
                                     mode="antithetic")


class TestUnbiasedness:
    def test_stratified_bank_mean_matches_exact(self, graph):
        exact = ExactSolver(graph, ALPHA).single_source(0)
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        index = ForestIndex.build(graph, ALPHA, 64, rng=5,
                                  variance_mode="stratified")
        estimate = index.estimate_source(residual)
        assert estimate.sum() == pytest.approx(1.0)
        # a pure forest fold (no push stage) at F=64 is a loose
        # estimate; this is a bias sanity check, the variance claims
        # live in TestEmpiricalVarianceHarness
        assert np.abs(estimate - exact).sum() < 0.6

    def test_control_variate_estimate_matches_exact(self, graph):
        # uniform residual: the regime the degree-mass variate is
        # built for — the CV fold should land close to the exact
        # row-averaged PPR even from a small bank
        residual = np.full(graph.num_nodes, 1.0 / graph.num_nodes)
        solver = ExactSolver(graph, ALPHA)
        exact = solver.resolvent_solve(ALPHA * residual, transpose=True)
        index = ForestIndex.build(graph, ALPHA, 64, rng=5)
        estimate = index.estimate_source(
            residual, variance_mode="control_variate")
        assert estimate.sum() == pytest.approx(1.0)
        assert np.abs(estimate - exact).sum() < 0.05
        # and it beats the basic mean it rides on
        basic = index.estimate_source(residual, improved=False)
        assert (np.abs(estimate - exact).sum()
                < np.abs(basic - exact).sum())


class TestBuildModes:
    def test_stratified_build_records_mode_and_strata(self, graph):
        index = ForestIndex.build(graph, ALPHA, 8, rng=3,
                                  variance_mode="stratified")
        assert index.variance_mode == "stratified"
        assert index.build_counters.strata > 0
        # the mode rides into the serialized bank meta
        _, meta = index.bank_arrays()
        assert meta["variance_mode"] == "stratified"

    def test_default_build_mode_is_improved(self, graph):
        index = ForestIndex.build(graph, ALPHA, 2, rng=3)
        assert index.variance_mode == "improved"
        assert index.build_counters.strata == 0

    def test_unknown_mode_rejected(self, graph):
        with pytest.raises(ConfigError, match="variance_mode"):
            ForestIndex.build(graph, ALPHA, 2, rng=3,
                              variance_mode="antithetic")

    def test_control_variate_build_rejected_on_directed(
            self, directed_graph):
        with pytest.raises(ConfigError, match="undirected"):
            ForestIndex.build(directed_graph, ALPHA, 2, rng=3,
                              variance_mode="control_variate")

    def test_cv_estimate_rejected_on_directed(self, directed_graph):
        index = ForestIndex.build(directed_graph, ALPHA, 2, rng=3)
        with pytest.raises(ConfigError, match="undirected"):
            index.estimate_source(np.ones(4) / 4,
                                  variance_mode="control_variate")

    def test_cv_estimate_needs_stored_forests(self, graph, tmp_path):
        index = ForestIndex.build(graph, ALPHA, 2, rng=3)
        index.save_bank(tmp_path / "bank")
        attached = ForestIndex.load_bank(tmp_path / "bank", graph)
        with pytest.raises(ConfigError, match="stored forests"):
            attached.estimate_source(np.ones(graph.num_nodes),
                                     variance_mode="control_variate")

    def test_cv_fits_counter_credited(self, graph):
        index = ForestIndex.build(graph, ALPHA, 4, rng=3)
        residual = np.zeros(graph.num_nodes)
        residual[0] = 1.0
        counters = WorkCounters()
        acc = accumulate_cv_estimates(index.forests, residual,
                                      graph.degrees, kind="source",
                                      counters=counters)
        _, beta = cv_combine(acc, graph.degrees, counters=counters)
        assert counters.cv_fits == 1
        assert np.isfinite(beta)


class TestRecommendedSize:
    def test_stratified_discount_shrinks_the_bank(self, graph):
        improved = ForestIndex.recommended_size(graph, 0.25)
        stratified = ForestIndex.recommended_size(
            graph, 0.25, variance_mode="stratified")
        assert stratified < improved
        gain = VARIANCE_GAIN["stratified"]
        base = ForestIndex.recommended_size(graph)
        assert stratified == max(base,
                                 int(np.ceil(base / (0.25 * gain))))

    def test_log_floor_is_never_discounted(self, graph):
        base = ForestIndex.recommended_size(graph)
        assert ForestIndex.recommended_size(
            graph, 1e9, variance_mode="stratified") == base

    def test_validation(self, graph):
        with pytest.raises(ConfigError, match="variance_mode"):
            ForestIndex.recommended_size(graph, 0.25,
                                         variance_mode="antithetic")
        with pytest.raises(ConfigError, match="epsilon"):
            ForestIndex.recommended_size(graph, -0.5)


class TestConfigPlumbing:
    def test_modes_table_is_closed(self):
        assert VARIANCE_MODES == ("improved", "control_variate",
                                  "stratified")
        assert set(VARIANCE_GAIN) == set(VARIANCE_MODES)

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigError, match="variance_mode"):
            PPRConfig(variance_mode="antithetic")

    def test_solver_override_reaches_the_stats(self, graph):
        result = single_source(graph, 0, method="speedlv", alpha=ALPHA,
                               epsilon=0.5, seed=9,
                               variance_mode="stratified")
        assert result.stats["variance_mode"] == "stratified"
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-6)

    def test_cv_solver_fits_a_coefficient(self, graph):
        result = single_source(graph, 0, method="speedlv", alpha=ALPHA,
                               epsilon=0.5, seed=9,
                               variance_mode="control_variate")
        assert result.stats["variance_mode"] == "control_variate"
        assert "cv_beta" in result.stats
        assert result.stats["work_cv_fits"] >= 1

    def test_stratified_and_improved_agree_statistically(self, graph):
        # same seed, different coupling: answers differ but both are
        # valid distributions over the same support
        improved = single_source(graph, 0, method="speedlv", alpha=ALPHA,
                                 epsilon=0.5, seed=9)
        stratified = single_source(graph, 0, method="speedlv",
                                   alpha=ALPHA, epsilon=0.5, seed=9,
                                   variance_mode="stratified")
        assert np.abs(improved.estimates
                      - stratified.estimates).sum() < 0.5


class TestDynamicGuard:
    def test_dynamic_build_rejects_coupled_modes(self, graph):
        from repro.montecarlo.dynamic_index import DynamicForestIndex

        with pytest.raises(ConfigError, match="variance_mode"):
            DynamicForestIndex.build(graph, ALPHA, 2, rng=3,
                                     variance_mode="stratified")
