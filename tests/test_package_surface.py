"""Package-surface hygiene: exports resolve, modules are documented."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = ["repro.graph", "repro.linalg", "repro.forests", "repro.push",
               "repro.montecarlo", "repro.core", "repro.applications",
               "repro.bench", "repro.parallel", "repro.service"]


def _walk_modules():
    modules = [importlib.import_module("repro")]
    for name in SUBPACKAGES:
        package = importlib.import_module(name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=name + "."):
            modules.append(importlib.import_module(info.name))
    return modules


class TestExports:
    @pytest.mark.parametrize("module_name",
                             ["repro"] + SUBPACKAGES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists missing name {name!r}")

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestDocumentation:
    def test_every_module_has_docstring(self):
        for module in _walk_modules():
            assert module.__doc__ and module.__doc__.strip(), (
                f"{module.__name__} lacks a module docstring")

    def test_every_public_callable_has_docstring(self):
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if callable(obj):
                    assert obj.__doc__ and obj.__doc__.strip(), (
                        f"{module.__name__}.{name} lacks a docstring")

    def test_public_classes_document_their_methods(self):
        import inspect
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj):
                    continue
                for method_name, method in inspect.getmembers(
                        obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert method.__doc__ and method.__doc__.strip(), (
                        f"{module.__name__}.{name}.{method_name} "
                        f"lacks a docstring")
