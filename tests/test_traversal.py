"""BFS traversal utility tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.traversal import (
    average_distance_to,
    bfs_distances,
    eccentricity,
    k_hop_neighborhood,
)


class TestBfsDistances:
    def test_path_distances(self):
        graph = path_graph(5)
        assert bfs_distances(graph, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_distances(graph, 2).tolist() == [2, 1, 0, 1, 2]

    def test_cycle_distances(self):
        graph = cycle_graph(6)
        assert bfs_distances(graph, 0).tolist() == [0, 1, 2, 3, 2, 1]

    def test_grid_manhattan(self):
        graph = grid_graph(3, 3)
        distances = bfs_distances(graph, 0)
        # corner-to-corner in a 3x3 grid is 4 hops
        assert distances[8] == 4

    def test_unreachable_marked(self, disconnected):
        distances = bfs_distances(disconnected, 0)
        assert distances[3] == -1
        assert distances[5] == -1
        assert distances[1] >= 0

    def test_directed_follows_arcs(self, directed_line):
        assert bfs_distances(directed_line, 0).tolist() == [0, 1, 2]
        assert bfs_distances(directed_line, 2).tolist() == [-1, -1, 0]

    def test_max_depth_truncates(self):
        graph = path_graph(6)
        distances = bfs_distances(graph, 0, max_depth=2)
        assert distances[2] == 2
        assert distances[3] == -1

    def test_matches_scipy(self, random_graph):
        import scipy.sparse.csgraph as csgraph
        want = csgraph.shortest_path(random_graph.to_scipy_adjacency(),
                                     unweighted=True, indices=0)
        got = bfs_distances(random_graph, 0).astype(float)
        got[got < 0] = np.inf
        assert np.allclose(got, want)

    def test_validation(self, k5):
        with pytest.raises(ConfigError):
            bfs_distances(k5, 9)


class TestDerivedQueries:
    def test_k_hop(self):
        graph = path_graph(7)
        assert k_hop_neighborhood(graph, 3, 1).tolist() == [2, 3, 4]
        assert k_hop_neighborhood(graph, 3, 0).tolist() == [3]
        with pytest.raises(ConfigError):
            k_hop_neighborhood(graph, 3, -1)

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2
        assert eccentricity(cycle_graph(8), 0) == 4

    def test_average_distance(self):
        graph = path_graph(5)
        assert average_distance_to(graph, 0,
                                   np.array([1, 3])) == pytest.approx(2.0)

    def test_average_distance_unreachable(self, disconnected):
        assert average_distance_to(disconnected, 0,
                                   np.array([5])) == float("inf")
        with pytest.raises(ConfigError):
            average_distance_to(disconnected, 0, np.array([], dtype=int))

    def test_cluster_locality_use_case(self):
        """The intended consumer: PPR clusters are BFS-local."""
        from repro.applications import local_cluster
        from repro.graph.generators import stochastic_block_model
        graph = stochastic_block_model([60, 60],
                                       [[0.3, 0.01], [0.01, 0.3]], rng=9)
        cluster = local_cluster(graph, 5, alpha=0.05, seed=2)
        assert average_distance_to(graph, 5, cluster.members) < 3.0
