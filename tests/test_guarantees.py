r"""End-to-end verification of the paper's accuracy guarantees.

These run the two-stage algorithms at the *full* Chernoff budget
(``budget_scale=1``) on small graphs and check the actual guarantee
statements over repeated seeded runs:

- **Theorem 5.3** (FORALV): for every ``t`` with ``π(s,t) > μ``,
  ``|π̂(s,t) − π(s,t)| ≤ ε·d_t·π(s,t)`` w.p. ``≥ 1 − p_f``;
- **Theorem 6.1** (BACKLV): for every ``v`` with ``π(v,t) > μ``,
  ``|π̂(v,t) − π(v,t)| ≤ ε·π(v,t)`` w.p. ``≥ 1 − p_f``;
- the classic additive guarantee of backward push;
- FORA's relative guarantee, for cross-validation of the harness.

Each trial checks *all* qualifying nodes of one query; the failure
budget across trials is sized from ``p_f`` with slack (the bounds are
conservative, so observed failures should be far rarer than allowed).
"""

import numpy as np
import pytest

from repro.core import PPRConfig
from repro.core.single_source import fora, foralv
from repro.core.single_target import backlv
from repro.graph.generators import erdos_renyi
from repro.linalg import ExactSolver

ALPHA = 0.15
EPSILON = 0.5
TRIALS = 12


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(50, 0.15, rng=1001)


@pytest.fixture(scope="module")
def solver(graph):
    return ExactSolver(graph, ALPHA)


def _full_budget_config(seed: int) -> PPRConfig:
    return PPRConfig(alpha=ALPHA, epsilon=EPSILON, budget_scale=1.0,
                     seed=seed)


class TestTheorem53:
    def test_foralv_relative_guarantee(self, graph, solver):
        """|π̂ − π| ≤ ε·d_t·π for all π > μ, w.p. ≥ 1 − p_f per node."""
        mu = 1.0 / graph.num_nodes
        degrees = graph.degrees
        source = 0
        exact = solver.single_source(source)
        qualifying = np.flatnonzero(exact > mu)
        assert qualifying.size > 0
        violations = 0
        checks = 0
        for seed in range(TRIALS):
            result = foralv(graph, source, _full_budget_config(seed))
            errors = np.abs(result.estimates[qualifying]
                            - exact[qualifying])
            bound = EPSILON * degrees[qualifying] * exact[qualifying]
            violations += int(np.sum(errors > bound))
            checks += qualifying.size
        # p_f = 1/n per node; allow generous slack over the expectation
        allowed = max(5, int(0.05 * checks))
        assert violations <= allowed, (
            f"{violations}/{checks} guarantee violations")

    def test_tighter_epsilon_tighter_errors(self, graph, solver):
        exact = solver.single_source(3)
        errors = {}
        for epsilon in (1.0, 0.25):
            config = PPRConfig(alpha=ALPHA, epsilon=epsilon,
                               budget_scale=1.0, seed=7)
            result = foralv(graph, 3, config)
            errors[epsilon] = float(np.abs(result.estimates - exact).sum())
        assert errors[0.25] <= errors[1.0] * 1.5  # stochastic slack


class TestTheorem61:
    def test_backlv_relative_guarantee(self, graph, solver):
        """|π̂(v,t) − π(v,t)| ≤ ε·π(v,t) for all π > μ."""
        mu = 1.0 / graph.num_nodes
        target = int(np.argmax(graph.degrees))
        exact = solver.single_target(target)
        qualifying = np.flatnonzero(exact > mu)
        assert qualifying.size > 0
        violations = 0
        checks = 0
        for seed in range(TRIALS):
            result = backlv(graph, target, _full_budget_config(seed))
            errors = np.abs(result.estimates[qualifying]
                            - exact[qualifying])
            bound = EPSILON * exact[qualifying]
            violations += int(np.sum(errors > bound))
            checks += qualifying.size
        allowed = max(5, int(0.05 * checks))
        assert violations <= allowed, (
            f"{violations}/{checks} guarantee violations")


class TestBaselineGuarantees:
    def test_fora_relative_guarantee(self, graph, solver):
        mu = 1.0 / graph.num_nodes
        exact = solver.single_source(2)
        qualifying = np.flatnonzero(exact > mu)
        violations = 0
        checks = 0
        for seed in range(TRIALS):
            result = fora(graph, 2, _full_budget_config(seed))
            errors = np.abs(result.estimates[qualifying]
                            - exact[qualifying])
            bound = EPSILON * exact[qualifying]
            violations += int(np.sum(errors > bound))
            checks += qualifying.size
        allowed = max(5, int(0.05 * checks))
        assert violations <= allowed

    def test_back_additive_guarantee_always(self, graph, solver):
        """BACK's additive bound is deterministic — zero tolerance."""
        from repro.core.single_target import back
        target = 4
        exact = solver.single_target(target)
        config = PPRConfig(alpha=ALPHA, epsilon=EPSILON, budget_scale=1.0,
                           seed=0)
        result = back(graph, target, config)
        r_max = result.stats["r_max"]
        gaps = exact - result.estimates
        assert np.all(gaps >= -1e-10)
        assert np.all(gaps <= r_max + 1e-10)
