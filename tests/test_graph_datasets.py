"""Tests for the Table-1 stand-in dataset registry."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.datasets import (
    UNWEIGHTED_DATASETS,
    WEIGHTED_DATASETS,
    available_datasets,
    clear_dataset_cache,
    load_dataset,
    table1_statistics,
)
from repro.graph.validation import check_graph_invariants


class TestRegistry:
    def test_seven_datasets(self):
        specs = available_datasets()
        assert len(specs) == 7
        assert [s.name for s in specs] == list(
            UNWEIGHTED_DATASETS + WEIGHTED_DATASETS)

    def test_paper_statistics_recorded(self):
        youtube = next(s for s in available_datasets() if s.name == "youtube")
        assert youtube.paper_nodes == 1_134_890
        assert youtube.paper_avg_degree == pytest.approx(5.27)

    def test_weighted_flags(self):
        for spec in available_datasets():
            assert spec.weighted == (spec.name in WEIGHTED_DATASETS)


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(GraphError):
            load_dataset("facebook")

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            load_dataset("youtube", scale=0.0)

    def test_case_insensitive(self):
        assert load_dataset("Youtube", scale=0.05) is load_dataset(
            "youtube", scale=0.05)

    def test_caching_identity(self):
        first = load_dataset("youtube", scale=0.05)
        second = load_dataset("youtube", scale=0.05)
        assert first is second

    def test_clear_cache(self):
        first = load_dataset("youtube", scale=0.05)
        clear_dataset_cache()
        second = load_dataset("youtube", scale=0.05)
        assert first is not second
        assert first == second  # deterministic regeneration

    def test_scale_changes_size(self):
        small = load_dataset("pokec", scale=0.05)
        larger = load_dataset("pokec", scale=0.1)
        assert larger.num_nodes > small.num_nodes

    def test_connected_by_default(self):
        for name in ("youtube", "dblp"):
            assert load_dataset(name, scale=0.05).is_connected

    def test_weighted_datasets_have_weights(self):
        graph = load_dataset("dblp", scale=0.05)
        assert graph.is_weighted
        assert np.all(graph.weights >= 1.0)

    def test_unweighted_datasets_have_none(self):
        assert load_dataset("orkut", scale=0.05).weights is None

    def test_average_degree_in_ballpark(self):
        # stand-ins should land within a factor ~2 of the target d-bar
        for name in ("pokec", "livejournal"):
            spec = next(s for s in available_datasets() if s.name == name)
            graph = load_dataset(name, scale=0.2)
            assert spec.avg_degree / 2 < graph.average_degree < spec.avg_degree * 2

    def test_heavy_tail_present(self):
        graph = load_dataset("youtube", scale=0.2)
        assert graph.degrees.max() > 8 * graph.degrees.mean()

    def test_invariants(self):
        check_graph_invariants(load_dataset("stackoverflow", scale=0.05))


class TestTable1:
    def test_rows_cover_all_datasets(self):
        rows = table1_statistics(scale=0.05)
        assert [row["dataset"] for row in rows] == list(
            UNWEIGHTED_DATASETS + WEIGHTED_DATASETS)
        for row in rows:
            assert row["n"] > 0 and row["m"] > 0
            assert row["paper_n"] > row["n"]  # stand-ins are scaled down
