"""Cross-backend push equivalence: scalar vs vectorized sweep kernels.

Both backends run the same synchronous frontier sweeps and differ only
in how one sweep's residual mass is scattered, so every output —
reserve, residual, ``num_pushes``, ``num_sweeps``, ``frontier_sizes``
— must agree (values to ≤1e-12; counters exactly) across alphas,
weighted/directed graphs, and end-to-end queries.
"""

import numpy as np
import pytest

from repro.core import PPRConfig, single_source, single_target
from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.push import (
    DEFAULT_PUSH_BACKEND,
    PUSH_BACKENDS,
    backward_push,
    balanced_forward_push,
    forward_push,
    power_push,
)
from repro.push.kernels import validate_push_backend

ALPHAS = [0.1, 0.2, 0.5]
TOLERANCE = 1e-12


def _graphs():
    plain = erdos_renyi(40, 0.12, rng=2022)
    weighted = with_random_weights(erdos_renyi(35, 0.15, rng=7),
                                   low=0.5, high=4.0, rng=11)
    rng = np.random.default_rng(5)
    pairs = rng.integers(0, 30, size=(160, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    pairs = pairs[pairs[:, 0] != 29]  # node 29 is a pure sink (dangling)
    directed = from_edges(pairs, directed=True, num_nodes=30)
    return [("unweighted", plain), ("weighted", weighted),
            ("directed", directed)]


GRAPHS = _graphs()


def _assert_equivalent(vectorized, scalar):
    assert np.abs(vectorized.reserve - scalar.reserve).max() <= TOLERANCE
    assert np.abs(vectorized.residual - scalar.residual).max() <= TOLERANCE
    assert vectorized.num_pushes == scalar.num_pushes
    assert vectorized.num_sweeps == scalar.num_sweeps
    assert vectorized.frontier_sizes == scalar.frontier_sizes
    assert vectorized.work == scalar.work


class TestKernelEquivalence:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_forward(self, label, graph, alpha):
        for seed_node in (0, 3):
            _assert_equivalent(
                forward_push(graph, seed_node, alpha, 1e-4,
                             backend="vectorized"),
                forward_push(graph, seed_node, alpha, 1e-4,
                             backend="scalar"))

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_balanced_forward(self, label, graph, alpha):
        _assert_equivalent(
            balanced_forward_push(graph, 1, alpha, 1e-4,
                                  backend="vectorized"),
            balanced_forward_push(graph, 1, alpha, 1e-4,
                                  backend="scalar"))

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_backward(self, label, graph, alpha):
        _assert_equivalent(
            backward_push(graph, 2, alpha, 1e-4, backend="vectorized"),
            backward_push(graph, 2, alpha, 1e-4, backend="scalar"))

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_power_push(self, alpha):
        graph = GRAPHS[0][1]
        _assert_equivalent(
            power_push(graph, 0, alpha, 1e-3, backend="vectorized"),
            power_push(graph, 0, alpha, 1e-3, backend="scalar"))

    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_sweep_accounting(self, label, graph):
        push = balanced_forward_push(graph, 0, 0.2, 1e-4,
                                     backend="vectorized")
        assert sum(push.frontier_sizes) == push.num_pushes
        assert len(push.frontier_sizes) == push.num_sweeps
        assert push.peak_frontier == max(push.frontier_sizes)

    def test_dangling_nodes(self, directed_line):
        # node 2 has out-degree 0: its residual must be absorbed, not
        # pushed, identically in both backends
        for alpha in ALPHAS:
            _assert_equivalent(
                forward_push(directed_line, 0, alpha, 1e-6,
                             backend="vectorized"),
                forward_push(directed_line, 0, alpha, 1e-6,
                             backend="scalar"))


class TestEndToEnd:
    """Whole-query equality: the Monte-Carlo stage consumes the same
    residual, so fixed-seed estimates must be bit-comparable."""

    def test_foralv_scalar_matches_vectorized(self):
        graph = GRAPHS[0][1]
        results = {
            backend: single_source(graph, 0, method="foralv", alpha=0.2,
                                   seed=99, push_backend=backend)
            for backend in PUSH_BACKENDS}
        vec, sca = results["vectorized"], results["scalar"]
        assert np.abs(vec.estimates - sca.estimates).max() <= TOLERANCE
        assert vec.stats["work_pushes"] == sca.stats["work_pushes"]
        assert vec.stats["work_push_sweeps"] == sca.stats["work_push_sweeps"]

    def test_backlv_scalar_matches_vectorized(self):
        graph = GRAPHS[0][1]
        results = {
            backend: single_target(graph, 1, method="backlv", alpha=0.2,
                                   seed=99, push_backend=backend)
            for backend in PUSH_BACKENDS}
        vec, sca = results["vectorized"], results["scalar"]
        assert np.abs(vec.estimates - sca.estimates).max() <= TOLERANCE
        assert vec.stats["work_pushes"] == sca.stats["work_pushes"]

    def test_work_counters_in_stats(self):
        graph = GRAPHS[0][1]
        result = single_source(graph, 0, method="foralv", alpha=0.2,
                               seed=1)
        assert result.stats["work_pushes"] == result.stats["num_pushes"]
        assert result.stats["work_push_sweeps"] > 0


class TestValidation:
    def test_backends_registry(self):
        assert DEFAULT_PUSH_BACKEND in PUSH_BACKENDS
        for backend in PUSH_BACKENDS:
            validate_push_backend(backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            validate_push_backend("simd")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            PPRConfig(push_backend="gpu")

    def test_push_functions_reject_unknown_backend(self, k5):
        with pytest.raises(ConfigError):
            forward_push(k5, 0, 0.2, 1e-3, backend="nope")
        with pytest.raises(ConfigError):
            backward_push(k5, 0, 0.2, 1e-3, backend="nope")
        with pytest.raises(ConfigError):
            power_push(k5, 0, 0.2, 1e-2, backend="nope")
