"""Forward-push tests: the Eq. 6 invariant, thresholds, balanced variant."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import exact_ppr_matrix
from repro.push import balanced_forward_push, forward_push
from repro.graph.generators import erdos_renyi, with_random_weights


def _check_invariant(graph, source, alpha, result, atol=1e-10):
    """pi(s, .) = q + sum_u r(u) pi(u, .) must hold exactly (Eq. 6)."""
    exact = exact_ppr_matrix(graph, alpha)
    reconstructed = result.reserve + result.residual @ exact
    assert np.allclose(reconstructed, exact[source], atol=atol)


class TestInvariant:
    @pytest.mark.parametrize("alpha", [0.05, 0.2, 0.5])
    @pytest.mark.parametrize("r_max", [0.5, 0.05, 0.005])
    def test_classic_eq6(self, random_graph, alpha, r_max):
        result = forward_push(random_graph, 0, alpha, r_max)
        _check_invariant(random_graph, 0, alpha, result)

    @pytest.mark.parametrize("r_max", [0.5, 0.05, 0.005])
    def test_balanced_eq6(self, random_graph, r_max):
        result = balanced_forward_push(random_graph, 3, 0.1, r_max)
        _check_invariant(random_graph, 3, 0.1, result)

    def test_weighted_eq6(self, random_weighted_graph):
        result = forward_push(random_weighted_graph, 2, 0.15, 0.01)
        _check_invariant(random_weighted_graph, 2, 0.15, result)

    def test_weighted_balanced_eq6(self, random_weighted_graph):
        result = balanced_forward_push(random_weighted_graph, 2, 0.15, 0.01)
        _check_invariant(random_weighted_graph, 2, 0.15, result)

    def test_dangling_absorbs(self, disconnected):
        result = forward_push(disconnected, 5, 0.2, 0.001)
        assert result.reserve[5] == pytest.approx(1.0)
        assert result.residual_mass == pytest.approx(0.0)

    def test_directed_eq6(self, directed_line):
        result = forward_push(directed_line, 0, 0.3, 0.001)
        _check_invariant(directed_line, 0, 0.3, result)


class TestThresholds:
    def test_classic_post_condition(self, random_graph):
        r_max = 0.01
        result = forward_push(random_graph, 0, 0.1, r_max)
        assert np.all(result.residual
                      <= random_graph.degrees * r_max + 1e-12)

    def test_balanced_post_condition(self, random_graph):
        r_max = 0.01
        result = balanced_forward_push(random_graph, 0, 0.1, r_max)
        assert np.all(result.residual <= r_max + 1e-12)

    def test_balanced_bounds_high_degree_residual(self):
        """The point of the balanced variant (§5.2): a hub's residual
        cannot hide behind its degree-scaled threshold."""
        graph = erdos_renyi(60, 0.3, rng=5)
        r_max = 0.02
        hub = int(np.argmax(graph.degrees))
        classic = forward_push(graph, hub, 0.1, r_max)
        balanced = balanced_forward_push(graph, hub, 0.1, r_max)
        assert balanced.residual.max() <= r_max + 1e-12
        # classic may (and on a hub typically does) exceed r_max somewhere
        assert classic.residual.max() <= graph.degrees.max() * r_max + 1e-12

    def test_reserve_monotone_in_r_max(self, random_graph):
        alpha = 0.1
        coarse = forward_push(random_graph, 0, alpha, 0.1)
        fine = forward_push(random_graph, 0, alpha, 0.001)
        assert fine.reserve.sum() >= coarse.reserve.sum() - 1e-12

    def test_reserve_underestimates_ppr(self, random_graph):
        alpha = 0.1
        exact = exact_ppr_matrix(random_graph, alpha)[0]
        result = forward_push(random_graph, 0, alpha, 0.01)
        assert np.all(result.reserve <= exact + 1e-10)

    def test_converges_to_exact(self, random_graph):
        alpha = 0.2
        exact = exact_ppr_matrix(random_graph, alpha)[0]
        result = forward_push(random_graph, 0, alpha, 1e-8)
        assert np.allclose(result.reserve, exact, atol=1e-5)


class TestAccounting:
    def test_counters_populated(self, random_graph):
        result = forward_push(random_graph, 0, 0.1, 0.01)
        assert result.num_pushes > 0
        assert result.work > 0

    def test_max_pushes_guard(self, random_graph):
        with pytest.raises(ConfigError):
            forward_push(random_graph, 0, 0.01, 1e-9, max_pushes=5)

    def test_parameter_validation(self, k5):
        with pytest.raises(ConfigError):
            forward_push(k5, 9, 0.1, 0.01)
        with pytest.raises(ConfigError):
            forward_push(k5, 0, 1.5, 0.01)
        with pytest.raises(ConfigError):
            forward_push(k5, 0, 0.1, 0.0)

    def test_no_push_when_below_threshold(self, k5):
        result = balanced_forward_push(k5, 0, 0.2, r_max=2.0)
        assert result.num_pushes == 0
        assert result.residual[0] == pytest.approx(1.0)
