"""WalkIndex / ForestIndex tests (§5.3)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import exact_ppr_matrix
from repro.montecarlo import ForestIndex, WalkIndex
from repro.graph.generators import erdos_renyi


@pytest.fixture
def graph10():
    return erdos_renyi(10, 0.5, rng=44)


class TestWalkIndexBuild:
    def test_counts_respected(self, graph10):
        counts = np.arange(10, dtype=np.int64)
        index = WalkIndex.build(graph10, 0.2, counts, rng=0)
        assert index.num_walks == counts.sum()
        for node in range(10):
            assert index.walks_of(node).size == counts[node]

    def test_fora_plus_sizing(self, graph10):
        index = WalkIndex.build_fora_plus(graph10, 0.2, epsilon=0.5, rng=0)
        want = np.ceil(graph10.degrees / 0.5)
        assert index.num_walks == int(want.sum())

    def test_speedppr_plus_sizing(self, graph10):
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        assert index.num_walks == int(np.ceil(graph10.degrees).sum())

    def test_cap(self, graph10):
        index = WalkIndex.build_fora_plus(graph10, 0.2, epsilon=0.01, rng=0,
                                          cap=3)
        assert index.num_walks <= 30

    def test_build_metadata(self, graph10):
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        assert index.build_seconds > 0
        assert index.build_steps > 0
        assert index.size_bytes > 0

    def test_count_validation(self, graph10):
        with pytest.raises(ConfigError):
            WalkIndex.build(graph10, 0.2, np.array([1, 2]))
        with pytest.raises(ConfigError):
            WalkIndex.build(graph10, 0.2, -np.ones(10, dtype=np.int64))


class TestWalkIndexEstimate:
    def test_unbiased_against_exact(self, graph10):
        """Index estimate of sum_u r(u) pi(u, .) averaged over builds."""
        alpha = 0.25
        exact = exact_ppr_matrix(graph10, alpha)
        rng = np.random.default_rng(3)
        residual = rng.random(10) / 10
        want = residual @ exact
        total = np.zeros(10)
        trials = 300
        for seed in range(trials):
            index = WalkIndex.build(graph10, alpha,
                                    np.full(10, 20, dtype=np.int64),
                                    rng=seed)
            total += index.estimate_from_residual(residual, scale=1000.0)
        assert np.abs(total / trials - want).max() < 0.02

    def test_zero_residual(self, graph10):
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        estimate = index.estimate_from_residual(np.zeros(10), 100.0)
        assert np.all(estimate == 0.0)

    def test_estimate_mass_conserved(self, graph10):
        """Every consumed endpoint carries weight r(u)/count, so the
        estimate's total equals the residual mass exactly."""
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        residual = np.linspace(0, 0.5, 10)
        estimate = index.estimate_from_residual(residual, 50.0)
        assert estimate.sum() == pytest.approx(residual.sum())

    def test_validation(self, graph10):
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        with pytest.raises(ConfigError):
            index.estimate_from_residual(np.zeros(4), 10.0)
        with pytest.raises(ConfigError):
            index.estimate_from_residual(np.zeros(10), 0.0)


class TestForestIndex:
    def test_build(self, graph10):
        index = ForestIndex.build(graph10, 0.2, 5, rng=0)
        assert index.num_forests == 5
        assert index.build_seconds > 0
        assert index.build_steps > 0
        assert index.size_bytes > 0

    def test_recommended_size(self, graph10):
        base = ForestIndex.recommended_size(graph10)
        assert base >= 1
        assert ForestIndex.recommended_size(graph10, epsilon=0.1) >= base

    def test_estimate_matches_manual_average(self, graph10):
        alpha = 0.2
        index = ForestIndex.build(graph10, alpha, 4, rng=7)
        rng = np.random.default_rng(1)
        residual = rng.random(10)
        from repro.forests.estimators import source_estimate_improved
        manual = np.mean([
            source_estimate_improved(forest, residual, graph10.degrees)
            for forest in index.forests], axis=0)
        assert np.allclose(index.estimate_source(residual), manual)

    def test_estimate_unbiased(self, graph10):
        alpha = 0.25
        exact = exact_ppr_matrix(graph10, alpha)
        rng = np.random.default_rng(5)
        residual = rng.random(10) / 10
        want_source = residual @ exact
        want_target = exact @ residual
        index = ForestIndex.build(graph10, alpha, 3000, rng=11)
        assert np.abs(index.estimate_source(residual)
                      - want_source).max() < 0.02
        assert np.abs(index.estimate_target(residual)
                      - want_target).max() < 0.02

    def test_basic_vs_improved_switch(self, graph10):
        index = ForestIndex.build(graph10, 0.2, 5, rng=3)
        residual = np.ones(10) / 10
        basic = index.estimate_source(residual, improved=False)
        improved = index.estimate_source(residual, improved=True)
        assert not np.allclose(basic, improved)
        # both conserve residual mass
        assert basic.sum() == pytest.approx(1.0)
        assert improved.sum() == pytest.approx(1.0)

    def test_build_validation(self, graph10):
        with pytest.raises(ConfigError):
            ForestIndex.build(graph10, 0.2, 0)


class TestPersistence:
    def test_walk_index_round_trip(self, graph10, tmp_path):
        index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=0)
        path = tmp_path / "walks.npz"
        index.save(path)
        loaded = WalkIndex.load(path, graph10)
        assert loaded.alpha == index.alpha
        assert np.array_equal(loaded.endpoints, index.endpoints)
        assert np.array_equal(loaded.offsets, index.offsets)
        residual = np.linspace(0, 0.5, 10)
        assert np.allclose(loaded.estimate_from_residual(residual, 50.0),
                           index.estimate_from_residual(residual, 50.0))

    def test_forest_index_round_trip(self, graph10, tmp_path):
        index = ForestIndex.build(graph10, 0.2, 6, rng=1)
        path = tmp_path / "forests.npz"
        index.save(path)
        loaded = ForestIndex.load(path, graph10)
        assert loaded.num_forests == 6
        residual = np.linspace(0, 0.5, 10)
        assert np.allclose(loaded.estimate_source(residual),
                           index.estimate_source(residual))
        assert np.allclose(loaded.estimate_target(residual),
                           index.estimate_target(residual))
        for forest in loaded.forests:
            forest.validate()

    def test_wrong_graph_rejected(self, graph10, tmp_path):
        from repro.graph.generators import complete_graph
        index = ForestIndex.build(graph10, 0.2, 3, rng=2)
        path = tmp_path / "forests.npz"
        index.save(path)
        with pytest.raises(ConfigError):
            ForestIndex.load(path, complete_graph(4))
        walk_index = WalkIndex.build_speedppr_plus(graph10, 0.2, rng=3)
        walk_path = tmp_path / "walks.npz"
        walk_index.save(walk_path)
        with pytest.raises(ConfigError):
            WalkIndex.load(walk_path, complete_graph(4))
