"""Adaptive top-k and heavy-hitter query tests."""

import numpy as np
import pytest

from repro.core import (
    heavy_hitters,
    top_k_single_source,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi
from repro.linalg import exact_single_source


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 0.08, rng=701)


class TestTopK:
    def test_recovers_exact_top_k(self, graph):
        alpha = 0.15
        exact = exact_single_source(graph, 0, alpha)
        result = top_k_single_source(graph, 0, 5, alpha=alpha, seed=3,
                                     max_forests=512)
        true_top = set(np.argsort(-exact)[:5].tolist())
        overlap = len(set(result.nodes.tolist()) & true_top)
        assert overlap >= 4  # at least 4 of 5 (ties near the boundary)

    def test_rank_order_descending(self, graph):
        result = top_k_single_source(graph, 0, 8, alpha=0.2, seed=4)
        assert np.all(np.diff(result.estimates) <= 1e-12)

    def test_convergence_flag_and_counters(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.2, seed=5,
                                     max_forests=512)
        assert result.num_forests >= 1
        assert result.stats["forest_steps"] > 0
        if result.converged:
            assert result.num_forests <= 512

    def test_tight_budget_flags_nonconvergence(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.01, seed=6,
                                     batch_size=2, max_forests=2)
        assert result.num_forests == 2
        # with 2 forests separation is very unlikely; either way the
        # flag must be consistent with the budget
        assert result.converged in (True, False)

    def test_as_pairs(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.2, seed=7)
        pairs = result.as_pairs()
        assert len(pairs) == 3
        assert all(isinstance(node, int) for node, _ in pairs)

    def test_validation(self, graph):
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 0)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, graph.num_nodes)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 3, confidence=1.5)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 3, batch_size=0)


class TestHeavyHitters:
    def test_finds_nodes_above_threshold(self, graph):
        alpha = 0.2
        exact = exact_single_source(graph, 0, alpha)
        threshold = 0.02
        result = heavy_hitters(graph, 0, threshold, alpha=alpha, seed=8,
                               max_forests=512)
        true_set = set(np.flatnonzero(exact > threshold).tolist())
        found = set(result.nodes.tolist())
        # recover the clear hitters; disagreements only near the line
        clear = set(np.flatnonzero(exact > 1.5 * threshold).tolist())
        assert clear <= found
        spurious = found - true_set
        assert all(exact[node] > 0.5 * threshold for node in spurious)

    def test_source_always_a_hitter_for_small_threshold(self, graph):
        result = heavy_hitters(graph, 0, 0.05, alpha=0.5, seed=9)
        assert 0 in result.nodes.tolist()

    def test_estimates_above_threshold(self, graph):
        result = heavy_hitters(graph, 0, 0.01, alpha=0.2, seed=10)
        assert np.all(result.estimates > 0.01)

    def test_validation(self, graph):
        with pytest.raises(ConfigError):
            heavy_hitters(graph, 0, 0.0)
        with pytest.raises(ConfigError):
            heavy_hitters(graph, 0, 0.1, confidence=0.0)
