"""Adaptive top-k and heavy-hitter query tests."""

import numpy as np
import pytest

from repro.core import (
    BatchTopKSolver,
    heavy_hitters,
    top_k_single_source,
)
from repro.exceptions import ConfigError
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 0.08, rng=701)


class TestTopK:
    def test_recovers_exact_top_k(self, graph, exact_vector):
        alpha = 0.15
        exact = exact_vector(graph, alpha, 0)
        result = top_k_single_source(graph, 0, 5, alpha=alpha, seed=3,
                                     max_forests=512)
        true_top = set(np.argsort(-exact)[:5].tolist())
        overlap = len(set(result.nodes.tolist()) & true_top)
        assert overlap >= 4  # at least 4 of 5 (ties near the boundary)

    def test_rank_order_descending(self, graph):
        result = top_k_single_source(graph, 0, 8, alpha=0.2, seed=4)
        assert np.all(np.diff(result.estimates) <= 1e-12)

    def test_convergence_flag_and_counters(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.2, seed=5,
                                     max_forests=512)
        assert result.num_forests >= 1
        assert result.stats["forest_steps"] > 0
        if result.converged:
            assert result.num_forests <= 512

    def test_tight_budget_flags_nonconvergence(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.01, seed=6,
                                     batch_size=2, max_forests=2)
        assert result.num_forests == 2
        # with 2 forests separation is very unlikely; either way the
        # flag must be consistent with the budget
        assert result.converged in (True, False)

    def test_as_pairs(self, graph):
        result = top_k_single_source(graph, 0, 3, alpha=0.2, seed=7)
        pairs = result.as_pairs()
        assert len(pairs) == 3
        assert all(isinstance(node, int) for node, _ in pairs)

    def test_validation(self, graph):
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 0)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, graph.num_nodes)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 3, confidence=1.5)
        with pytest.raises(ConfigError):
            top_k_single_source(graph, 0, 3, batch_size=0)


class TestBatchTopKSolver:
    def test_recovers_exact_top_k(self, graph, exact_vector):
        alpha = 0.15
        exact = exact_vector(graph, alpha, 0)
        with BatchTopKSolver(graph, alpha=alpha, seed=3,
                             max_forests=512) as solver:
            result = solver.query_topk(0, 5)
        true_top = set(np.argsort(-exact)[:5].tolist())
        assert len(set(result.nodes.tolist()) & true_top) >= 4

    def test_batch_composition_independent(self, graph):
        """A query's answer depends only on (graph, config, node, k) —
        never on what else shares its micro-batch."""
        with BatchTopKSolver(graph, alpha=0.2, seed=11,
                             max_forests=256) as solver:
            alone = solver.run_items([(0, 5)])[0]
            crowded = solver.run_items([(3, 4), (0, 5), (7, 3)])[1]
        assert np.array_equal(alone.nodes, crowded.nodes)
        assert np.array_equal(alone.estimates, crowded.estimates)
        assert alone.num_forests == crowded.num_forests
        assert alone.converged == crowded.converged

    def test_early_stop_cuts_walk_steps(self, graph):
        """The variance-bound stopping rule must do less walk work
        than the full-budget comparator on the same forest stream."""
        kwargs = dict(alpha=0.2, seed=11, max_forests=256)
        with BatchTopKSolver(graph, **kwargs) as early, \
                BatchTopKSolver(graph, early_stop=False,
                                **kwargs) as full:
            stopped = early.query_topk(0, 3)
            exhausted = full.query_topk(0, 3)
        if stopped.converged:
            assert stopped.num_forests < exhausted.num_forests
            assert (stopped.stats["work_walk_steps"]
                    < exhausted.stats["work_walk_steps"])
        assert exhausted.num_forests == 256

    def test_prefix_view(self, graph):
        with BatchTopKSolver(graph, alpha=0.2, seed=12,
                             max_forests=64) as solver:
            result = solver.query_topk(0, 6)
        prefix = result.prefix(3)
        assert prefix.k == 3
        assert np.array_equal(prefix.nodes, result.nodes[:3])
        assert np.array_equal(prefix.estimates, result.estimates[:3])
        with pytest.raises(ConfigError):
            result.prefix(7)

    def test_lifecycle_and_stats(self, graph):
        solver = BatchTopKSolver(graph, alpha=0.2, seed=13,
                                 max_forests=32)
        solver.query_topk(0, 3)
        stats = solver.stats()
        assert stats["queries_served"] == 1
        assert stats["owns_index"] is False
        solver.close()
        solver.close()  # idempotent
        assert solver.closed

    def test_validation(self, graph):
        with BatchTopKSolver(graph, alpha=0.2, seed=14) as solver:
            with pytest.raises(ConfigError):
                solver.query_topk(0, 0)
            with pytest.raises(ConfigError):
                solver.query_topk(0, graph.num_nodes)
            with pytest.raises(ConfigError):
                solver.query_topk(10**6, 3)
        with pytest.raises(ConfigError):
            BatchTopKSolver(graph, confidence=1.5)
        with pytest.raises(ConfigError):
            BatchTopKSolver(graph, batch_draw=0)
        with pytest.raises(ConfigError):
            BatchTopKSolver(graph, max_forests=0)


class TestHeavyHitters:
    def test_finds_nodes_above_threshold(self, graph, exact_vector):
        alpha = 0.2
        exact = exact_vector(graph, alpha, 0)
        threshold = 0.02
        result = heavy_hitters(graph, 0, threshold, alpha=alpha, seed=8,
                               max_forests=512)
        true_set = set(np.flatnonzero(exact > threshold).tolist())
        found = set(result.nodes.tolist())
        # recover the clear hitters; disagreements only near the line
        clear = set(np.flatnonzero(exact > 1.5 * threshold).tolist())
        assert clear <= found
        spurious = found - true_set
        assert all(exact[node] > 0.5 * threshold for node in spurious)

    def test_source_always_a_hitter_for_small_threshold(self, graph):
        result = heavy_hitters(graph, 0, 0.05, alpha=0.5, seed=9)
        assert 0 in result.nodes.tolist()

    def test_estimates_above_threshold(self, graph):
        result = heavy_hitters(graph, 0, 0.01, alpha=0.2, seed=10)
        assert np.all(result.estimates > 0.01)

    def test_validation(self, graph):
        with pytest.raises(ConfigError):
            heavy_hitters(graph, 0, 0.0)
        with pytest.raises(ConfigError):
            heavy_hitters(graph, 0, 0.1, confidence=0.0)
