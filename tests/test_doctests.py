"""Run the doctest examples embedded in docstrings.

Only modules whose examples are seeded (hence deterministic) are
included; this keeps the examples in the documentation honest.
"""

import doctest

import pytest

import repro.applications.clustering
import repro.applications.smoothing
import repro.bench.harness
import repro.core.api
import repro.core.batch
import repro.core.pairwise

MODULES = [
    repro.bench.harness,
    repro.core.api,
    repro.core.batch,
    repro.core.pairwise,
    repro.applications.clustering,
    repro.applications.smoothing,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda module: module.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}")
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
