"""Tests for the batched (disjoint-union) forest sampler."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.forests import sample_forests_batch
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_ppr_matrix, tau_exact


class TestStructure:
    def test_count_and_validity(self, random_graph):
        forests = sample_forests_batch(random_graph, 0.1, 7, rng=0)
        assert len(forests) == 7
        for forest in forests:
            forest.validate()
            assert forest.num_nodes == random_graph.num_nodes

    def test_layers_are_independent(self, random_graph):
        forests = sample_forests_batch(random_graph, 0.2, 50, rng=1)
        distinct = {tuple(f.roots.tolist()) for f in forests}
        assert len(distinct) > 1

    def test_tree_edges_are_graph_edges(self, random_graph):
        for forest in sample_forests_batch(random_graph, 0.15, 5, rng=2):
            for node in range(forest.num_nodes):
                parent = forest.parents[node]
                if parent >= 0:
                    assert random_graph.has_edge(node, int(parent))

    def test_deterministic_under_seed(self, random_graph):
        first = sample_forests_batch(random_graph, 0.1, 4, rng=9)
        second = sample_forests_batch(random_graph, 0.1, 4, rng=9)
        for a, b in zip(first, second):
            assert np.array_equal(a.roots, b.roots)

    def test_validation(self, k5):
        with pytest.raises(ConfigError):
            sample_forests_batch(k5, 0.2, 0)
        with pytest.raises(ConfigError):
            sample_forests_batch(k5, 1.5, 3)

    def test_isolated_nodes(self, disconnected):
        forests = sample_forests_batch(disconnected, 0.2, 3, rng=3)
        for forest in forests:
            assert forest.roots[5] == 5


class TestDistribution:
    def test_root_frequencies_match_ppr(self):
        graph = erdos_renyi(10, 0.4, rng=11)
        alpha = 0.25
        exact = exact_ppr_matrix(graph, alpha)
        counts = np.zeros((10, 10))
        samples = 3000
        for forest in sample_forests_batch(graph, alpha, samples, rng=5):
            counts[np.arange(10), forest.roots] += 1
        assert np.abs(counts / samples - exact).max() < 0.035

    def test_weighted_graph(self):
        graph = with_random_weights(erdos_renyi(8, 0.5, rng=13), rng=5)
        alpha = 0.3
        exact = exact_ppr_matrix(graph, alpha)
        counts = np.zeros((8, 8))
        samples = 3000
        for forest in sample_forests_batch(graph, alpha, samples, rng=6):
            counts[np.arange(8), forest.roots] += 1
        assert np.abs(counts / samples - exact).max() < 0.035

    def test_mean_steps_match_tau(self):
        graph = erdos_renyi(15, 0.3, rng=19)
        alpha = 0.15
        tau = tau_exact(graph, alpha)
        forests = sample_forests_batch(graph, alpha, 1500, rng=7)
        mean_steps = np.mean([forest.num_steps for forest in forests])
        assert mean_steps == pytest.approx(tau, rel=0.1)
