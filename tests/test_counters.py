"""WorkCounters: merge semantics, snapshots, stats round-trips."""

from __future__ import annotations

import pytest

from repro.counters import WORK_STATS_PREFIX, WorkCounters


class TestMerge:
    def test_merge_counters_in_place(self):
        base = WorkCounters(walk_steps=3, pushes=2)
        other = WorkCounters(walk_steps=10, cycle_pops=4,
                             forests_sampled=1, push_sweeps=5)
        returned = base.merge(other)
        assert returned is base
        assert base.walk_steps == 13
        assert base.cycle_pops == 4
        assert base.forests_sampled == 1
        assert base.pushes == 2
        assert base.push_sweeps == 5
        # the source record is untouched
        assert other.walk_steps == 10

    def test_merge_plain_dict(self):
        base = WorkCounters(pushes=1)
        base.merge({"pushes": 2, "walk_steps": 7})
        assert base.pushes == 3
        assert base.walk_steps == 7

    def test_merge_stats_form_and_unknown_keys(self):
        base = WorkCounters()
        base.merge({WORK_STATS_PREFIX + "walk_steps": 5,
                    "r_max": 0.25, "batch_size": 32})
        assert base.walk_steps == 5
        assert base.total == 5

    def test_merge_empty_mapping_is_noop(self):
        base = WorkCounters(walk_steps=2)
        base.merge({})
        assert base.as_dict() == WorkCounters(walk_steps=2).as_dict()

    def test_add_returns_new_record(self):
        a = WorkCounters(walk_steps=1)
        b = WorkCounters(walk_steps=2, pushes=3)
        c = a + b
        assert (c.walk_steps, c.pushes) == (3, 3)
        assert a.walk_steps == 1 and b.walk_steps == 2


class TestSnapshots:
    def test_snapshot_dict_includes_total(self):
        counters = WorkCounters(walk_steps=4, pushes=6)
        snap = counters.snapshot_dict()
        assert snap["walk_steps"] == 4
        assert snap["pushes"] == 6
        assert snap["total"] == 10

    def test_snapshot_dict_is_detached(self):
        counters = WorkCounters(walk_steps=1)
        snap = counters.snapshot_dict()
        counters.merge(WorkCounters(walk_steps=100, pushes=9))
        assert snap["walk_steps"] == 1
        assert snap["total"] == 1
        assert counters.total == 110

    def test_total_property(self):
        assert WorkCounters().total == 0
        assert WorkCounters(walk_steps=1, cycle_pops=2, forests_sampled=3,
                            pushes=4, push_sweeps=5).total == 15


class TestStatsRoundTrip:
    def test_as_stats_prefix(self):
        stats = WorkCounters(walk_steps=2).as_stats()
        assert stats[WORK_STATS_PREFIX + "walk_steps"] == 2
        assert all(key.startswith(WORK_STATS_PREFIX) for key in stats)

    def test_from_stats_roundtrip(self):
        original = WorkCounters(walk_steps=9, cycle_pops=8,
                                forests_sampled=7, pushes=6, push_sweeps=5)
        rebuilt = WorkCounters.from_stats(original.as_stats())
        assert rebuilt == original

    def test_from_stats_missing_keys_default_zero(self):
        rebuilt = WorkCounters.from_stats({"unrelated": 1})
        assert rebuilt == WorkCounters()


class TestRecording:
    def test_record_forest(self):
        class FakeForest:
            num_steps = 11
            num_pops = 3

        counters = WorkCounters()
        counters.record_forest(FakeForest())
        assert counters.forests_sampled == 1
        assert counters.walk_steps == 11
        assert counters.cycle_pops == 3

    def test_record_push(self):
        class FakePush:
            num_pushes = 21
            num_sweeps = 4

        counters = WorkCounters()
        counters.record_push(FakePush())
        assert counters.pushes == 21
        assert counters.push_sweeps == 4

    @pytest.mark.parametrize("kind", ["dict", "stats"])
    def test_scheduler_fold_shapes(self, kind):
        """The service metrics fold PPRResult work in both dict shapes."""
        aggregate = WorkCounters()
        per_query = WorkCounters(walk_steps=5, pushes=2)
        payload = (per_query.as_dict() if kind == "dict"
                   else per_query.as_stats())
        for _ in range(3):
            aggregate.merge(payload)
        assert aggregate.walk_steps == 15
        assert aggregate.pushes == 6
