"""β-Laplacian tests: Definition 2.1, Eq. 4, determinant plumbing."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import (
    alpha_from_beta,
    beta_from_alpha,
    beta_laplacian,
    beta_laplacian_dense,
    exact_ppr_matrix,
    log_det_regularized_laplacian,
    ppr_matrix_from_beta_laplacian,
)


class TestBetaConversions:
    def test_round_trip(self):
        for alpha in (0.01, 0.2, 0.5, 0.99):
            assert alpha_from_beta(beta_from_alpha(alpha)) == pytest.approx(alpha)

    def test_known_values(self):
        assert beta_from_alpha(0.5) == pytest.approx(1.0)
        assert beta_from_alpha(0.2) == pytest.approx(0.25)

    def test_domain_errors(self):
        for alpha in (0.0, 1.0, -1.0):
            with pytest.raises(ConfigError):
                beta_from_alpha(alpha)
        with pytest.raises(ConfigError):
            alpha_from_beta(0.0)


class TestBetaLaplacian:
    def test_definition(self, weighted_small):
        # L_beta = (beta D)^-1 (L + beta D)
        alpha = 0.3
        beta = beta_from_alpha(alpha)
        degrees = weighted_small.degrees
        laplacian = np.diag(degrees) - weighted_small.to_scipy_adjacency().toarray()
        expected = np.linalg.inv(np.diag(beta * degrees)) @ (
            laplacian + beta * np.diag(degrees))
        assert np.allclose(beta_laplacian_dense(weighted_small, alpha),
                           expected)

    def test_inverse_is_ppr_matrix(self, random_graph):
        """Eq. 4: pi(s, t) = (L_beta^-1)_{st}."""
        alpha = 0.15
        via_beta = ppr_matrix_from_beta_laplacian(random_graph, alpha)
        via_transition = exact_ppr_matrix(random_graph, alpha)
        assert np.allclose(via_beta, via_transition, atol=1e-10)

    def test_inverse_is_ppr_matrix_weighted(self, random_weighted_graph):
        alpha = 0.05
        via_beta = ppr_matrix_from_beta_laplacian(random_weighted_graph, alpha)
        via_transition = exact_ppr_matrix(random_weighted_graph, alpha)
        assert np.allclose(via_beta, via_transition, atol=1e-9)

    def test_sparse_dense_agree(self, k5):
        assert np.allclose(beta_laplacian(k5, 0.2).toarray(),
                           beta_laplacian_dense(k5, 0.2))

    def test_isolated_node_rejected(self, disconnected):
        with pytest.raises(ConfigError):
            beta_laplacian(disconnected, 0.2)


class TestLogDet:
    def test_matches_dense_slogdet(self, random_graph):
        alpha = 0.1
        beta = beta_from_alpha(alpha)
        degrees = random_graph.degrees
        dense = (np.diag((1 + beta) * degrees)
                 - random_graph.to_scipy_adjacency().toarray())
        sign, want = np.linalg.slogdet(dense)
        assert sign == 1.0
        assert log_det_regularized_laplacian(random_graph, alpha) == \
            pytest.approx(want, rel=1e-9)

    def test_weighted(self, weighted_small):
        alpha = 0.4
        beta = beta_from_alpha(alpha)
        degrees = weighted_small.degrees
        dense = (np.diag((1 + beta) * degrees)
                 - weighted_small.to_scipy_adjacency().toarray())
        _, want = np.linalg.slogdet(dense)
        assert log_det_regularized_laplacian(weighted_small, alpha) == \
            pytest.approx(want, rel=1e-9)
