"""Tests for SLO specs, burn-rate tracking, and the alert machine.

All driven with injected ``now`` values: the multi-window state
machine is pure windowed arithmetic, so firing and clearing are
asserted deterministically without sleeping.
"""

import pytest

from repro.obs.slo import (
    STATE_FIRING,
    STATE_OK,
    SLOEngine,
    SLOSpec,
    SLOTracker,
    default_specs,
)


class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="nope", objective=0.99)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=1.5)
        with pytest.raises(ValueError):
            # latency kind needs a positive threshold
            SLOSpec(name="x", kind="latency", objective=0.99)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=0.99,
                    fast_window_s=300.0, slow_window_s=60.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=0.99,
                    burn_threshold=0.0)

    def test_classify_availability(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        assert spec.classify(10.0) is True  # latency never matters
        assert spec.classify(0.001, error=True) is False

    def test_classify_latency(self):
        spec = SLOSpec(name="lat", kind="latency", objective=0.99,
                       latency_threshold_ms=100.0)
        assert spec.classify(0.05) is True
        assert spec.classify(0.25) is False
        assert spec.classify(0.05, error=True) is False

    def test_default_specs(self):
        availability, latency = default_specs()
        assert availability.kind == "availability"
        assert latency.kind == "latency"
        assert latency.latency_threshold_ms == 250.0


class TestSLOTracker:
    def _spec(self, **overrides):
        params = dict(name="avail", kind="availability", objective=0.99,
                      fast_window_s=10.0, slow_window_s=40.0,
                      burn_threshold=10.0)
        params.update(overrides)
        return SLOSpec(**params)

    def test_no_traffic_no_burn(self):
        tracker = SLOTracker(self._spec())
        assert tracker.burn_rate(10.0, now=5.0) == 0.0
        report = tracker.evaluate(now=5.0)
        assert report["state"] == STATE_OK

    def test_burn_rate_arithmetic(self):
        tracker = SLOTracker(self._spec())
        for _ in range(90):
            tracker.observe(0.001, now=5.0)
        for _ in range(10):
            tracker.observe_bad(now=5.0)
        # 10% bad over a 1% error budget = burn 10
        assert tracker.burn_rate(10.0, now=5.0) == pytest.approx(10.0)

    def test_fires_only_when_both_windows_burn(self):
        tracker = SLOTracker(self._spec())
        # errors only in the recent past: fast window hot, slow warm
        for _ in range(50):
            tracker.observe_bad(now=39.0)
        report = tracker.evaluate(now=39.0)
        assert report["fast_burn"] >= 10.0
        assert report["slow_burn"] >= 10.0
        assert report["state"] == STATE_FIRING

    def test_clears_when_fast_window_recovers(self):
        tracker = SLOTracker(self._spec())
        for _ in range(50):
            tracker.observe_bad(now=5.0)
        assert tracker.evaluate(now=5.0)["state"] == STATE_FIRING
        # good traffic floods the fast window; bad ones age out of it
        for tick in range(16, 26):
            for _ in range(20):
                tracker.observe(0.001, now=float(tick))
        report = tracker.evaluate(now=25.0)
        assert report["fast_burn"] < 10.0
        assert report["state"] == STATE_OK
        states = [entry["state"] for entry in report["transitions"]]
        assert states[-2:] == [STATE_FIRING, STATE_OK]

    def test_report_shape(self):
        tracker = SLOTracker(self._spec())
        tracker.observe(0.001, now=1.0)
        report = tracker.evaluate(now=1.0)
        for key in ("name", "kind", "objective", "state", "fast_burn",
                    "slow_burn", "fast_window_s", "slow_window_s",
                    "burn_threshold", "transitions"):
            assert key in report


class TestSLOEngine:
    def test_duplicate_names_rejected(self):
        spec = SLOSpec(name="a", kind="availability", objective=0.99)
        with pytest.raises(ValueError):
            SLOEngine([spec, spec])

    def test_latency_spec_burns_on_slow_requests(self):
        engine = SLOEngine(default_specs(
            latency_threshold_ms=10.0, fast_window_s=5.0,
            slow_window_s=20.0))
        for _ in range(50):
            engine.observe_request(0.5, now=4.0)  # all over threshold
        reports = {r["name"]: r for r in engine.evaluate(now=4.0)}
        assert reports["latency"]["state"] == STATE_FIRING
        # slow requests are not availability failures
        assert reports["availability"]["state"] == STATE_OK
        assert engine.firing(now=4.0) == ["latency"]

    def test_rejections_hit_availability_only(self):
        engine = SLOEngine(default_specs(fast_window_s=5.0,
                                         slow_window_s=20.0))
        for _ in range(50):
            engine.observe_rejection(now=4.0)
        reports = {r["name"]: r for r in engine.evaluate(now=4.0)}
        assert reports["availability"]["state"] == STATE_FIRING
        assert reports["latency"]["state"] == STATE_OK

    def test_errors_hit_both(self):
        engine = SLOEngine(default_specs(fast_window_s=5.0,
                                         slow_window_s=20.0))
        for _ in range(50):
            engine.observe_request(0.0, error=True, now=4.0)
        assert set(engine.firing(now=4.0)) == {"availability",
                                               "latency"}
