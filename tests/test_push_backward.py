"""Backward-push tests: the Eq. 7 invariant, additive error, RBACK."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.linalg import exact_ppr_matrix
from repro.push import backward_push, randomized_backward_push


def _check_invariant(graph, target, alpha, result, atol=1e-10):
    """pi(., t) = q + sum_u pi(., u) r(u) must hold exactly (Eq. 7)."""
    exact = exact_ppr_matrix(graph, alpha)
    reconstructed = result.reserve + exact @ result.residual
    assert np.allclose(reconstructed, exact[:, target], atol=atol)


class TestInvariant:
    @pytest.mark.parametrize("alpha", [0.05, 0.2, 0.5])
    @pytest.mark.parametrize("r_max", [0.5, 0.05, 0.005])
    def test_eq7(self, random_graph, alpha, r_max):
        result = backward_push(random_graph, 0, alpha, r_max)
        _check_invariant(random_graph, 0, alpha, result)

    def test_weighted_eq7(self, random_weighted_graph):
        result = backward_push(random_weighted_graph, 3, 0.15, 0.01)
        _check_invariant(random_weighted_graph, 3, 0.15, result)

    def test_directed_eq7(self, directed_line):
        # target node 1 reachable from 0; push crosses reversed arcs
        result = backward_push(directed_line, 1, 0.3, 0.001)
        _check_invariant(directed_line, 1, 0.3, result)

    def test_directed_dangling_target_eq7(self, directed_line):
        # node 2 is dangling: exercises the absorbing closed form
        result = backward_push(directed_line, 2, 0.3, 0.001)
        _check_invariant(directed_line, 2, 0.3, result)

    def test_isolated_target(self, disconnected):
        result = backward_push(disconnected, 5, 0.2, 0.001)
        assert result.reserve[5] == pytest.approx(1.0)
        assert np.allclose(np.delete(result.reserve, 5), 0.0)


class TestAdditiveError:
    @pytest.mark.parametrize("r_max", [0.1, 0.01])
    def test_reserve_within_r_max_of_truth(self, random_graph, r_max):
        alpha = 0.2
        target = 7
        exact = exact_ppr_matrix(random_graph, alpha)[:, target]
        result = backward_push(random_graph, target, alpha, r_max)
        errors = exact - result.reserve
        assert np.all(errors >= -1e-12)          # reserve never overshoots
        assert np.all(errors <= r_max + 1e-12)   # classic additive bound

    def test_residual_below_threshold(self, random_graph):
        result = backward_push(random_graph, 0, 0.2, 0.01)
        assert np.all(result.residual < 0.01 + 1e-12)

    def test_converges_to_exact(self, random_graph):
        alpha = 0.3
        exact = exact_ppr_matrix(random_graph, alpha)[:, 4]
        result = backward_push(random_graph, 4, alpha, 1e-9)
        assert np.allclose(result.reserve, exact, atol=1e-6)


class TestRandomizedBackwardPush:
    def test_residual_below_threshold(self, random_graph):
        result = randomized_backward_push(random_graph, 0, 0.2, 0.01, rng=1)
        assert np.all(result.residual < 0.01 + 1e-9)

    def test_approximately_unbiased(self, random_graph):
        """Averaging RBACK reserves over seeds approaches the truth."""
        alpha = 0.2
        target = 3
        exact = exact_ppr_matrix(random_graph, alpha)[:, target]
        total = np.zeros(random_graph.num_nodes)
        trials = 60
        for seed in range(trials):
            result = randomized_backward_push(random_graph, target, alpha,
                                              0.05, rng=seed)
            total += result.reserve + exact @ result.residual
        assert np.abs(total / trials - exact).max() < 0.02

    def test_theta_validation(self, k5):
        with pytest.raises(ConfigError):
            randomized_backward_push(k5, 0, 0.2, 0.01, theta=0.0)

    def test_deterministic_under_seed(self, random_graph):
        a = randomized_backward_push(random_graph, 0, 0.2, 0.01, rng=5)
        b = randomized_backward_push(random_graph, 0, 0.2, 0.01, rng=5)
        assert np.allclose(a.reserve, b.reserve)


class TestValidation:
    def test_parameter_checks(self, k5):
        with pytest.raises(ConfigError):
            backward_push(k5, 9, 0.1, 0.01)
        with pytest.raises(ConfigError):
            backward_push(k5, 0, 0.0, 0.01)
        with pytest.raises(ConfigError):
            backward_push(k5, 0, 0.1, -1.0)

    def test_max_pushes_guard(self, random_graph):
        with pytest.raises(ConfigError):
            backward_push(random_graph, 0, 0.01, 1e-10, max_pushes=3)
