"""Directed-graph behaviour across the stack.

§2/§3 of the paper: the matrix-forest theory and the loop-erased
α-walk extend to directed graphs (diverging forests); the
cycle-popping/Wilson law holds for any Markov chain.  What does *not*
extend is Theorem 3.7's degree-proportional conditional root
distribution — so the basic estimators stay unbiased on directed
graphs while the improved ones are biased and must be refused.
"""

import numpy as np
import pytest

from repro.core import PPRConfig, l1_error, single_source, single_target
from repro.exceptions import ConfigError
from repro.forests import (
    sample_forest_cycle_popping,
    sample_forest_wilson,
    source_estimate_basic,
    target_estimate_basic,
    target_estimate_improved,
)
from repro.graph import from_edges
from repro.linalg import exact_ppr_matrix, exact_single_source
from repro.rng import ensure_rng


@pytest.fixture(scope="module")
def strongly_connected():
    """Small strongly-connected directed graph."""
    edges = [(0, 1), (1, 2), (2, 0), (1, 3), (3, 0), (2, 3), (3, 2), (0, 2)]
    return from_edges(edges, directed=True)


@pytest.fixture(scope="module")
def directed_random():
    """Seeded random directed graph (40 nodes) with a sink."""
    rng = np.random.default_rng(71)
    pairs = rng.integers(0, 40, size=(240, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    # node 39 becomes a pure sink: drop its out-edges
    pairs = pairs[pairs[:, 0] != 39]
    return from_edges(pairs, directed=True, num_nodes=40)


class TestSamplersDirected:
    @pytest.mark.parametrize("sampler", [sample_forest_wilson,
                                         sample_forest_cycle_popping])
    def test_root_distribution_matches_ppr(self, strongly_connected,
                                           sampler):
        alpha = 0.3
        exact = exact_ppr_matrix(strongly_connected, alpha)
        counts = np.zeros((4, 4))
        rng = ensure_rng(5)
        trials = 4000
        for _ in range(trials):
            forest = sampler(strongly_connected, alpha, rng=rng)
            counts[np.arange(4), forest.roots] += 1
        assert np.abs(counts / trials - exact).max() < 0.03

    @pytest.mark.parametrize("sampler", [sample_forest_wilson,
                                         sample_forest_cycle_popping])
    def test_sink_always_roots_itself(self, directed_random, sampler):
        forest = sampler(directed_random, 0.2, rng=3)
        assert forest.roots[39] == 39

    def test_forest_structure_valid(self, directed_random):
        forest = sample_forest_wilson(directed_random, 0.2, rng=4)
        forest.validate()


class TestEstimatorsDirected:
    def test_basic_estimators_unbiased(self, strongly_connected):
        alpha = 0.3
        exact = exact_ppr_matrix(strongly_connected, alpha)
        rng = ensure_rng(9)
        residual = np.array([0.3, 0.1, 0.25, 0.15])
        want_target = exact @ residual
        want_source = residual @ exact
        total_target = np.zeros(4)
        total_source = np.zeros(4)
        trials = 6000
        for _ in range(trials):
            forest = sample_forest_wilson(strongly_connected, alpha, rng=rng)
            total_target += target_estimate_basic(forest, residual)
            total_source += source_estimate_basic(forest, residual)
        assert np.abs(total_target / trials - want_target).max() < 0.015
        assert np.abs(total_source / trials - want_source).max() < 0.015

    def test_improved_estimator_is_biased_directed(self, strongly_connected):
        """Documents the bias that motivates the guard: the conditional
        degree law (Thm 3.7) fails without undirectedness."""
        alpha = 0.3
        exact = exact_ppr_matrix(strongly_connected, alpha)
        rng = ensure_rng(11)
        residual = np.array([0.3, 0.1, 0.25, 0.15])
        want = exact @ residual
        total = np.zeros(4)
        trials = 20000
        for _ in range(trials):
            forest = sample_forest_wilson(strongly_connected, alpha, rng=rng)
            total += target_estimate_improved(forest, residual,
                                              strongly_connected.degrees)
        bias = np.abs(total / trials - want).max()
        assert bias > 0.01  # systematic, far beyond MC noise (~0.003)


class TestAlgorithmsDirected:
    def test_basic_variants_work(self, directed_random):
        exact = exact_single_source(directed_random, 0, 0.15)
        config = PPRConfig(alpha=0.15, epsilon=0.5, seed=2)
        for method in ("fora", "foral", "speedppr", "speedl"):
            result = single_source(directed_random, 0, method=method,
                                   config=config)
            assert l1_error(result, exact) < 0.7

    def test_improved_variants_rejected(self, directed_random):
        for method in ("foralv", "speedlv"):
            with pytest.raises(ConfigError):
                single_source(directed_random, 0, method=method, alpha=0.2)
        with pytest.raises(ConfigError):
            single_target(directed_random, 0, method="backlv", alpha=0.2)

    def test_backl_works_directed(self, directed_random):
        config = PPRConfig(alpha=0.2, epsilon=0.5, seed=3)
        result = single_target(directed_random, 5, method="backl",
                               config=config)
        exact = exact_ppr_matrix(directed_random, 0.2)[:, 5]
        assert l1_error(result, exact) < 0.1 * max(exact.sum(), 1.0)

    def test_push_baselines_work_directed(self, directed_random):
        config = PPRConfig(alpha=0.2, epsilon=0.5, seed=4)
        exact = exact_ppr_matrix(directed_random, 0.2)[:, 5]
        result = single_target(directed_random, 5, method="back",
                               config=config)
        assert l1_error(result, exact) < 0.5
