"""Bank format v3: cache-aware node relabeling + float32 storage.

The layout contract this file pins down:

- a degree/BFS-relabeled **float64** bank answers every query surface
  **byte-identically** to the identity layout (the permutation is pure
  row bookkeeping — `_BankOperators.permuted` row-gathers the Q
  operators and every fold unpermutes its output);
- shard restriction of a relabeled parent never leaks the permutation
  into the shard bank;
- ``bank_dtype="float32"`` halves the dominant bank bytes and keeps
  answers within the documented error bound;
- v1/v2 banks (no layout metadata) still load, as identity/float64.
"""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import chung_lu
from repro.montecarlo.forest_index import (
    BANK_DTYPES,
    NODE_ORDERS,
    ForestIndex,
    _BankOperators,
    node_ordering,
)
from repro.parallel.shared_bank import BANK_FORMAT_VERSION

ALPHA = 0.2


@pytest.fixture(scope="module")
def graph():
    # skewed degrees so the degree ordering actually moves rows, plus
    # (typically) a few isolated nodes to exercise the degree-0 fixup
    degrees = 1.0 + 7.0 * (np.arange(60) % 11) / 10.0
    return chung_lu(degrees, rng=11)


@pytest.fixture(scope="module")
def index(graph):
    return ForestIndex.build(graph, ALPHA, 6, rng=11)


@pytest.fixture(scope="module")
def residuals(graph):
    rng = np.random.default_rng(3)
    batch = rng.random((4, graph.num_nodes))
    return batch / batch.sum(axis=1, keepdims=True)


def _reload(index, tmp_path, **bank_kwargs):
    index.save_bank(tmp_path / "bank", **bank_kwargs)
    return ForestIndex.load_bank(tmp_path / "bank", index.graph)


class TestNodeOrdering:
    def test_degree_order_is_descending_and_stable(self, graph):
        order = node_ordering(graph, "degree")
        ordered = graph.degrees[order]
        assert (np.diff(ordered) <= 0).all()
        # stable: equal degrees keep ascending node-id order
        for degree in np.unique(ordered):
            ids = order[ordered == degree]
            assert (np.diff(ids) > 0).all()

    def test_bfs_order_is_a_permutation_from_node_zero(self, graph):
        order = node_ordering(graph, "bfs")
        assert np.array_equal(np.sort(order), np.arange(graph.num_nodes))
        assert order[0] == 0

    def test_none_is_identity(self, graph):
        assert node_ordering(graph, "none") is None
        assert node_ordering(graph, None) is None

    def test_unknown_kind_raises(self, graph):
        with pytest.raises(ConfigError, match="node order"):
            node_ordering(graph, "hilbert")


class TestRelabeledFloat64ByteIdentity:
    """The heart of the v3 contract: relabeling is invisible."""

    @pytest.mark.parametrize("order", ["degree", "bfs"])
    def test_every_surface_is_byte_identical(self, index, residuals,
                                             tmp_path, order):
        relabeled = _reload(index, tmp_path, node_order=order)
        assert relabeled.bank_node_order == order
        assert relabeled._operators.node_order is not None
        entries = np.array([0, 5, 17, 42])
        for improved in (True, False):
            assert np.array_equal(
                index.estimate_source_many(residuals, improved=improved),
                relabeled.estimate_source_many(residuals,
                                               improved=improved))
            assert np.array_equal(
                index.estimate_target_many(residuals, improved=improved),
                relabeled.estimate_target_many(residuals,
                                               improved=improved))
            assert np.array_equal(
                index.estimate_target_entries(residuals, entries,
                                              improved=improved),
                relabeled.estimate_target_entries(residuals, entries,
                                                  improved=improved))

    def test_degree_zero_rows_survive_relabeling(self, index, graph,
                                                 tmp_path):
        isolated = np.flatnonzero(graph.degrees == 0)
        if not isolated.size:
            pytest.skip("generator produced no isolated node")
        relabeled = _reload(index, tmp_path, node_order="degree")
        batch = np.zeros((1, graph.num_nodes))
        batch[0, isolated[0]] = 0.7
        assert relabeled.estimate_source_many(batch)[0, isolated[0]] == 0.7
        assert relabeled.estimate_target_many(batch)[0, isolated[0]] == 0.7

    def test_metadata_round_trips(self, index, tmp_path):
        relabeled = _reload(index, tmp_path, node_order="degree")
        assert relabeled.bank_node_order == "degree"
        assert relabeled.bank_dtype == "float64"
        assert relabeled.variance_mode == index.variance_mode

    def test_reserializing_an_attached_bank_keeps_its_order(
            self, index, tmp_path):
        relabeled = _reload(index, tmp_path, node_order="bfs")
        arrays, meta = relabeled.bank_arrays()
        assert meta["node_order"] == "bfs"
        assert "node_order" in arrays

    def test_permuted_fold_uses_the_gathered_rows(self, index, graph):
        # white-box: row i of the permuted operators must be row
        # node_order[i] of the plain ones, nonzeros copied verbatim
        order = node_ordering(graph, "degree")
        permuted = _BankOperators.permuted(index._operators, order)
        plain = index._operators.spread_source
        for row in (0, 1, graph.num_nodes - 1):
            a = permuted.spread_source[row]
            b = plain[order[row]]
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.data, b.data)
        assert permuted.tree_sum is index._operators.tree_sum


class TestShardRestriction:
    def test_ordered_parent_restricts_byte_identically(self, index,
                                                       graph, tmp_path):
        relabeled = _reload(index, tmp_path, node_order="degree")
        local = np.arange(0, graph.num_nodes, 3)
        plain_shard = index.restrict(local, shard_index=0, shard_count=3)
        ordered_shard = relabeled.restrict(local, shard_index=0,
                                           shard_count=3)
        a, _ = plain_shard.bank_arrays()
        b, _ = ordered_shard.bank_arrays()
        assert set(a) == set(b)
        for name in a:
            assert a[name].dtype == b[name].dtype, name
            assert np.array_equal(a[name], b[name]), name

    def test_shard_bank_refuses_relabeling(self, index, graph):
        shard = index.restrict(np.arange(0, graph.num_nodes, 2))
        with pytest.raises(ConfigError, match="shard banks"):
            shard.bank_arrays(node_order="degree")

    def test_permuted_rejects_bad_sources(self, index, graph):
        order = node_ordering(graph, "degree")
        permuted = _BankOperators.permuted(index._operators, order)
        with pytest.raises(ConfigError, match="already relabeled"):
            _BankOperators.permuted(permuted, order)
        with pytest.raises(ConfigError, match="permutation"):
            _BankOperators.permuted(index._operators, order[:-1])


class TestFloat32Bank:
    def test_answers_stay_within_the_documented_bound(self, index,
                                                      residuals,
                                                      tmp_path):
        compact = _reload(index, tmp_path, node_order="degree",
                          bank_dtype="float32")
        assert compact.bank_dtype == "float32"
        exact = index.estimate_source_many(residuals)
        rounded = compact.estimate_source_many(residuals)
        # float32 operator entries: per-query L1 error stays far below
        # any epsilon a query would request (documented in SERVING.md)
        assert np.abs(exact - rounded).sum(axis=1).max() < 1e-4
        assert np.allclose(exact, rounded, rtol=1e-4, atol=1e-6)

    def test_value_and_index_arrays_are_narrowed(self, index, tmp_path):
        compact = _reload(index, tmp_path, bank_dtype="float32")
        ops = compact._operators
        assert ops.spread_source.data.dtype == np.float32
        assert ops.spread_source.indices.dtype == np.int32
        assert ops.tree_sum.data.dtype == np.float32
        # bookkeeping arrays keep their native dtype
        assert ops.segment_root.dtype != np.float32

    def test_serialized_bytes_shrink(self, index):
        full = index.bank_nbytes()
        half = index.bank_nbytes(bank_dtype="float32")
        assert half < 0.75 * full
        # the lazy size matches an actual cast serialization
        arrays, _ = index.bank_arrays(bank_dtype="float32")
        assert half == sum(a.nbytes for a in arrays.values())

    def test_unknown_dtype_raises(self, index):
        with pytest.raises(ConfigError, match="bank_dtype"):
            index.bank_arrays(bank_dtype="float16")
        with pytest.raises(ConfigError, match="bank_dtype"):
            index.bank_nbytes(bank_dtype="float16")

    def test_dtype_constants_are_closed(self):
        assert BANK_DTYPES == ("float64", "float32")
        assert NODE_ORDERS == ("none", "degree", "bfs")


class TestBackCompat:
    """Pre-v3 banks carry no layout metadata and must keep loading."""

    def _save_as_version(self, index, path, version):
        index.save_bank(path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = version
        for key in ("bank_dtype", "node_order", "variance_mode"):
            manifest["meta"].pop(key, None)
        manifest_path.write_text(json.dumps(manifest))

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_banks_load_with_identity_defaults(self, index, residuals,
                                                   tmp_path, version):
        path = tmp_path / f"bank_v{version}"
        self._save_as_version(index, path, version)
        loaded = ForestIndex.load_bank(path, index.graph)
        assert loaded.bank_dtype == "float64"
        assert loaded.bank_node_order == "none"
        assert loaded.variance_mode == "improved"
        assert np.array_equal(index.estimate_source_many(residuals),
                              loaded.estimate_source_many(residuals))

    def test_newer_bank_is_refused(self, index, tmp_path):
        path = tmp_path / "bank_future"
        self._save_as_version(index, path, BANK_FORMAT_VERSION + 1)
        with pytest.raises(ConfigError, match="newer"):
            ForestIndex.load_bank(path, index.graph)


class TestDirectedAndDynamicGuards:
    def test_relabeled_bank_works_on_directed_graphs(self, tmp_path):
        # the permutation is kind-agnostic; only variance modes care
        # about directedness
        rng = np.random.default_rng(5)
        pairs = {(int(u), int(v)) for u, v in rng.integers(0, 20, (60, 2))
                 if u != v}
        graph = from_edges(sorted(pairs), directed=True, num_nodes=20)
        index = ForestIndex.build(graph, 0.3, 3, rng=5)
        relabeled = _reload(index, tmp_path, node_order="degree")
        batch = np.random.default_rng(0).random((2, 20))
        assert np.array_equal(index.estimate_source_many(batch),
                              relabeled.estimate_source_many(batch))
