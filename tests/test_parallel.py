"""Parallel chunked forest-sampling engine tests.

The load-bearing property is the determinism contract: at a fixed seed
the engine's output is **bit-identical** for every worker count, so
``workers`` is a pure throughput knob.  The equivalence tests exercise
the real fork-pool path (workers > 1 with a multi-chunk plan) against
the serial path on a 2k-node Chung–Lu graph.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import single_source, single_target
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.graph.generators import chung_lu
from repro.parallel import (
    DEFAULT_CHUNK_SIZE,
    SharedCSRGraph,
    StageResult,
    parallel_estimate_stage,
    plan_chunks,
    resolve_workers,
    sample_forests_parallel,
)

ALPHA = 0.15
SEED = 2022

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="engine falls back to serial without the fork start method")


@pytest.fixture(scope="module")
def graph():
    degrees = 1.5 + 6.0 * (np.arange(2000, dtype=np.float64) % 53) / 52.0
    return chung_lu(degrees, rng=SEED)


@pytest.fixture(scope="module")
def residual(graph):
    vector = np.zeros(graph.num_nodes)
    vector[::97] = 1.0
    return vector / vector.sum()


class TestPlanChunks:
    def test_sums_to_count(self):
        for count in [0, 1, 7, 8, 9, 64, 100]:
            assert sum(plan_chunks(count)) == count

    def test_pure_function_of_count(self):
        assert plan_chunks(100) == plan_chunks(100)
        assert plan_chunks(100) == [DEFAULT_CHUNK_SIZE] * 12 + [4]

    def test_chunk_size_override(self):
        assert plan_chunks(10, chunk_size=4) == [4, 4, 2]
        assert plan_chunks(10, chunk_size=100) == [10]

    def test_every_chunk_positive(self):
        assert all(size > 0 for size in plan_chunks(33, chunk_size=5))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            plan_chunks(-1)
        with pytest.raises(ConfigError):
            plan_chunks(10, chunk_size=0)


class TestResolveWorkers:
    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_none_and_zero_mean_cpu_count(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_rejects_negative_and_non_int(self):
        with pytest.raises(ConfigError):
            resolve_workers(-2)
        with pytest.raises(ConfigError):
            resolve_workers(1.5)


class TestSharedCSRGraph:
    def test_round_trip_bit_identical(self, graph):
        with SharedCSRGraph(graph) as shared:
            assert np.array_equal(shared.graph.indptr, graph.indptr)
            assert np.array_equal(shared.graph.indices, graph.indices)
            assert shared.graph.num_nodes == graph.num_nodes
            assert shared.graph.directed == graph.directed

    def test_views_are_read_only(self, graph):
        with SharedCSRGraph(graph) as shared:
            with pytest.raises(ValueError):
                shared.graph.indices[0] = 0

    def test_close_is_idempotent(self, graph):
        shared = SharedCSRGraph(graph)
        shared.close()
        shared.close()
        assert shared.graph is None

    def test_weighted_graph_round_trip(self):
        weighted = Graph(np.array([0, 2, 3, 4]), np.array([1, 2, 0, 0]),
                         np.array([0.5, 1.5, 2.0, 1.0]), directed=True)
        with SharedCSRGraph(weighted) as shared:
            assert np.array_equal(shared.graph.weights, weighted.weights)


class TestSampleForestsParallel:
    @fork_only
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("batch", [False, True])
    def test_identical_to_serial(self, graph, workers, batch):
        serial = sample_forests_parallel(graph, ALPHA, 24, rng=SEED,
                                         workers=1, batch=batch)
        parallel = sample_forests_parallel(graph, ALPHA, 24, rng=SEED,
                                           workers=workers, batch=batch)
        assert len(serial) == len(parallel) == 24
        for left, right in zip(serial, parallel):
            assert np.array_equal(left.roots, right.roots)
            assert np.array_equal(left.parents, right.parents)
            assert left.num_steps == right.num_steps

    def test_counters_accumulate(self, graph):
        work = WorkCounters()
        forests = sample_forests_parallel(graph, ALPHA, 10, rng=SEED,
                                          counters=work)
        assert work.forests_sampled == 10
        assert work.walk_steps == sum(f.num_steps for f in forests)
        assert work.cycle_pops == sum(f.num_pops for f in forests)

    def test_zero_count(self, graph):
        assert sample_forests_parallel(graph, ALPHA, 0, rng=SEED) == []

    def test_forests_are_valid(self, graph):
        for forest in sample_forests_parallel(graph, ALPHA, 3, rng=SEED):
            forest.validate()


class TestParallelEstimateStage:
    @fork_only
    @pytest.mark.parametrize("kind,improved", [
        ("source", False), ("source", True),
        ("target", False), ("target", True)])
    def test_bit_identical_to_serial(self, graph, residual, kind, improved):
        serial = parallel_estimate_stage(graph, ALPHA, 20, residual,
                                         kind=kind, improved=improved,
                                         rng=SEED, workers=1,
                                         track_squares=True)
        parallel = parallel_estimate_stage(graph, ALPHA, 20, residual,
                                           kind=kind, improved=improved,
                                           rng=SEED, workers=3,
                                           track_squares=True)
        assert np.array_equal(serial.sums, parallel.sums)
        assert np.array_equal(serial.squares, parallel.squares)
        assert serial.drawn == parallel.drawn == 20
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert parallel.workers_used > serial.workers_used

    @fork_only
    def test_chunk_size_changes_plan_not_samples_per_chunk_seed(self, graph,
                                                                residual):
        # the plan (and therefore the chunk seeds) depends on chunk_size,
        # so only identical chunking guarantees identical output
        same = [parallel_estimate_stage(graph, ALPHA, 16, residual,
                                        kind="source", improved=True,
                                        rng=SEED, workers=w, chunk_size=4)
                for w in (1, 4)]
        assert np.array_equal(same[0].sums, same[1].sums)
        assert same[0].num_chunks == same[1].num_chunks == 4

    def test_mean_and_stderr(self, graph, residual):
        stage = parallel_estimate_stage(graph, ALPHA, 12, residual,
                                        kind="source", improved=True,
                                        rng=SEED, track_squares=True)
        assert np.allclose(stage.mean, stage.sums / 12)
        stderr = stage.stderr()
        assert stderr is not None and np.all(stderr >= 0)
        # estimates a probability distribution: mass roughly sums to 1
        assert abs(stage.mean.sum() - 1.0) < 0.2

    def test_empty_stage(self, graph, residual):
        stage = parallel_estimate_stage(graph, ALPHA, 0, residual,
                                        kind="source", improved=False)
        assert stage.drawn == 0
        assert np.all(stage.mean == 0)
        assert stage.stderr() is None

    def test_rejects_bad_residual(self, graph):
        with pytest.raises(ConfigError):
            parallel_estimate_stage(graph, ALPHA, 4, np.zeros(3),
                                    kind="source", improved=False)

    def test_stage_result_no_squares(self):
        stage = StageResult(sums=np.ones(4), squares=None, drawn=2)
        assert stage.stderr() is None
        assert np.allclose(stage.mean, 0.5)


@fork_only
class TestQueryWorkerInvariance:
    """End-to-end: full queries are bit-identical across worker counts."""

    def test_single_source_speedlv(self, graph):
        serial = single_source(graph, 5, method="speedlv", alpha=ALPHA,
                               budget_scale=0.05, seed=SEED, workers=1)
        parallel = single_source(graph, 5, method="speedlv", alpha=ALPHA,
                                 budget_scale=0.05, seed=SEED, workers=4)
        assert np.array_equal(serial.estimates, parallel.estimates)
        assert serial.work.as_dict() == parallel.work.as_dict()

    def test_single_target_backlv(self, graph):
        serial = single_target(graph, 7, method="backlv", alpha=ALPHA,
                               budget_scale=0.05, seed=SEED, workers=1)
        parallel = single_target(graph, 7, method="backlv", alpha=ALPHA,
                                 budget_scale=0.05, seed=SEED, workers=4)
        assert np.array_equal(serial.estimates, parallel.estimates)
        assert serial.work.as_dict() == parallel.work.as_dict()

    def test_stats_report_workers_used(self, graph):
        result = single_source(graph, 5, method="speedlv", alpha=ALPHA,
                               budget_scale=0.05, seed=SEED, workers=4)
        assert result.stats["mc_workers"] >= 1
        assert result.stats["mc_chunks"] >= 0
        assert result.stats["work_forests_sampled"] >= 1
