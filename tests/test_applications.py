"""Tests for the application layer (clustering + ranking)."""

import numpy as np
import pytest

from repro.applications import (
    conductance,
    degree_normalized_rank,
    local_cluster,
    ppr_rank,
    sweep_cut,
    top_k_sources,
)
from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import complete_graph, erdos_renyi
from repro.linalg import exact_single_source


@pytest.fixture(scope="module")
def two_communities():
    """Two K8 cliques joined by a single bridge edge."""
    edges = []
    for base in (0, 8):
        for i in range(8):
            for j in range(i + 1, 8):
                edges.append((base + i, base + j))
    edges.append((0, 8))
    return from_edges(edges)


class TestConductance:
    def test_perfect_cut(self, two_communities):
        members = np.arange(8)
        # one bridge edge over volume 8*7+1
        assert conductance(two_communities, members) == pytest.approx(
            1.0 / 57.0)

    def test_empty_and_full(self, two_communities):
        assert conductance(two_communities, np.array([], dtype=int)) == 0.0
        assert conductance(two_communities, np.arange(16)) == 0.0

    def test_single_node_in_clique(self):
        graph = complete_graph(6)
        # node 0: cut 5, vol 5
        assert conductance(graph, np.array([0])) == pytest.approx(1.0)

    def test_weighted(self, weighted_triangle):
        # S = {0}: cut = w01 + w02 = 4, vol = 4, complement vol = 8
        assert conductance(weighted_triangle,
                           np.array([0])) == pytest.approx(1.0)

    def test_directed_rejected(self, directed_line):
        with pytest.raises(ConfigError):
            conductance(directed_line, np.array([0]))


class TestSweepCut:
    def test_recovers_planted_community(self, two_communities):
        exact = exact_single_source(two_communities, 2, 0.01)
        result = sweep_cut(two_communities, exact)
        assert set(result.members.tolist()) == set(range(8))
        assert result.conductance == pytest.approx(1.0 / 57.0)

    def test_sweep_profile_matches_conductance(self, two_communities):
        exact = exact_single_source(two_communities, 2, 0.01)
        result = sweep_cut(two_communities, exact)
        # spot-check the incremental conductances against the O(m) one
        for prefix_len in (1, 4, 8, 12):
            if prefix_len > result.order.size:
                continue
            want = conductance(two_communities,
                               result.order[:prefix_len])
            assert result.sweep_conductances[prefix_len - 1] == \
                pytest.approx(want)

    def test_max_cluster_size(self, two_communities):
        exact = exact_single_source(two_communities, 2, 0.01)
        result = sweep_cut(two_communities, exact, max_cluster_size=3)
        assert result.size <= 3

    def test_requires_positive_scores(self, k5):
        with pytest.raises(ConfigError):
            sweep_cut(k5, np.zeros(5))

    def test_shape_check(self, k5):
        with pytest.raises(ConfigError):
            sweep_cut(k5, np.ones(3))


class TestLocalCluster:
    def test_finds_planted_community(self, two_communities):
        result = local_cluster(two_communities, 3, alpha=0.01,
                               method="speedlv", seed=5)
        assert set(result.members.tolist()) == set(range(8))

    def test_other_side(self, two_communities):
        result = local_cluster(two_communities, 12, alpha=0.01,
                               method="foralv", seed=5)
        assert set(result.members.tolist()) == set(range(8, 16))


class TestRanking:
    def test_ppr_rank_prefers_neighbors(self):
        graph = erdos_renyi(60, 0.08, rng=55)
        ranked = ppr_rank(graph, 0, k=5, alpha=0.2, seed=1)
        assert len(ranked) == 5
        assert all(node != 0 for node, _ in ranked)
        neighbor_set = set(graph.neighbors(0).tolist())
        assert any(node in neighbor_set for node, _ in ranked)

    def test_include_source_dominates(self):
        graph = erdos_renyi(60, 0.08, rng=55)
        ranked = ppr_rank(graph, 0, k=3, alpha=0.3, seed=1,
                          include_source=True)
        assert ranked[0][0] == 0

    def test_degree_normalized_rank_runs(self):
        graph = erdos_renyi(60, 0.08, rng=55)
        ranked = degree_normalized_rank(graph, 0, k=5, alpha=0.05, seed=2)
        assert len(ranked) == 5

    def test_top_k_sources_excludes_target(self):
        graph = erdos_renyi(60, 0.08, rng=55)
        ranked = top_k_sources(graph, 7, k=5, alpha=0.2, seed=3)
        assert all(node != 7 for node, _ in ranked)
        # a neighbour of the target should rank highly
        neighbor_set = set(graph.neighbors(7).tolist())
        assert ranked[0][0] in neighbor_set

    def test_k_validation(self, k5):
        with pytest.raises(ConfigError):
            ppr_rank(k5, 0, k=0, alpha=0.2)
