"""Sharding subsystem: partition round-trips, restriction identity,
scatter-gather routing, and the sharded index lifecycle.

The load-bearing contract is *bit identity*: a sharded deployment must
return exactly the bytes an unsharded one returns at the same seed,
for every query kind.  The tests here enforce that at three layers —
the restricted fold operators, the router over real forked worker
pools, and the service facade — plus the exact-partition guarantee of
the graph partitioner and the per-shard repair accounting of the
dynamic lifecycle.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.config import PPRConfig
from repro.exceptions import ConfigError, ReproError
from repro.graph import from_edges
from repro.graph.delta import GraphDelta, parse_edge_spec
from repro.graph.generators import erdos_renyi, with_random_weights
from repro.linalg import exact_ppr_matrix
from repro.montecarlo.forest_index import ForestIndex
from repro.parallel.shared_bank import BANK_FORMAT_VERSION, bank_manifest
from repro.service import (
    IndexManager,
    PPRService,
    ProcessExecutor,
    ServiceConfig,
)
from repro.shard import (
    STRATEGIES,
    ShardMap,
    merge_subgraphs,
    partition_graph,
)
from repro.shard.router import (
    SLOWDOWN_ENV,
    ShardRouter,
    StragglerDetector,
    bounded_topk_merge,
)

SEED = 2022
ALPHA = 0.2
EPSILON = 0.5


# ---------------------------------------------------------------------
class TestShardMap:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_partitions_the_node_space(self, strategy):
        shard_map = ShardMap(101, 4, strategy)
        assert shard_map.shard_of.shape == (101,)
        assert shard_map.shard_of.min() >= 0
        assert shard_map.shard_of.max() < 4
        assert int(shard_map.shard_sizes.sum()) == 101
        owned = np.concatenate([shard_map.local_nodes(shard)
                                for shard in range(4)])
        assert np.array_equal(np.sort(owned), np.arange(101))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_locate_inverts_local_nodes(self, strategy):
        shard_map = ShardMap(57, 3, strategy)
        for shard in range(3):
            for local, node in enumerate(shard_map.local_nodes(shard)):
                assert shard_map.locate(int(node)) == (shard, local)

    def test_local_nodes_ascending(self):
        shard_map = ShardMap(200, 5, "hash")
        for shard in range(5):
            owned = shard_map.local_nodes(shard)
            assert np.all(np.diff(owned) > 0)

    def test_range_strategy_is_contiguous(self):
        shard_map = ShardMap(10, 3, "range")
        blocks = [shard_map.local_nodes(shard).tolist()
                  for shard in range(3)]
        assert blocks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_dict_round_trip_and_determinism(self):
        shard_map = ShardMap(64, 4, "hash")
        rebuilt = ShardMap.from_dict(shard_map.to_dict())
        assert rebuilt == shard_map
        assert np.array_equal(rebuilt.shard_of, shard_map.shard_of)
        assert np.array_equal(rebuilt.local_of, shard_map.local_of)

    def test_validation(self):
        with pytest.raises(ConfigError, match="num_shards"):
            ShardMap(10, 0)
        with pytest.raises(ConfigError, match="strategy"):
            ShardMap(10, 2, "modulo")
        with pytest.raises(ConfigError, match="out of range"):
            ShardMap(10, 2).locate(10)
        with pytest.raises(ConfigError, match="out of range"):
            ShardMap(10, 2).local_nodes(2)


# ---------------------------------------------------------------------
def _assert_same_graph(merged, graph):
    assert merged.num_nodes == graph.num_nodes
    assert np.array_equal(merged.indptr, graph.indptr)
    assert np.array_equal(merged.indices, graph.indices)
    if graph.weights is None:
        assert merged.weights is None or np.all(merged.weights == 1.0)
    else:
        assert np.array_equal(merged.weights, graph.weights)


class TestPartitionMerge:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", [1, 3, 7])
    def test_round_trip_er_graph(self, strategy, num_shards):
        graph = erdos_renyi(60, 0.1, rng=SEED)
        shard_map = ShardMap(graph.num_nodes, num_shards, strategy)
        merged = merge_subgraphs(partition_graph(graph, shard_map))
        _assert_same_graph(merged, graph)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_round_trip_weighted(self, strategy):
        graph = with_random_weights(erdos_renyi(40, 0.15, rng=3),
                                    low=0.5, high=4.0, rng=11)
        shard_map = ShardMap(graph.num_nodes, 4, strategy)
        merged = merge_subgraphs(partition_graph(graph, shard_map))
        _assert_same_graph(merged, graph)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_round_trip_directed(self, strategy):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (3, 1), (4, 0)],
                           num_nodes=6, directed=True)
        shard_map = ShardMap(graph.num_nodes, 3, strategy)
        merged = merge_subgraphs(partition_graph(graph, shard_map),
                                 directed=True)
        assert merged.directed
        _assert_same_graph(merged, graph)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_property_random_graphs(self, strategy):
        """Seeded sweep over sizes, densities, weights, shard counts."""
        rng = np.random.default_rng(99)
        for _ in range(8):
            num_nodes = int(rng.integers(2, 80))
            density = float(rng.uniform(0.02, 0.3))
            graph = erdos_renyi(num_nodes, density,
                                rng=int(rng.integers(1 << 30)))
            if rng.random() < 0.5:
                graph = with_random_weights(
                    graph, rng=int(rng.integers(1 << 30)))
            num_shards = int(rng.integers(1, num_nodes + 1))
            shard_map = ShardMap(num_nodes, num_shards, strategy)
            merged = merge_subgraphs(partition_graph(graph, shard_map))
            _assert_same_graph(merged, graph)

    def test_merge_rejects_non_partitions(self):
        import dataclasses

        graph = erdos_renyi(20, 0.2, rng=1)
        shard_map = ShardMap(20, 4, "hash")
        subgraphs = partition_graph(graph, shard_map)
        with pytest.raises(ConfigError, match="no subgraphs"):
            merge_subgraphs([])
        # dropping a shard shrinks the implied node space, so the
        # remaining owners' ids fall out of range
        with pytest.raises(ConfigError, match="not a partition"):
            merge_subgraphs(subgraphs[:-1])
        with pytest.raises(ConfigError, match="already claimed"):
            merge_subgraphs(subgraphs + [subgraphs[0]])
        sparse = from_edges([(0, 1)], num_nodes=4)
        halves = partition_graph(sparse, ShardMap(4, 2, "range"))
        orphaning = dataclasses.replace(halves[1],
                                        nodes=np.array([2, 2]))
        with pytest.raises(ConfigError, match="owned by no subgraph"):
            merge_subgraphs([halves[0], orphaning])

    def test_partition_checks_node_count(self):
        graph = erdos_renyi(20, 0.2, rng=1)
        with pytest.raises(ConfigError, match="covers"):
            partition_graph(graph, ShardMap(19, 2))


# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph30():
    return erdos_renyi(30, 0.2, rng=7)


@pytest.fixture(scope="module")
def index30(graph30):
    return ForestIndex.build(graph30, ALPHA, 64, rng=SEED)


class TestRestrictionIdentity:
    """A shard bank's fold must equal the full bank's rows, bitwise."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_source_and_target_rows(self, graph30, index30, strategy):
        shard_map = ShardMap(graph30.num_nodes, 3, strategy)
        rng = np.random.default_rng(5)
        residuals = rng.random((4, graph30.num_nodes))
        full_source = index30.estimate_source_many(residuals)
        full_target = index30.estimate_target_many(residuals)
        for shard in range(3):
            local = shard_map.local_nodes(shard)
            restricted = index30.restrict(local, shard_index=shard,
                                          shard_count=3,
                                          strategy=strategy)
            assert np.array_equal(
                restricted.estimate_source_many(residuals),
                full_source[:, local])
            assert np.array_equal(
                restricted.estimate_target_many(residuals),
                full_target[:, local])

    def test_merged_shards_match_full_and_oracle(self, graph30):
        """Shard-merged estimates == whole-bank estimates bitwise, and
        the whole bank tracks the exact operator (the oracle check the
        cut-edge handling is accountable to)."""
        index = ForestIndex.build(graph30, ALPHA, 800, rng=SEED)
        shard_map = ShardMap(graph30.num_nodes, 3, "hash")
        sources = np.arange(5)
        residuals = np.eye(graph30.num_nodes)[sources]
        full = index.estimate_source_many(residuals)
        merged = np.empty_like(full)
        for shard in range(3):
            local = shard_map.local_nodes(shard)
            restricted = index.restrict(local, shard_index=shard,
                                        shard_count=3)
            merged[:, local] = restricted.estimate_source_many(residuals)
        assert np.array_equal(merged, full)
        exact = exact_ppr_matrix(graph30, ALPHA)[sources]
        assert float(np.abs(merged - exact).max()) < 0.08

    def test_target_entries_on_shard(self, graph30, index30):
        shard_map = ShardMap(graph30.num_nodes, 3, "hash")
        local = shard_map.local_nodes(1)
        restricted = index30.restrict(local, shard_index=1, shard_count=3)
        entries = local[[0, 2, 2]]
        rng = np.random.default_rng(9)
        residuals = rng.random((3, graph30.num_nodes))
        full_rows = index30.estimate_target_many(residuals)
        expected = full_rows[np.arange(3), entries]
        got = restricted.estimate_target_entries(residuals, entries)
        assert np.array_equal(got, expected)

    def test_target_entries_reject_foreign_nodes(self, graph30, index30):
        shard_map = ShardMap(graph30.num_nodes, 3, "hash")
        local = shard_map.local_nodes(1)
        restricted = index30.restrict(local, shard_index=1, shard_count=3)
        foreign = shard_map.local_nodes(0)[:1]
        residuals = np.random.default_rng(9).random(
            (1, graph30.num_nodes))
        with pytest.raises(ConfigError, match="not owned"):
            restricted.estimate_target_entries(residuals, foreign)

    def test_double_restriction_rejected(self, graph30, index30):
        shard_map = ShardMap(graph30.num_nodes, 2, "hash")
        restricted = index30.restrict(shard_map.local_nodes(0),
                                      shard_index=0, shard_count=2)
        with pytest.raises(ConfigError):
            restricted.restrict(shard_map.local_nodes(0)[:1])


class TestShardBankFormat:
    def test_restricted_bank_round_trip(self, tmp_path, graph30,
                                        index30):
        shard_map = ShardMap(graph30.num_nodes, 3, "hash")
        local = shard_map.local_nodes(2)
        restricted = index30.restrict(local, shard_index=2,
                                      shard_count=3)
        bank_dir = tmp_path / "shard-2"
        restricted.save_bank(bank_dir)
        manifest = bank_manifest(bank_dir)
        assert manifest["version"] == BANK_FORMAT_VERSION
        assert manifest["meta"]["shard_index"] == 2
        assert manifest["meta"]["shard_count"] == 3
        loaded = ForestIndex.load_bank(bank_dir, graph30)
        assert np.array_equal(loaded.local_nodes, local)
        residuals = np.random.default_rng(4).random(
            (2, graph30.num_nodes))
        assert np.array_equal(
            loaded.estimate_source_many(residuals),
            restricted.estimate_source_many(residuals))

    def test_older_manifest_versions_still_load(self, tmp_path,
                                                graph30, index30):
        bank_dir = tmp_path / "bank"
        index30.save_bank(bank_dir)
        manifest_path = bank_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        assert bank_manifest(bank_dir)["version"] == 1
        loaded = ForestIndex.load_bank(bank_dir, graph30)
        assert loaded.num_forests == index30.num_forests

    def test_newer_manifest_versions_rejected(self, tmp_path, graph30,
                                              index30):
        bank_dir = tmp_path / "bank"
        index30.save_bank(bank_dir)
        manifest_path = bank_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="version"):
            bank_manifest(bank_dir)


# ---------------------------------------------------------------------
class TestBoundedTopkMerge:
    def test_merges_across_shards(self):
        top, exact = bounded_topk_merge(
            [[(1, 0.5), (2, 0.2)], [(3, 0.4), (4, 0.1)]], 3)
        assert top == [(1, 0.5), (3, 0.4), (2, 0.2)]
        assert exact

    def test_ties_break_by_node_id(self):
        top, _ = bounded_topk_merge([[(7, 0.3)], [(2, 0.3)]], 2)
        assert top == [(2, 0.3), (7, 0.3)]

    def test_short_result_exact_only_without_tail_mass(self):
        _, exact = bounded_topk_merge([[(1, 0.5)]], 3,
                                      tail_bounds=[0.0])
        assert exact
        _, exact = bounded_topk_merge([[(1, 0.5)]], 3,
                                      tail_bounds=[0.01])
        assert not exact

    def test_cutoff_vs_tail_bounds(self):
        candidates = [[(1, 0.5), (2, 0.4)], [(3, 0.3)]]
        _, exact = bounded_topk_merge(candidates, 2,
                                      tail_bounds=[0.1, 0.35])
        assert exact  # cutoff 0.4 dominates both bounds
        _, exact = bounded_topk_merge(candidates, 2,
                                      tail_bounds=[0.45, 0.0])
        assert not exact


class TestStragglerDetector:
    def test_min_samples_guard(self):
        detector = StragglerDetector(min_samples=8)
        # even absurd folds go unflagged until the window can
        # estimate a distribution
        for index in range(8):
            assert detector.observe(index % 2, 10.0) is None

    def test_flags_outlier_after_honest_warmup(self):
        detector = StragglerDetector(min_samples=8, z_threshold=3.0)
        for index in range(20):
            jitter = (index % 3) * 0.001
            assert detector.observe(index % 2, 0.010 + jitter) is None
        z = detector.observe(2, 1.0)
        assert z is not None and z >= 3.0
        stats = detector.stats()
        rows = {row["shard"]: row for row in stats["per_shard"]}
        assert rows[2]["straggler_folds"] == 1
        assert rows[2]["folds"] == 1
        assert rows[0]["straggler_folds"] == 0
        assert rows[2]["last_z"] >= 3.0
        assert stats["window"] == 21
        assert stats["z_threshold"] == 3.0

    def test_sigma_floor_suppresses_microsecond_jitter(self):
        detector = StragglerDetector(min_samples=4, min_sigma=1e-3)
        for _ in range(10):
            detector.observe(0, 0.005)
        # 0.2 ms above a perfectly flat baseline: sigma is floored,
        # so tiny absolute jitter never alerts
        assert detector.observe(1, 0.0052) is None

    def test_outlier_judged_against_window_before_it_joins(self):
        detector = StragglerDetector(min_samples=4)
        for _ in range(8):
            detector.observe(0, 0.01)
        # the slow fold cannot dilute its own baseline
        assert detector.observe(1, 0.5) is not None

    def test_validation(self):
        with pytest.raises(ConfigError, match="window"):
            StragglerDetector(window=1)
        with pytest.raises(ConfigError, match="min_samples"):
            StragglerDetector(min_samples=1)
        with pytest.raises(ConfigError, match="z_threshold"):
            StragglerDetector(z_threshold=0.0)


class TestStragglerInjection:
    def test_forced_slow_shard_flagged_end_to_end(self, router_setup,
                                                  monkeypatch):
        _, _, router = router_setup
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        # honest warmup fills the cross-shard baseline window
        for node in range(6):
            router.run_batch("test", "source", ALPHA, EPSILON, (node,))
        monkeypatch.setenv(SLOWDOWN_ENV, "1:0.75")
        stats: dict = {}
        router.run_batch("test", "source", ALPHA, EPSILON, (50,),
                         stats=stats)
        flagged = {entry["shard"] for entry in stats["stragglers"]}
        assert flagged == {1}
        (entry,) = stats["stragglers"]
        assert entry["fold_seconds"] >= 0.75
        assert entry["z"] >= 3.0
        rows = {row["shard"]: row
                for row in router.straggler_stats()["per_shard"]}
        assert rows[1]["straggler_folds"] >= 1


class TestShardedServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigError, match="shards"):
            ServiceConfig(shards=0)
        with pytest.raises(ConfigError, match="shard_strategy"):
            ServiceConfig(shard_strategy="modulo")
        with pytest.raises(ConfigError, match="executor='process'"):
            ServiceConfig(shards=2, executor="thread")
        config = ServiceConfig(shards=2, executor="process", workers=1)
        assert "shards          2 (hash)" in config.describe()


# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(200, 0.03, rng=SEED)


def _manager(graph, **overrides):
    config = PPRConfig(alpha=ALPHA, epsilon=EPSILON, seed=SEED,
                       budget_scale=0.05)
    manager = IndexManager(config, num_forests=4, **overrides)
    manager.register_graph("test", graph)
    return manager


@pytest.fixture(scope="module")
def router_setup(graph):
    """One manager serving both a flat pool and a 3-shard router."""
    manager = _manager(graph, shards=3)
    flat = ProcessExecutor(manager, workers=1).start()
    router = ShardRouter(manager, workers_per_shard=1).start()
    yield manager, flat, router
    router.shutdown()
    flat.shutdown()
    manager.close_shared()


class TestShardedManager:
    def test_shared_view_publishes_restrictions(self, graph):
        manager = _manager(graph, shards=2)
        try:
            view = manager.shared_view("test", shard=1)
            try:
                meta = view.index_handle.meta_dict
                assert meta["shard_index"] == 1
                assert meta["shard_count"] == 2
            finally:
                view.release()
            with pytest.raises(ConfigError, match="shard"):
                manager.shared_view("test", shard=2)
        finally:
            manager.close_shared()

    def test_shard_map_matches_strategy(self, graph):
        manager = _manager(graph, shards=4, shard_strategy="range")
        shard_map = manager.shard_map("test")
        assert shard_map == ShardMap(graph.num_nodes, 4, "range")
        assert manager.stats()["shards"] == 4
        assert manager.stats()["shard_strategy"] == "range"

    def test_mutate_attributes_repair_to_owning_shards(self, graph):
        """Acceptance: dirty nodes confined to one shard leave every
        other shard's repair counter exactly zero."""
        manager = _manager(graph, shards=4, dynamic=True)
        manager.get_index("test")
        shard_map = manager.shard_map("test")
        owned = shard_map.local_nodes(2)
        u, v = int(owned[0]), int(owned[1])
        delta = GraphDelta([parse_edge_spec(f"{u}:{v}:1.5",
                                            op="upsert")])
        summary = manager.mutate("test", delta)
        assert sorted(summary["dirty_nodes"]) == sorted([u, v])
        per_shard = {entry["shard"]: entry
                     for entry in summary["shards"]}
        assert set(per_shard) == {0, 1, 2, 3}
        assert per_shard[2]["dirty_nodes"] == 2
        for shard in (0, 1, 3):
            assert per_shard[shard]["dirty_nodes"] == 0
            assert per_shard[shard]["repair_dirty_nodes"] == 0
        total = sum(entry["repair_dirty_nodes"]
                    for entry in summary["shards"])
        assert total == summary["work"]["repair_dirty_nodes"]
        assert per_shard[2]["repair_dirty_nodes"] == total


class TestShardRouter:
    def test_requires_multiple_shards(self, graph):
        manager = _manager(graph)
        with pytest.raises(ConfigError, match="shards"):
            ShardRouter(manager)
        manager.close_shared()

    def test_warm_covers_every_shard(self, router_setup):
        _, _, router = router_setup
        assert router.warm("test", ALPHA) == 3
        stats = router.stats()
        assert stats["mode"] == "sharded"
        assert stats["shards"] == 3
        assert stats["workers"] == 3
        assert len(stats["per_shard"]) == 3

    @pytest.mark.parametrize("kind", ["source", "target"])
    def test_vector_kinds_bit_identical(self, router_setup, kind):
        _, flat, router = router_setup
        items = (0, 5, 17, 150)
        flat_results = flat.run_batch("test", kind, ALPHA, EPSILON,
                                      items)
        routed = router.run_batch("test", kind, ALPHA, EPSILON, items)
        for one, other in zip(flat_results, routed):
            assert np.array_equal(one.estimates, other.estimates)
            # stats match except wall-clock timings, which are real
            # measurements on both paths
            deterministic = {key: value
                             for key, value in one.stats.items()
                             if not key.endswith("_seconds")}
            assert deterministic == {
                key: value for key, value in other.stats.items()
                if not key.endswith("_seconds")}

    def test_multiseed_bit_identical(self, router_setup):
        _, flat, router = router_setup
        items = (((1, 2, 5), (0.2, 0.3, 0.5)), ((0, 9), (0.5, 0.5)))
        flat_results = flat.run_batch("test", "multiseed", ALPHA,
                                      EPSILON, items)
        routed = router.run_batch("test", "multiseed", ALPHA, EPSILON,
                                  items)
        for one, other in zip(flat_results, routed):
            assert np.array_equal(one.estimates, other.estimates)

    def test_topk_bit_identical(self, router_setup):
        _, flat, router = router_setup
        items = ((3, 5), (42, 3))
        flat_results = flat.run_batch("test", "topk", ALPHA, EPSILON,
                                      items)
        routed = router.run_batch("test", "topk", ALPHA, EPSILON, items)
        for one, other in zip(flat_results, routed):
            assert np.array_equal(one.nodes, other.nodes)
            assert np.array_equal(one.estimates, other.estimates)
            assert one.converged == other.converged

    def test_pair_bit_identical_across_groups(self, router_setup):
        manager, flat, router = router_setup
        shard_map = manager.shard_map("test")
        # pick sources owned by three different shards so the router
        # has to scatter the batch and reassemble it in order
        sources = [int(shard_map.local_nodes(shard)[0])
                   for shard in range(3)]
        items = tuple((source, (source + 7) % 200)
                      for source in sources) + ((sources[0], 11),)
        assert len({shard_map.shard_of[s] for s, _ in items}) == 3
        flat_results = flat.run_batch("test", "pair", ALPHA, EPSILON,
                                      items)
        stats: dict = {}
        routed = router.run_batch("test", "pair", ALPHA, EPSILON,
                                  items, stats=stats)
        for one, other in zip(flat_results, routed):
            assert float(one) == float(other)
            assert one.source == other.source
            assert one.target == other.target
        assert len(stats["per_shard"]) == 3

    def test_scatter_reports_per_shard_folds(self, router_setup):
        _, _, router = router_setup
        stats: dict = {}
        router.run_batch("test", "source", ALPHA, EPSILON, (1,),
                         stats=stats)
        shards = [entry["shard"] for entry in stats["per_shard"]]
        assert shards == [0, 1, 2]
        assert stats["fold_seconds"] >= max(
            0.0, *(entry["fold_seconds"]
                   for entry in stats["per_shard"]))


class TestWarmBanksList:
    def test_per_worker_bank_specs(self, graph):
        manager = _manager(graph)
        executor = ProcessExecutor(manager, workers=2).start()
        try:
            assert executor.warm(banks=[("test", None), None]) == 1
            assert executor.warm(banks=[("test", ALPHA),
                                        ("test", ALPHA)]) == 2
            with pytest.raises(ReproError, match="banks"):
                executor.warm(banks=[("test", None)])
            with pytest.raises(ReproError, match="graph"):
                executor.warm()
        finally:
            executor.shutdown()
            manager.close_shared()


# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_service(graph):
    config = ServiceConfig(graph="test", alpha=ALPHA, epsilon=EPSILON,
                           budget_scale=0.05, seed=SEED, max_batch=8,
                           max_wait_ms=5.0, queue_capacity=64,
                           cache_entries=16, port=0,
                           executor="process", workers=1, shards=2)
    with PPRService(config, graph=graph) as svc:
        yield svc


class TestShardedService:
    def test_healthz_reports_shard_layout(self, graph, sharded_service):
        health = sharded_service.healthz()
        block = health["shards"]
        assert block["count"] == 2
        assert block["strategy"] == "hash"
        assert sum(entry["nodes"] for entry in block["per_shard"]) \
            == graph.num_nodes
        assert sum(entry["edges"] for entry in block["per_shard"]) \
            == graph.indices.size

    def test_answers_match_unsharded_solver(self, graph,
                                            sharded_service):
        # same config => same recommended bank size as the service
        fresh = IndexManager(PPRConfig(alpha=ALPHA, epsilon=EPSILON,
                                       seed=SEED, budget_scale=0.05))
        fresh.register_graph("test", graph)
        try:
            direct = fresh.get_solver("test", "source", alpha=ALPHA,
                                      epsilon=EPSILON)
            for node in (0, 5, 17):
                served, _ = sharded_service.query_result(
                    "source", node, use_cache=False)
                assert np.array_equal(served.estimates,
                                      direct.query(node).estimates)
        finally:
            fresh.close_shared()

    def test_shard_fold_histograms_exposed(self, sharded_service):
        sharded_service.query("source", 3)
        text = sharded_service.metrics_text()
        assert 'repro_service_shard_fold_seconds_bucket{shard="0"' \
            in text
        assert 'repro_service_shard_fold_seconds_bucket{shard="1"' \
            in text

    def test_forced_slow_shard_attributed_in_statusz(
            self, sharded_service, monkeypatch):
        """Acceptance: a forced-slow shard is flagged and attributed
        per-shard in ``/statusz``."""
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        for node in range(20, 28):  # honest warmup, no cache hits
            sharded_service.query("source", node)
        monkeypatch.setenv(SLOWDOWN_ENV, "1:0.75")
        sharded_service.query("source", 99)
        payload = sharded_service.statusz()
        detector = payload["stragglers"]
        rows = {row["shard"]: row for row in detector["per_shard"]}
        assert rows[1]["straggler_folds"] >= 1
        assert rows[0]["straggler_folds"] == 0
        assert rows[1]["last_z"] >= detector["z_threshold"]
        # the metrics-side attribution agrees with the detector
        shard_rows = {row["shard"]: row for row in payload["shards"]}
        assert shard_rows[1]["straggler_folds"] >= 1
        assert shard_rows[0]["straggler_folds"] == 0
        text = sharded_service.metrics_text()
        assert 'repro_service_straggler_folds_total{shard="1"}' in text
