"""Shared-memory / memmap array banks (:mod:`repro.parallel.shared_bank`).

Covers the owner/borrower refcount lifecycle (retire defers unlink
until the last borrower drops), attach-by-name from a process that did
*not* inherit the mapping, and the on-disk manifest format including
its validation errors.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.parallel.shared_bank import (
    BANK_FORMAT_VERSION,
    AttachedBank,
    SharedArrayBank,
    attach_bank,
    bank_manifest,
    load_array_bank,
    save_array_bank,
)


@pytest.fixture
def arrays():
    return {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([7, 8, 9], dtype=np.int32),
        "empty": np.zeros(0, dtype=np.int64),
    }


class TestSharedArrayBank:
    def test_roundtrip_through_handle(self, arrays):
        with SharedArrayBank(arrays, meta={"alpha": 0.2}) as bank:
            attached = attach_bank(bank.handle)
            for name, array in arrays.items():
                assert np.array_equal(attached.arrays[name], array)
                assert attached.arrays[name].dtype == array.dtype
            assert attached.meta == {"alpha": 0.2}
            attached.close()

    def test_views_are_read_only(self, arrays):
        with SharedArrayBank(arrays) as bank:
            with pytest.raises(ValueError):
                bank.arrays["a"][0, 0] = -1.0
            attached = attach_bank(bank.handle)
            with pytest.raises(ValueError):
                attached.arrays["b"][0] = -1
            attached.close()

    def test_handle_is_picklable_and_sized(self, arrays):
        import pickle

        with SharedArrayBank(arrays) as bank:
            handle = pickle.loads(pickle.dumps(bank.handle))
            assert handle == bank.handle
            expected = sum(a.nbytes for a in arrays.values())
            assert handle.nbytes == expected

    def test_empty_bank_rejected(self):
        with pytest.raises(ConfigError):
            SharedArrayBank({})

    def test_retire_defers_unlink_until_last_release(self, arrays):
        bank = SharedArrayBank(arrays)
        bank.acquire()
        bank.acquire()
        bank.retire()
        assert bank.retired and not bank.unlinked
        # borrowers can still attach-by-name while the bank lives
        attached = attach_bank(bank.handle)
        assert np.array_equal(attached.arrays["b"], arrays["b"])
        attached.close()
        bank.release()
        assert not bank.unlinked
        bank.release()
        assert bank.unlinked
        with pytest.raises(ConfigError):
            bank.acquire()

    def test_retire_with_no_borrowers_unlinks_now(self, arrays):
        bank = SharedArrayBank(arrays)
        bank.retire()
        assert bank.unlinked
        with pytest.raises(FileNotFoundError):
            AttachedBank(bank.handle)

    def test_close_is_idempotent(self, arrays):
        bank = SharedArrayBank(arrays)
        bank.close()
        bank.close()
        assert bank.unlinked


def _child_sum(handle, queue):
    attached = attach_bank(handle)
    queue.put(float(attached.arrays["a"].sum()))
    attached.close()


class TestCrossProcessAttach:
    def test_fresh_process_attaches_by_name(self, arrays):
        """A worker that forked *before* the bank existed can attach."""
        ctx = multiprocessing.get_context("fork")
        with SharedArrayBank(arrays) as bank:
            queue = ctx.Queue()
            child = ctx.Process(target=_child_sum,
                                args=(bank.handle, queue))
            child.start()
            try:
                assert queue.get(timeout=30) == arrays["a"].sum()
            finally:
                child.join(timeout=30)


class TestDiskFormat:
    def test_roundtrip(self, arrays, tmp_path):
        save_array_bank(tmp_path / "bank", arrays, meta={"n": 3})
        for mmap in (True, False):
            loaded, meta = load_array_bank(tmp_path / "bank", mmap=mmap)
            assert meta == {"n": 3}
            for name, array in arrays.items():
                assert np.array_equal(loaded[name], array)

    def test_mmap_default_is_lazy_readonly(self, arrays, tmp_path):
        save_array_bank(tmp_path / "bank", arrays)
        loaded, _ = load_array_bank(tmp_path / "bank")
        assert isinstance(loaded["a"], np.memmap)
        with pytest.raises(ValueError):
            loaded["a"][0, 0] = 0.0

    def test_manifest_reads_without_array_io(self, arrays, tmp_path):
        save_array_bank(tmp_path / "bank", arrays)
        manifest = bank_manifest(tmp_path / "bank")
        assert manifest["version"] == BANK_FORMAT_VERSION
        assert set(manifest["arrays"]) == set(arrays)
        assert manifest["arrays"]["a"]["dtype"] == "float64"

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not an array-bank"):
            bank_manifest(tmp_path)

    def test_newer_version_rejected(self, arrays, tmp_path):
        save_array_bank(tmp_path / "bank", arrays)
        manifest_path = tmp_path / "bank" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = BANK_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="newer"):
            load_array_bank(tmp_path / "bank")

    def test_member_shape_mismatch_rejected(self, arrays, tmp_path):
        save_array_bank(tmp_path / "bank", arrays)
        np.save(tmp_path / "bank" / "b.npy",
                np.zeros(99, dtype=np.int32))
        with pytest.raises(ConfigError, match="manifest entry"):
            load_array_bank(tmp_path / "bank")

    def test_bad_array_name_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_array_bank(tmp_path / "bank",
                            {"../escape": np.zeros(1)})
