"""Exact solver tests: Eq. 1/2/4 consistency, conventions, power iteration."""

import numpy as np
import pytest

from repro.exceptions import ConfigError, ConvergenceError
from repro.linalg import (
    ExactSolver,
    exact_ppr_matrix,
    exact_single_source,
    exact_single_target,
    power_iteration_single_source,
    power_iteration_single_target,
)
from repro.linalg.transition import dangling_nodes, transition_matrix


class TestExactMatrix:
    def test_rows_sum_to_one(self, random_graph):
        matrix = exact_ppr_matrix(random_graph, 0.15)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_nonnegative(self, random_graph):
        assert np.all(exact_ppr_matrix(random_graph, 0.15) >= -1e-14)

    def test_defining_linear_equation(self, weighted_small):
        # p_s = alpha * e_s + (1 - alpha) * p_s P  (Eq. 1)
        alpha = 0.2
        matrix = exact_ppr_matrix(weighted_small, alpha)
        transition = transition_matrix(weighted_small).toarray()
        for source in range(weighted_small.num_nodes):
            row = matrix[source]
            unit = np.zeros(weighted_small.num_nodes)
            unit[source] = 1.0
            assert np.allclose(row, alpha * unit + (1 - alpha) * row @ transition)

    def test_alpha_one_limit(self, k5):
        # alpha -> 1: the walk stops immediately, PPR -> identity
        matrix = exact_ppr_matrix(k5, 0.999999)
        assert np.allclose(matrix, np.eye(5), atol=1e-5)

    def test_diagonal_dominates_on_path_ends(self, path4):
        matrix = exact_ppr_matrix(path4, 0.3)
        assert matrix[0, 0] > matrix[0, 1] > matrix[0, 2] > matrix[0, 3]

    def test_symmetric_graph_symmetry(self, cycle6):
        # vertex-transitive graph: pi(s, t) depends only on distance
        matrix = exact_ppr_matrix(cycle6, 0.2)
        assert matrix[0, 1] == pytest.approx(matrix[0, 5], rel=1e-12)
        assert matrix[0, 2] == pytest.approx(matrix[0, 4], rel=1e-12)

    def test_invalid_alpha(self, k5):
        for alpha in (0.0, 1.0, -0.1, 1.7):
            with pytest.raises(ConfigError):
                exact_ppr_matrix(k5, alpha)


class TestExactSolver:
    def test_row_and_column_agree_with_matrix(self, random_weighted_graph):
        alpha = 0.1
        matrix = exact_ppr_matrix(random_weighted_graph, alpha)
        solver = ExactSolver(random_weighted_graph, alpha)
        for node in (0, 3, 11):
            assert np.allclose(solver.single_source(node), matrix[node],
                               atol=1e-10)
            assert np.allclose(solver.single_target(node), matrix[:, node],
                               atol=1e-10)

    def test_pairwise(self, k5):
        solver = ExactSolver(k5, 0.3)
        assert solver.pairwise(0, 1) == pytest.approx(
            exact_ppr_matrix(k5, 0.3)[0, 1])

    def test_one_shot_helpers(self, k5):
        matrix = exact_ppr_matrix(k5, 0.25)
        assert np.allclose(exact_single_source(k5, 2, 0.25), matrix[2])
        assert np.allclose(exact_single_target(k5, 2, 0.25), matrix[:, 2])

    def test_node_out_of_range(self, k5):
        solver = ExactSolver(k5, 0.3)
        with pytest.raises(ConfigError):
            solver.single_source(5)


class TestDanglingConvention:
    def test_isolated_node_is_absorbing(self, disconnected):
        vector = exact_single_source(disconnected, 5, 0.2)
        assert vector[5] == pytest.approx(1.0)
        assert np.allclose(np.delete(vector, 5), 0.0)

    def test_directed_dangling_sink(self, directed_line):
        # node 2 has no out-edges; all walks from 0 end at 1 or 2
        vector = exact_single_source(directed_line, 0, 0.5)
        assert vector.sum() == pytest.approx(1.0)
        assert vector[2] > 0

    def test_dangling_nodes_helper(self, disconnected, directed_line):
        assert dangling_nodes(disconnected).tolist() == [5]
        assert dangling_nodes(directed_line).tolist() == [2]

    def test_backward_consistency_for_dangling(self, directed_line):
        # column of node 2 must match the row-wise matrix
        matrix = exact_ppr_matrix(directed_line, 0.5)
        assert np.allclose(exact_single_target(directed_line, 2, 0.5),
                           matrix[:, 2])


class TestPowerIteration:
    def test_matches_exact_solver(self, random_graph):
        alpha = 0.12
        for node in (0, 7):
            lu = exact_single_source(random_graph, node, alpha)
            power = power_iteration_single_source(random_graph, node, alpha,
                                                  tolerance=1e-12)
            assert np.allclose(lu, power, atol=1e-10)

    def test_target_direction(self, random_weighted_graph):
        alpha = 0.2
        lu = exact_single_target(random_weighted_graph, 4, alpha)
        power = power_iteration_single_target(random_weighted_graph, 4,
                                              alpha, tolerance=1e-12)
        assert np.allclose(lu, power, atol=1e-10)

    def test_budget_exhaustion_raises(self, k5):
        with pytest.raises(ConvergenceError) as info:
            power_iteration_single_source(k5, 0, 0.01, tolerance=1e-12,
                                          max_iterations=3)
        assert info.value.iterations == 3
        assert info.value.residual is not None

    def test_invalid_tolerance(self, k5):
        with pytest.raises(ConfigError):
            power_iteration_single_source(k5, 0, 0.1, tolerance=0.0)


class TestTransitionMatrix:
    def test_absorbing_self_loop_added(self, disconnected):
        matrix = transition_matrix(disconnected, absorb_dangling=True)
        assert matrix[5, 5] == pytest.approx(1.0)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_raw_matrix_keeps_zero_row(self, disconnected):
        matrix = transition_matrix(disconnected, absorb_dangling=False)
        assert matrix[5].nnz == 0
