"""Edge cases for the whole-bank fold operators and their array-bank
(de)hydration (:class:`repro.montecarlo.forest_index._BankOperators`).

The serving tier rebuilds these operators over memmap / shared-memory
arrays, so degenerate banks — degree-0 singleton trees, a bank of one
forest, an all-singleton forest — must fold identically on both the
freshly-built and the rehydrated path.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi
from repro.montecarlo.forest_index import (
    ForestIndex,
    _BankOperators,
    degree_checksum,
)


def _rehydrate(index):
    """Round-trip an index through its array-bank representation."""
    arrays, meta = index.bank_arrays()
    return ForestIndex.attach_bank(arrays, meta, index.graph)


def _assert_same_estimates(index, attached, residuals):
    for improved in (True, False):
        assert np.array_equal(
            index.estimate_source_many(residuals, improved=improved),
            attached.estimate_source_many(residuals, improved=improved))
        assert np.array_equal(
            index.estimate_target_many(residuals, improved=improved),
            attached.estimate_target_many(residuals, improved=improved))


@pytest.fixture
def residuals5():
    rng = np.random.default_rng(5)
    return rng.random((3, 5))


class TestDegreeZeroSingletons:
    """Isolated nodes form zero-degree-mass singleton trees."""

    @pytest.fixture
    def graph(self):
        # triangle + edge + isolated node 5 (degree 0)
        return from_edges([(0, 1), (1, 2), (0, 2), (3, 4)], num_nodes=6)

    def test_operators_guard_zero_mass_trees(self, graph):
        index = ForestIndex.build(graph, 0.3, 4, rng=9)
        ops = index._operators
        assert np.array_equal(ops.degree_zero, [5])
        # the zero-mass guard must keep every weight finite
        assert np.isfinite(ops.spread_source.data).all()
        assert np.isfinite(ops.spread_target.data).all()
        assert (ops.segment_degree > 0).all()

    def test_isolated_node_keeps_its_own_residual(self, graph):
        index = ForestIndex.build(graph, 0.3, 4, rng=9)
        residuals = np.zeros((2, 6))
        residuals[0, 5] = 0.7
        residuals[1, 0] = 0.4
        source = index.estimate_source_many(residuals)
        target = index.estimate_target_many(residuals)
        # an isolated node's PPR is a point mass on itself
        assert source[0, 5] == 0.7 and target[0, 5] == 0.7
        assert source[1, 5] == 0.0 and target[1, 5] == 0.0

    def test_rehydrated_bank_matches(self, graph):
        index = ForestIndex.build(graph, 0.3, 4, rng=9)
        rng = np.random.default_rng(1)
        _assert_same_estimates(index, _rehydrate(index),
                               rng.random((4, 6)))


class TestSingleForestBank:
    def test_fold_equals_the_one_forest_estimator(self, residuals5):
        graph = erdos_renyi(5, 0.7, rng=3)
        index = ForestIndex.build(graph, 0.25, 1, rng=7)
        assert index.num_forests == 1
        for improved in (True, False):
            batched = index.estimate_source_many(residuals5,
                                                 improved=improved)
            for row, residual in zip(batched, residuals5):
                assert np.allclose(row, index.estimate_source(
                    residual, improved=improved))

    def test_rehydrated_bank_matches(self, residuals5):
        graph = erdos_renyi(5, 0.7, rng=3)
        index = ForestIndex.build(graph, 0.25, 1, rng=7)
        _assert_same_estimates(index, _rehydrate(index), residuals5)


class TestAllSingletonForest:
    """An edgeless graph: every forest is n singleton trees."""

    @pytest.fixture
    def graph(self):
        return from_edges([], num_nodes=4)

    def test_estimates_are_the_residual_itself(self, graph):
        index = ForestIndex.build(graph, 0.5, 3, rng=2)
        residuals = np.random.default_rng(0).random((2, 4))
        # improved estimators pin degree-0 nodes exactly; the basic
        # fold computes (F·x)/F, which can round in the last ulp
        assert np.array_equal(
            index.estimate_source_many(residuals), residuals)
        assert np.array_equal(
            index.estimate_target_many(residuals), residuals)
        for improved in (True, False):
            assert np.allclose(
                index.estimate_source_many(residuals, improved=improved),
                residuals, rtol=1e-15)
            assert np.allclose(
                index.estimate_target_many(residuals, improved=improved),
                residuals, rtol=1e-15)

    def test_segment_space_is_maximal(self, graph):
        index = ForestIndex.build(graph, 0.5, 3, rng=2)
        ops = index._operators
        # every node is its own root in every forest
        assert ops.segment_root.size == 3 * 4
        assert np.array_equal(ops.degree_zero, np.arange(4))

    def test_rehydrated_bank_matches(self, graph):
        index = ForestIndex.build(graph, 0.5, 3, rng=2)
        _assert_same_estimates(index, _rehydrate(index),
                               np.random.default_rng(8).random((3, 4)))


class TestArrayRoundTrip:
    def test_to_from_arrays_is_byte_identical(self):
        graph = erdos_renyi(12, 0.3, rng=21)
        index = ForestIndex.build(graph, 0.15, 5, rng=21)
        ops = index._operators
        rebuilt = _BankOperators.from_arrays(
            ops.to_arrays(), num_nodes=12, num_forests=5)
        for name in ("tree_sum", "spread_source", "scatter_root",
                     "spread_target", "gather_root"):
            original, copy = getattr(ops, name), getattr(rebuilt, name)
            assert original.shape == copy.shape
            assert np.array_equal(original.indptr, copy.indptr)
            assert np.array_equal(original.indices, copy.indices)
            assert np.array_equal(original.data, copy.data)

    def test_from_arrays_does_not_copy(self):
        graph = erdos_renyi(6, 0.5, rng=4)
        index = ForestIndex.build(graph, 0.2, 2, rng=4)
        arrays = index._operators.to_arrays()
        rebuilt = _BankOperators.from_arrays(arrays, num_nodes=6,
                                             num_forests=2)
        assert rebuilt.tree_sum.data is arrays["tree_sum_data"]
        assert rebuilt.segment_root is not None
        assert np.shares_memory(rebuilt.gather_root.indices,
                                arrays["gather_root_indices"])

    def test_attached_index_refuses_forest_apis(self, tmp_path):
        graph = erdos_renyi(6, 0.5, rng=4)
        index = ForestIndex.build(graph, 0.2, 2, rng=4)
        index.save_bank(tmp_path / "bank")
        attached = ForestIndex.load_bank(tmp_path / "bank", graph)
        assert attached.num_forests == 2
        assert attached.build_steps == index.build_steps
        assert attached.size_bytes > 0
        with pytest.raises(ConfigError, match="operator-only"):
            attached.estimate_source(np.zeros(6))
        with pytest.raises(ConfigError, match="operator-only"):
            attached.save(tmp_path / "again.npz")


class TestGraphValidation:
    """Same node count, different edges → checksum must refuse."""

    def test_degree_checksum_distinguishes_same_size_graphs(self):
        a = erdos_renyi(10, 0.4, rng=1)
        b = erdos_renyi(10, 0.4, rng=2)
        assert degree_checksum(a) != degree_checksum(b)
        assert degree_checksum(a) == degree_checksum(a)

    def test_npz_roundtrip_mismatch(self, tmp_path):
        a = erdos_renyi(10, 0.4, rng=1)
        b = erdos_renyi(10, 0.4, rng=2)
        index = ForestIndex.build(a, 0.2, 3, rng=0)
        index.save(tmp_path / "index.npz")
        with pytest.raises(ConfigError, match="degree checksum"):
            ForestIndex.load(tmp_path / "index.npz", b)
        loaded = ForestIndex.load(tmp_path / "index.npz", a)
        assert loaded.num_forests == 3

    def test_bank_roundtrip_mismatch(self, tmp_path):
        a = erdos_renyi(10, 0.4, rng=1)
        b = erdos_renyi(10, 0.4, rng=2)
        ForestIndex.build(a, 0.2, 3, rng=0).save_bank(tmp_path / "bank")
        with pytest.raises(ConfigError, match="degree checksum"):
            ForestIndex.load_bank(tmp_path / "bank", b)
        with pytest.raises(ConfigError, match="nodes"):
            ForestIndex.load_bank(tmp_path / "bank",
                                  erdos_renyi(11, 0.4, rng=1))

    def test_bank_kind_validated(self, tmp_path):
        from repro.parallel.shared_bank import save_array_bank

        graph = erdos_renyi(10, 0.4, rng=1)
        save_array_bank(tmp_path / "bank", {"x": np.zeros(3)},
                        {"kind": "something-else"})
        with pytest.raises(ConfigError, match="not a forest index"):
            ForestIndex.load_bank(tmp_path / "bank", graph)
