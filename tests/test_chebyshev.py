"""Chebyshev-accelerated solver tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError, ConvergenceError
from repro.graph.generators import erdos_renyi
from repro.linalg import (
    chebyshev_iterations_bound,
    chebyshev_single_source,
    chebyshev_single_target,
    exact_single_source,
    exact_single_target,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 0.06, rng=601)


class TestCorrectness:
    @pytest.mark.parametrize("alpha", [0.3, 0.1, 0.01])
    def test_matches_exact_source(self, graph, alpha):
        exact = exact_single_source(graph, 0, alpha)
        approx = chebyshev_single_source(graph, 0, alpha, tolerance=1e-12)
        assert np.abs(approx - exact).max() < 1e-9

    def test_matches_exact_target(self, graph):
        exact = exact_single_target(graph, 5, 0.05)
        approx = chebyshev_single_target(graph, 5, 0.05, tolerance=1e-12)
        assert np.abs(approx - exact).max() < 1e-9

    def test_weighted(self, random_weighted_graph):
        exact = exact_single_source(random_weighted_graph, 2, 0.1)
        approx = chebyshev_single_source(random_weighted_graph, 2, 0.1,
                                         tolerance=1e-12)
        assert np.abs(approx - exact).max() < 1e-9

    def test_dangling_graph(self, disconnected):
        exact = exact_single_source(disconnected, 5, 0.2)
        approx = chebyshev_single_source(disconnected, 5, 0.2,
                                         tolerance=1e-12)
        assert np.abs(approx - exact).max() < 1e-8


class TestAcceleration:
    def test_bound_beats_power_iteration(self):
        """The Chebyshev round bound must be far below the power bound
        at small alpha (the point of the acceleration)."""
        for alpha in (0.1, 0.01, 0.001):
            power_rounds = int(np.ceil(np.log(1e-9) / np.log1p(-alpha)))
            cheb_rounds = chebyshev_iterations_bound(alpha, 1e-9)
            assert cheb_rounds < power_rounds / 3

    def test_converges_within_bound(self, graph):
        alpha = 0.02
        bound = chebyshev_iterations_bound(alpha, 1e-9)
        # must converge without raising when capped near the bound
        chebyshev_single_source(graph, 0, alpha, tolerance=1e-9,
                                max_iterations=3 * bound)


class TestValidation:
    def test_bad_alpha(self, k5):
        with pytest.raises(ConfigError):
            chebyshev_single_source(k5, 0, 1.2)

    def test_bad_node(self, k5):
        with pytest.raises(ConfigError):
            chebyshev_single_source(k5, 9, 0.2)

    def test_budget_exhaustion(self, graph):
        with pytest.raises(ConvergenceError):
            chebyshev_single_source(graph, 0, 0.01, tolerance=1e-12,
                                    max_iterations=3)

    def test_bound_validation(self):
        with pytest.raises(ConfigError):
            chebyshev_iterations_bound(0.1, 2.0)
