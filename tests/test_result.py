"""PPRResult tests."""

import numpy as np
import pytest

from repro.core import PPRResult
from repro.exceptions import ConfigError


def _result(values, **kwargs):
    defaults = dict(kind="source", query_node=0, method="test", alpha=0.1,
                    epsilon=0.5)
    defaults.update(kwargs)
    return PPRResult(estimates=np.asarray(values, dtype=float), **defaults)


class TestBasics:
    def test_getitem_and_len(self):
        result = _result([0.5, 0.3, 0.2])
        assert result[1] == pytest.approx(0.3)
        assert result.num_nodes == 3

    def test_total_mass(self):
        assert _result([0.5, 0.3, 0.2]).total_mass == pytest.approx(1.0)

    def test_kind_validation(self):
        with pytest.raises(ConfigError):
            _result([1.0], kind="column")

    def test_repr(self):
        text = repr(_result([1.0]))
        assert "method='test'" in text


class TestTopK:
    def test_order(self):
        result = _result([0.1, 0.5, 0.2, 0.15, 0.05])
        top = result.top_k(3)
        assert [node for node, _ in top] == [1, 2, 3]
        assert top[0][1] == pytest.approx(0.5)

    def test_k_larger_than_n(self):
        assert len(_result([0.6, 0.4]).top_k(10)) == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ConfigError):
            _result([1.0]).top_k(0)


class TestStats:
    def test_total_seconds_sums_stage_timers(self):
        result = _result([1.0], stats={"push_seconds": 0.25,
                                       "mc_seconds": 0.5,
                                       "num_forests": 3})
        assert result.total_seconds == pytest.approx(0.75)

    def test_no_timers(self):
        assert _result([1.0]).total_seconds == 0.0
