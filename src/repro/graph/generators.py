"""Synthetic graph generators.

Two families live here:

- deterministic topologies (complete, cycle, path, star, grid) used by
  the test-suite because their PPR vectors and forest counts have
  closed forms or tiny state spaces;
- random models (Erdős–Rényi, Barabási–Albert, Chung–Lu, power-law
  configuration, Watts–Strogatz) used by the benchmark harness to stand
  in for the paper's SNAP graphs (see DESIGN.md §1).

All random generators accept an ``rng`` seed/Generator and are fully
reproducible.  Every generator returns a simple undirected
:class:`~repro.graph.csr.Graph` (no self-loops, no parallel edges).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.build import from_edges
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_tree",
    "erdos_renyi",
    "barabasi_albert",
    "chung_lu",
    "powerlaw_configuration",
    "watts_strogatz",
    "stochastic_block_model",
    "with_random_weights",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphError(message)


# ----------------------------------------------------------------------
# Deterministic topologies
# ----------------------------------------------------------------------
def complete_graph(num_nodes: int) -> Graph:
    """Complete graph ``K_n``."""
    _require(num_nodes >= 1, "complete_graph needs at least 1 node")
    u, v = np.triu_indices(num_nodes, k=1)
    return from_edges(np.column_stack((u, v)), num_nodes=num_nodes)


def cycle_graph(num_nodes: int) -> Graph:
    """Cycle ``C_n`` (``n >= 3``)."""
    _require(num_nodes >= 3, "cycle_graph needs at least 3 nodes")
    nodes = np.arange(num_nodes)
    return from_edges(np.column_stack((nodes, (nodes + 1) % num_nodes)),
                      num_nodes=num_nodes)


def path_graph(num_nodes: int) -> Graph:
    """Path ``P_n``."""
    _require(num_nodes >= 1, "path_graph needs at least 1 node")
    nodes = np.arange(num_nodes - 1)
    return from_edges(np.column_stack((nodes, nodes + 1)),
                      num_nodes=num_nodes)


def star_graph(num_leaves: int) -> Graph:
    """Star with node 0 as the hub and ``num_leaves`` leaves."""
    _require(num_leaves >= 1, "star_graph needs at least 1 leaf")
    leaves = np.arange(1, num_leaves + 1)
    return from_edges(np.column_stack((np.zeros_like(leaves), leaves)),
                      num_nodes=num_leaves + 1)


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D grid of ``rows x cols`` nodes, 4-connected."""
    _require(rows >= 1 and cols >= 1, "grid_graph needs positive dimensions")
    ids = np.arange(rows * cols).reshape(rows, cols)
    horizontal = np.column_stack((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    vertical = np.column_stack((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    return from_edges(np.concatenate((horizontal, vertical)),
                      num_nodes=rows * cols)


def random_tree(num_nodes: int,
                rng: np.random.Generator | int | None = None) -> Graph:
    """Random recursive tree: node ``i`` attaches to a uniform ancestor."""
    _require(num_nodes >= 1, "random_tree needs at least 1 node")
    generator = ensure_rng(rng)
    if num_nodes == 1:
        return from_edges([], num_nodes=1)
    children = np.arange(1, num_nodes)
    parents = (generator.random(num_nodes - 1) * children).astype(np.int64)
    return from_edges(np.column_stack((parents, children)),
                      num_nodes=num_nodes)


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------
def erdos_renyi(num_nodes: int, edge_probability: float,
                rng: np.random.Generator | int | None = None) -> Graph:
    """G(n, p) by geometric skipping over the upper-triangular pairs.

    Runs in ``O(n + m)`` expected time instead of ``O(n^2)``.
    """
    _require(num_nodes >= 1, "erdos_renyi needs at least 1 node")
    _require(0.0 <= edge_probability <= 1.0, "edge_probability must be in [0, 1]")
    generator = ensure_rng(rng)
    total_pairs = num_nodes * (num_nodes - 1) // 2
    if edge_probability == 0.0 or total_pairs == 0:
        return from_edges([], num_nodes=num_nodes)
    if edge_probability == 1.0:
        return complete_graph(num_nodes)
    # draw the gaps between selected pair ranks, then decode rank -> (u, v)
    expected = edge_probability * total_pairs
    budget = int(expected + 10 * np.sqrt(expected) + 10)
    log_q = np.log1p(-edge_probability)
    positions: list[np.ndarray] = []
    current = -1
    while current < total_pairs:
        # cap gaps before the int cast: for tiny p the geometric gap can
        # exceed int64 (even float) range, and anything beyond
        # total_pairs acts the same as total_pairs + 1
        with np.errstate(over="ignore"):
            raw_gaps = np.log(generator.random(budget)) / log_q
        gaps = np.minimum(raw_gaps, float(total_pairs) + 1.0).astype(np.int64) + 1
        ranks = current + np.cumsum(gaps)
        positions.append(ranks[ranks < total_pairs])
        if ranks.size == 0 or ranks[-1] >= total_pairs:
            break
        current = int(ranks[-1])
    selected = np.concatenate(positions) if positions else np.empty(0, np.int64)
    u = (num_nodes - 2 - np.floor(
        np.sqrt(-8.0 * selected + 4.0 * num_nodes * (num_nodes - 1) - 7) / 2.0
        - 0.5)).astype(np.int64)
    v = (selected + u + 1 - num_nodes * (num_nodes - 1) // 2
         + (num_nodes - u) * ((num_nodes - u) - 1) // 2).astype(np.int64)
    return from_edges(np.column_stack((u, v)), num_nodes=num_nodes)


def barabasi_albert(num_nodes: int, attach_count: int,
                    rng: np.random.Generator | int | None = None) -> Graph:
    """Preferential attachment: each new node links to ``attach_count``
    existing nodes chosen proportionally to their current degree.

    Uses the standard repeated-endpoint trick: sampling a uniform
    element of the running edge-endpoint list is degree-proportional.
    """
    _require(attach_count >= 1, "attach_count must be >= 1")
    _require(num_nodes > attach_count,
             "num_nodes must exceed attach_count")
    generator = ensure_rng(rng)
    # seed clique of attach_count + 1 nodes keeps early degrees positive
    seed_u, seed_v = np.triu_indices(attach_count + 1, k=1)
    endpoint_pool: list[int] = list(seed_u) + list(seed_v)
    sources: list[int] = list(seed_u)
    targets: list[int] = list(seed_v)
    for node in range(attach_count + 1, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < attach_count:
            pick = endpoint_pool[int(generator.random() * len(endpoint_pool))]
            chosen.add(pick)
        for other in chosen:
            sources.append(node)
            targets.append(other)
            endpoint_pool.append(node)
            endpoint_pool.append(other)
    return from_edges(np.column_stack((sources, targets)),
                      num_nodes=num_nodes)


def chung_lu(expected_degrees: np.ndarray,
             rng: np.random.Generator | int | None = None) -> Graph:
    """Chung–Lu random graph with the given expected degree sequence.

    Implemented with the fast endpoint-sampling variant: ``S/2`` edges
    (``S`` the degree total) are drawn with both endpoints independently
    proportional to the expected degrees, then self-loops and parallel
    edges are discarded.  Expected degrees are matched up to the usual
    O(1) collision loss, which is what the model promises anyway.
    """
    weights = np.asarray(expected_degrees, dtype=np.float64)
    _require(weights.ndim == 1 and weights.size >= 2,
             "expected_degrees must be a 1-D array with >= 2 entries")
    _require(np.all(weights >= 0), "expected degrees must be non-negative")
    total = weights.sum()
    _require(total > 0, "expected degrees must not all be zero")
    generator = ensure_rng(rng)
    num_edges = int(round(total / 2.0))
    probabilities = weights / total
    endpoints = generator.choice(weights.size, size=2 * num_edges,
                                 p=probabilities)
    pairs = endpoints.reshape(num_edges, 2)
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    return from_edges(pairs, num_nodes=weights.size)


def powerlaw_configuration(num_nodes: int, exponent: float = 2.5,
                           min_degree: int = 2, max_degree: int | None = None,
                           rng: np.random.Generator | int | None = None) -> Graph:
    """Configuration-model graph with a discrete power-law degree sequence.

    ``P(deg = k) ∝ k^-exponent`` for ``k`` in ``[min_degree,
    max_degree]``; stubs are matched uniformly at random and the
    resulting self-loops / parallel edges are dropped (the "erased"
    configuration model).  This is the family used to mimic the heavy
    tails of the SNAP graphs in Table 1.
    """
    _require(num_nodes >= 2, "powerlaw_configuration needs >= 2 nodes")
    _require(exponent > 1.0, "exponent must exceed 1")
    _require(min_degree >= 1, "min_degree must be >= 1")
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(num_nodes) * 2))
    _require(max_degree >= min_degree, "max_degree must be >= min_degree")
    generator = ensure_rng(rng)
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    pmf = support ** (-exponent)
    pmf /= pmf.sum()
    degrees = generator.choice(support.astype(np.int64), size=num_nodes, p=pmf)
    if degrees.sum() % 2 == 1:
        degrees[int(generator.integers(num_nodes))] += 1
    stubs = np.repeat(np.arange(num_nodes), degrees)
    generator.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    return from_edges(pairs, num_nodes=num_nodes)


def watts_strogatz(num_nodes: int, neighbors_each_side: int,
                   rewire_probability: float,
                   rng: np.random.Generator | int | None = None) -> Graph:
    """Watts–Strogatz small-world ring with random rewiring."""
    _require(num_nodes >= 3, "watts_strogatz needs >= 3 nodes")
    _require(1 <= neighbors_each_side < num_nodes / 2,
             "neighbors_each_side must be in [1, n/2)")
    _require(0.0 <= rewire_probability <= 1.0,
             "rewire_probability must be in [0, 1]")
    generator = ensure_rng(rng)
    nodes = np.arange(num_nodes)
    sources, targets = [], []
    for offset in range(1, neighbors_each_side + 1):
        sources.append(nodes)
        targets.append((nodes + offset) % num_nodes)
    edge_u = np.concatenate(sources)
    edge_v = np.concatenate(targets)
    rewire = generator.random(edge_u.size) < rewire_probability
    edge_v = edge_v.copy()
    edge_v[rewire] = generator.integers(0, num_nodes, size=int(rewire.sum()))
    keep = edge_u != edge_v
    return from_edges(np.column_stack((edge_u[keep], edge_v[keep])),
                      num_nodes=num_nodes)


def stochastic_block_model(block_sizes, edge_probabilities,
                           rng: np.random.Generator | int | None = None,
                           ) -> Graph:
    """Stochastic block model: planted communities with known structure.

    Parameters
    ----------
    block_sizes:
        Sequence of community sizes (nodes are numbered block by block).
    edge_probabilities:
        Symmetric ``k x k`` matrix; entry ``(i, j)`` is the probability
        of an edge between a node of block ``i`` and one of block ``j``.

    The workhorse ground truth for the clustering application tests:
    sweep cuts should recover blocks whose internal probability
    dominates the external one.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    _require(sizes.ndim == 1 and sizes.size >= 1 and np.all(sizes >= 1),
             "block_sizes must be positive integers")
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    k = sizes.size
    _require(probabilities.shape == (k, k),
             "edge_probabilities must be k x k for k blocks")
    _require(np.allclose(probabilities, probabilities.T),
             "edge_probabilities must be symmetric")
    _require(np.all((probabilities >= 0) & (probabilities <= 1)),
             "edge probabilities must lie in [0, 1]")
    generator = ensure_rng(rng)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    total = int(offsets[-1])
    chunks = []
    for i in range(k):
        for j in range(i, k):
            p = probabilities[i, j]
            if p == 0.0:
                continue
            if i == j:
                block = erdos_renyi(int(sizes[i]), p, rng=generator)
                arcs = block.edges()
                pairs = arcs[arcs[:, 0] < arcs[:, 1]] + offsets[i]
            else:
                # Bernoulli bipartite block, vectorised
                mask = generator.random((int(sizes[i]), int(sizes[j]))) < p
                rows, cols = np.nonzero(mask)
                pairs = np.column_stack((rows + offsets[i],
                                         cols + offsets[j]))
            if pairs.size:
                chunks.append(pairs)
    if chunks:
        edges = np.concatenate(chunks)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return from_edges(edges, num_nodes=total)


def with_random_weights(graph: Graph, *, low: float = 1.0, high: float = 10.0,
                        integer: bool = True,
                        rng: np.random.Generator | int | None = None) -> Graph:
    """Return a weighted copy of an unweighted undirected graph.

    Weights are drawn once per undirected edge (mirrored symmetrically),
    log-uniform in ``[low, high]`` and optionally rounded to integers —
    mimicking interaction-count weights such as "number of co-authored
    papers" in the paper's DBLP / StackOverflow datasets.
    """
    if graph.directed:
        raise GraphError("with_random_weights expects an undirected graph")
    _require(0 < low <= high, "need 0 < low <= high")
    generator = ensure_rng(rng)
    arcs = graph.edges()
    upper = arcs[arcs[:, 0] < arcs[:, 1]]
    raw = np.exp(generator.uniform(np.log(low), np.log(high), size=len(upper)))
    if integer:
        raw = np.maximum(1.0, np.round(raw))
    return from_edges(upper, num_nodes=graph.num_nodes, weights=raw)
