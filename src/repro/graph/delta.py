"""Streaming edge-update log for dynamic graphs.

:class:`GraphDelta` is an ordered log of edge mutations — add, remove,
set-weight, upsert — applied atomically to an immutable
:class:`~repro.graph.csr.Graph` to produce a *new* graph.  The source
graph is never modified; :meth:`GraphDelta.apply` splices only the CSR
rows whose adjacency actually changed and bulk-copies every other row,
so a single-edge update on a large graph costs O(touched rows), not
O(m).

The delta also knows its *dirty set* (:meth:`touched_nodes`): the nodes
whose outgoing arrow distribution may differ between the old and new
graph.  That set is what incremental forest repair
(:mod:`repro.forests.repair`) invalidates — every other node's recorded
arrow draws remain valid samples, which is the whole point of streaming
updates.

Ops are validated against the *running* state of the log, so a single
delta may remove an edge and re-add it with a new weight.  ``upsert``
(add-or-set-weight) is the idempotent form used by churn workloads
where the caller does not know whether the edge currently exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import Graph

__all__ = ["EdgeOp", "GraphDelta", "parse_edge_spec"]

#: Recognised operation names, in the order used everywhere they are listed.
OP_NAMES = ("add", "remove", "set_weight", "upsert")


@dataclass(frozen=True)
class EdgeOp:
    """One edge mutation.

    ``weight`` is required for ``set_weight`` / ``upsert``, defaults to
    1.0 for ``add``, and must be absent for ``remove``.
    """

    op: str
    u: int
    v: int
    weight: float | None = None

    def __post_init__(self):
        if self.op not in OP_NAMES:
            raise GraphError(
                f"unknown edge op {self.op!r} (choose from {OP_NAMES})")
        object.__setattr__(self, "u", int(self.u))
        object.__setattr__(self, "v", int(self.v))
        if self.u == self.v:
            raise GraphError(f"self-loop ({self.u}, {self.v}) not supported")
        if self.u < 0 or self.v < 0:
            raise GraphError(f"negative node id in ({self.u}, {self.v})")
        if self.op == "remove":
            if self.weight is not None:
                raise GraphError("remove takes no weight")
        elif self.op in ("set_weight", "upsert") and self.weight is None:
            raise GraphError(f"{self.op} requires a weight")
        if self.weight is not None:
            weight = float(self.weight)
            if not weight > 0.0 or not np.isfinite(weight):
                raise GraphError(
                    f"edge weight must be finite and positive, got {weight}")
            object.__setattr__(self, "weight", weight)

    def to_dict(self) -> dict:
        """Wire form: ``{"op", "u", "v"}`` plus ``"weight"`` when set."""
        payload = {"op": self.op, "u": self.u, "v": self.v}
        if self.weight is not None:
            payload["weight"] = self.weight
        return payload


def parse_edge_spec(spec: str, *, op: str) -> EdgeOp:
    """Parse a CLI edge spec ``"U:V"`` or ``"U:V:W"`` into an op."""
    parts = str(spec).split(":")
    want_weight = op in ("set_weight", "upsert")
    try:
        if len(parts) == 2 and op != "set_weight" and op != "upsert":
            return EdgeOp(op, int(parts[0]), int(parts[1]))
        if len(parts) == 3 and op != "remove":
            return EdgeOp(op, int(parts[0]), int(parts[1]), float(parts[2]))
    except ValueError as error:
        raise GraphError(f"bad edge spec {spec!r}: {error}") from None
    shape = "U:V:W" if want_weight else ("U:V" if op == "remove"
                                         else "U:V or U:V:W")
    raise GraphError(f"bad edge spec {spec!r} for {op} (expected {shape})")


class GraphDelta:
    """An ordered, validated log of edge mutations.

    Builder methods are fluent (they return ``self``) so a delta can be
    assembled inline::

        delta = GraphDelta().add_edge(0, 5).set_weight(1, 2, 0.5)
    """

    def __init__(self, ops=()):
        self._ops: list[EdgeOp] = []
        for op in ops:
            self._append(op)

    def _append(self, op) -> "GraphDelta":
        if isinstance(op, EdgeOp):
            self._ops.append(op)
        elif isinstance(op, dict):
            self._ops.append(EdgeOp(**op))
        else:
            raise GraphError(f"cannot interpret {op!r} as an edge op")
        return self

    # ------------------------------------------------------------------
    # Fluent builders
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> "GraphDelta":
        """Add edge ``(u, v)``; error at apply time if it exists."""
        return self._append(EdgeOp("add", u, v, weight))

    def remove_edge(self, u: int, v: int) -> "GraphDelta":
        """Remove edge ``(u, v)``; error at apply time if missing."""
        return self._append(EdgeOp("remove", u, v))

    def set_weight(self, u: int, v: int, weight: float) -> "GraphDelta":
        """Change the weight of existing edge ``(u, v)``."""
        return self._append(EdgeOp("set_weight", u, v, weight))

    def upsert_edge(self, u: int, v: int, weight: float = 1.0) -> "GraphDelta":
        """Add ``(u, v)`` or overwrite its weight — always valid."""
        return self._append(EdgeOp("upsert", u, v, weight))

    # ------------------------------------------------------------------
    # Wire forms
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, items) -> "GraphDelta":
        """Build a delta from JSON-shaped op dicts (the HTTP body form).

        Each item is ``{"op": ..., "u": ..., "v": ...[, "weight": ...]}``.
        An empty op list is rejected — a mutation request that does
        nothing is almost certainly a caller bug.
        """
        if not isinstance(items, (list, tuple)):
            raise GraphError("ops must be a list of edge-op objects")
        if not items:
            raise GraphError("delta has no operations")
        delta = cls()
        for item in items:
            if not isinstance(item, dict):
                raise GraphError(f"bad edge op {item!r} (expected an object)")
            unknown = set(item) - {"op", "u", "v", "weight"}
            if unknown:
                raise GraphError(
                    f"unknown edge-op field(s) {sorted(unknown)}")
            try:
                delta._append(EdgeOp(
                    str(item.get("op", "")), item.get("u", -1),
                    item.get("v", -1), item.get("weight")))
            except (TypeError, ValueError) as error:
                raise GraphError(f"bad edge op {item!r}: {error}") from None
        return delta

    def to_dicts(self) -> list[dict]:
        """The JSON-shaped op list (inverse of :meth:`from_dicts`)."""
        return [op.to_dict() for op in self._ops]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def __repr__(self) -> str:
        return f"GraphDelta({len(self._ops)} op(s))"

    def touched_nodes(self) -> np.ndarray:
        """Sorted unique endpoints of every op — the repair dirty set.

        Both endpoints are always included.  For undirected graphs both
        rows change; for directed graphs only row ``u`` does, but a
        superset is always *safe* (resampling a clean node's record
        from its unchanged row is still an exact draw), so we do not
        special-case directedness here.
        """
        if not self._ops:
            return np.empty(0, dtype=np.int64)
        nodes = {op.u for op in self._ops} | {op.v for op in self._ops}
        return np.asarray(sorted(nodes), dtype=np.int64)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, graph: Graph) -> Graph:
        """Apply the log to ``graph`` and return a new validated graph.

        Only the touched CSR rows are rebuilt; untouched rows are
        copied in bulk slices, preserving their neighbour order (added
        neighbours append after the survivors in op order).  The result
        stays unweighted when the source graph is unweighted and no op
        introduces a weight other than 1.0.
        """
        if not self._ops:
            return graph
        n = graph.num_nodes
        rows: dict[int, dict[int, float]] = {}

        def row(node: int) -> dict[int, float]:
            if node not in rows:
                lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
                neighbors = graph.indices[lo:hi].tolist()
                weights = ([1.0] * (hi - lo) if graph.weights is None
                           else graph.weights[lo:hi].tolist())
                rows[node] = dict(zip(neighbors, weights))
            return rows[node]

        for op in self._ops:
            if op.u >= n or op.v >= n:
                raise GraphError(
                    f"edge ({op.u}, {op.v}) out of range [0, {n})")
            arcs = [(op.u, op.v)] if graph.directed else [(op.u, op.v),
                                                          (op.v, op.u)]
            for a, b in arcs:
                adjacency = row(a)
                if op.op == "add":
                    if b in adjacency:
                        raise GraphError(
                            f"edge ({op.u}, {op.v}) already exists")
                    adjacency[b] = op.weight if op.weight is not None else 1.0
                elif op.op == "remove":
                    if b not in adjacency:
                        raise GraphError(
                            f"edge ({op.u}, {op.v}) does not exist")
                    del adjacency[b]
                elif op.op == "set_weight":
                    if b not in adjacency:
                        raise GraphError(
                            f"edge ({op.u}, {op.v}) does not exist")
                    adjacency[b] = op.weight
                else:  # upsert
                    adjacency[b] = op.weight

        weighted = graph.is_weighted or any(
            op.weight is not None and op.weight != 1.0 for op in self._ops)
        counts = graph.out_degrees.copy()
        for node, adjacency in rows.items():
            counts[node] = len(adjacency)
        new_indptr = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64)))
        total = int(new_indptr[-1])
        new_indices = np.empty(total, dtype=np.int64)
        new_weights = np.empty(total, dtype=np.float64) if weighted else None

        old_weights = graph.weights
        cursor_row = 0  # first row of the next untouched span
        for node in sorted(rows):
            if cursor_row < node:  # bulk-copy the untouched span before it
                src_lo = int(graph.indptr[cursor_row])
                src_hi = int(graph.indptr[node])
                dst_lo = int(new_indptr[cursor_row])
                dst_hi = dst_lo + (src_hi - src_lo)
                new_indices[dst_lo:dst_hi] = graph.indices[src_lo:src_hi]
                if weighted:
                    new_weights[dst_lo:dst_hi] = (
                        1.0 if old_weights is None
                        else old_weights[src_lo:src_hi])
            adjacency = rows[node]
            dst_lo = int(new_indptr[node])
            dst_hi = int(new_indptr[node + 1])
            new_indices[dst_lo:dst_hi] = list(adjacency.keys())
            if weighted:
                new_weights[dst_lo:dst_hi] = list(adjacency.values())
            cursor_row = node + 1
        if cursor_row < n:  # trailing untouched span
            src_lo = int(graph.indptr[cursor_row])
            dst_lo = int(new_indptr[cursor_row])
            new_indices[dst_lo:total] = graph.indices[src_lo:]
            if weighted:
                new_weights[dst_lo:total] = (
                    1.0 if old_weights is None else old_weights[src_lo:])

        return Graph(new_indptr, new_indices, new_weights,
                     directed=graph.directed, validate=True)
