"""Compressed-sparse-row graph storage.

:class:`Graph` is the single adjacency structure used across the
library.  It stores out-edges in CSR form; undirected graphs keep both
orientations of every edge so that "out-neighbours" are simply
"neighbours".  Instances are treated as immutable: every algorithm
reads the arrays but never writes them, and derived structures (the
scipy transition matrix, alias tables, cumulative weight arrays) are
built lazily and cached on the instance.

Conventions
-----------
- Node ids are the integers ``0..n-1``.
- ``weights is None`` means the graph is unweighted; algorithms treat
  every edge weight as ``1.0`` but use cheaper sampling paths.
- ``degrees[u]`` is the *weighted* out-degree (row sum of the adjacency
  matrix), matching the paper's ``d_u``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

__all__ = ["Graph"]


class Graph:
    """An immutable CSR graph.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row pointer of the CSR
        structure.
    indices:
        ``int64`` array of length ``indptr[-1]``; concatenated
        neighbour lists.
    weights:
        Optional ``float64`` array parallel to ``indices`` with
        strictly positive edge weights, or ``None`` for an unweighted
        graph.
    directed:
        Whether the stored arcs are one-directional.  Undirected graphs
        must store both orientations of each edge (builders in
        :mod:`repro.graph.build` do this automatically).
    validate:
        Run structural validation (bounds, sortedness is *not*
        required, weight positivity).  Disable only for trusted callers
        on hot paths.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "__dict__",  # for cached_property storage
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray | None = None, *,
                 directed: bool = False, validate: bool = True):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = (
            None if weights is None
            else np.ascontiguousarray(weights, dtype=np.float64)
        )
        self.directed = bool(directed)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Construction helpers / validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length n + 1 >= 1")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr[-1] ({int(self.indptr[-1])}) does not match the "
                f"number of stored arcs ({self.indices.size})")
        n = self.num_nodes
        if n == 0:
            raise GraphError("graphs must have at least one node")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphError("edge endpoint out of range")
        if self.weights is not None:
            if self.weights.shape != self.indices.shape:
                raise GraphError("weights must be parallel to indices")
            if self.indices.size and not np.all(self.weights > 0):
                raise GraphError("edge weights must be strictly positive")

    # ------------------------------------------------------------------
    # Basic size / degree queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (2m for an undirected graph)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (arcs / 2 when undirected)."""
        return self.num_arcs if self.directed else self.num_arcs // 2

    @property
    def is_weighted(self) -> bool:
        """Whether explicit edge weights are stored."""
        return self.weights is not None

    @cached_property
    def out_degrees(self) -> np.ndarray:
        """Unweighted out-degree (neighbour count) per node."""
        return np.diff(self.indptr)

    @cached_property
    def degrees(self) -> np.ndarray:
        """Weighted out-degree ``d_u`` per node (row sums of ``A``)."""
        if self.weights is None:
            return self.out_degrees.astype(np.float64)
        # cumulative-sum differencing handles empty rows (including a
        # trailing isolated node, where reduceat would index past the end)
        running = np.concatenate(([0.0], np.cumsum(self.weights)))
        return running[self.indptr[1:]] - running[self.indptr[:-1]]

    @cached_property
    def total_weight(self) -> float:
        """Sum of ``d_u`` over all nodes (``2m`` for unweighted undirected)."""
        return float(self.degrees.sum())

    @property
    def average_degree(self) -> float:
        """Average unweighted degree ``2m/n`` (or ``m/n`` if directed)."""
        return self.num_arcs / self.num_nodes

    def degree(self, node: int) -> float:
        """Weighted degree of one node."""
        self._check_node(node)
        return float(self.degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node`` (a CSR slice view; do not mutate)."""
        self._check_node(node)
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def edge_weights_of(self, node: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors` (ones if unweighted)."""
        self._check_node(node)
        lo, hi = self.indptr[node], self.indptr[node + 1]
        if self.weights is None:
            return np.ones(hi - lo)
        return self.weights[lo:hi]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # Derived structures (lazy, cached)
    # ------------------------------------------------------------------
    @cached_property
    def cumulative_weights(self) -> np.ndarray:
        """Per-row cumulative edge weights for inverse-CDF sampling.

        ``cumulative_weights[indptr[u]:indptr[u+1]]`` is the running sum
        of ``u``'s edge weights; the last entry equals ``d_u``.  Only
        meaningful for weighted graphs.
        """
        if self.weights is None:
            raise GraphError("cumulative_weights is only defined for weighted graphs")
        cum = np.cumsum(self.weights)
        # subtract, from every entry, the running total accumulated by
        # all earlier rows so each row restarts at its own first weight
        totals_before_row = np.concatenate(([0.0], cum))[self.indptr[:-1]]
        return cum - np.repeat(totals_before_row, self.out_degrees)

    @cached_property
    def alias_table(self):
        """Lazily built :class:`~repro.graph.alias.AliasTable` (cached).

        Used by every sampling kernel; on unweighted graphs it encodes
        the uniform distribution at zero extra cost.
        """
        from repro.graph.alias import AliasTable  # local import avoids a cycle
        return AliasTable(self)

    def to_scipy_adjacency(self) -> sp.csr_matrix:
        """Adjacency matrix ``A`` as ``scipy.sparse.csr_matrix``."""
        data = (np.ones(self.num_arcs) if self.weights is None
                else self.weights)
        n = self.num_nodes
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    @cached_property
    def transition_matrix(self) -> sp.csr_matrix:
        """Row-stochastic transition matrix ``P = D^-1 A`` (cached).

        Rows of isolated nodes are all-zero; the α-walk from an isolated
        node always stops in place, which every algorithm handles
        explicitly.
        """
        adjacency = self.to_scipy_adjacency()
        inv_deg = np.zeros(self.num_nodes)
        nonzero = self.degrees > 0
        inv_deg[nonzero] = 1.0 / self.degrees[nonzero]
        return sp.diags(inv_deg) @ adjacency

    @cached_property
    def transition_matrix_transpose(self) -> sp.csr_matrix:
        """``P^T`` in CSR form (cached), used by single-target solvers."""
        return self.transition_matrix.T.tocsr()

    def reverse(self) -> "Graph":
        """Graph with every arc reversed.

        For undirected graphs this returns ``self`` (both orientations
        are already stored).  For directed graphs a new CSR structure
        over the reversed arcs is built.
        """
        if not self.directed:
            return self
        adjacency = self.to_scipy_adjacency().T.tocsr()
        weights = None if self.weights is None else adjacency.data.copy()
        return Graph(adjacency.indptr.astype(np.int64),
                     adjacency.indices.astype(np.int64),
                     weights, directed=True, validate=False)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``(u, v)`` is stored."""
        return bool(np.any(self.neighbors(u) == v))

    def edges(self) -> np.ndarray:
        """All stored arcs as an ``(num_arcs, 2)`` array of ``(u, v)``."""
        sources = np.repeat(np.arange(self.num_nodes), self.out_degrees)
        return np.column_stack((sources, self.indices))

    @cached_property
    def connected_components(self) -> np.ndarray:
        """Component label per node (weakly connected if directed)."""
        n_comp, labels = sp.csgraph.connected_components(
            self.to_scipy_adjacency(), directed=self.directed,
            connection="weak")
        del n_comp
        return labels

    @property
    def is_connected(self) -> bool:
        """Whether the graph is (weakly) connected."""
        return int(self.connected_components.max(initial=0)) == 0

    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Induced subgraph on ``nodes`` with ids relabelled to 0..k-1."""
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size == 0:
            raise GraphError("subgraph requires at least one node")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise GraphError("subgraph node id out of range")
        adjacency = self.to_scipy_adjacency()[nodes][:, nodes].tocsr()
        weights = None if self.weights is None else adjacency.data.astype(np.float64)
        return Graph(adjacency.indptr.astype(np.int64),
                     adjacency.indices.astype(np.int64),
                     weights, directed=self.directed, validate=False)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialise the graph to a compressed ``.npz`` file."""
        payload = {
            "indptr": self.indptr,
            "indices": self.indices,
            "directed": np.bool_(self.directed),
        }
        if self.weights is not None:
            payload["weights"] = self.weights
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path) -> "Graph":
        """Load a graph saved with :meth:`save`."""
        with np.load(path) as data:
            weights = data["weights"] if "weights" in data.files else None
            return cls(data["indptr"], data["indices"], weights,
                       directed=bool(data["directed"]), validate=True)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        weight = "weighted" if self.is_weighted else "unweighted"
        return (f"Graph(n={self.num_nodes}, m={self.num_edges}, "
                f"{kind}, {weight})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.directed != other.directed:
            return False
        if not (np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices)):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return np.array_equal(self.weights, other.weights)
        return True

    __hash__ = None  # mutable ndarray members; identity hashing would mislead
