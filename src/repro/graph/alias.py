"""Alias tables for O(1) weighted neighbour sampling.

An α-random walk on a weighted graph picks the next node with
probability ``w_uv / d_u``.  Inverse-CDF sampling via ``searchsorted``
costs ``O(log deg)`` per step; the Walker alias method costs O(1) and,
crucially, vectorises: a whole frontier of walkers draws its next
neighbours with three NumPy operations.

The table is laid out flat, parallel to the graph's CSR ``indices``
array: slot ``i`` of the table corresponds to edge slot ``i`` of the
graph, ``probability[i]`` is the acceptance probability of that slot,
and ``alias[i]`` is the *global* edge-slot index to use on rejection.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.rng import ensure_rng

__all__ = ["AliasTable"]


class AliasTable:
    """Flat per-node alias tables over a graph's CSR edge slots.

    Parameters
    ----------
    graph:
        A weighted :class:`~repro.graph.csr.Graph`.  For unweighted
        graphs an alias table is unnecessary (uniform ``randint`` over
        the neighbour list is already O(1)); constructing one anyway is
        supported for uniformity of calling code.
    """

    def __init__(self, graph):
        self._graph = graph
        self.probability = np.ones(graph.num_arcs)
        self.alias = np.arange(graph.num_arcs, dtype=np.int64)
        if graph.is_weighted:
            self._build(graph)

    def _build(self, graph) -> None:
        indptr, weights = graph.indptr, graph.weights
        degrees = graph.degrees
        for node in range(graph.num_nodes):
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            count = hi - lo
            if count == 0:
                continue
            # scaled[j] = count * P(slot j); alias splits slots into
            # donors (> 1) and receivers (< 1) in the classic way.
            scaled = weights[lo:hi] * (count / degrees[node])
            small = [j for j in range(count) if scaled[j] < 1.0]
            large = [j for j in range(count) if scaled[j] >= 1.0]
            scaled = scaled.copy()
            while small and large:
                receiver = small.pop()
                donor = large.pop()
                self.probability[lo + receiver] = scaled[receiver]
                self.alias[lo + receiver] = lo + donor
                scaled[donor] -= 1.0 - scaled[receiver]
                if scaled[donor] < 1.0:
                    small.append(donor)
                else:
                    large.append(donor)
            for j in large + small:  # numerical leftovers accept outright
                self.probability[lo + j] = 1.0
                self.alias[lo + j] = lo + j

    # ------------------------------------------------------------------
    def sample_neighbors(self, nodes: np.ndarray,
                         rng: np.random.Generator | int | None = None,
                         uniforms: tuple[np.ndarray, np.ndarray] | None = None,
                         ) -> np.ndarray:
        """Draw one weighted random neighbour for each node in ``nodes``.

        Parameters
        ----------
        nodes:
            Array of node ids; every node must have at least one
            neighbour.
        uniforms:
            Optional pre-drawn pair of uniform(0,1) arrays (slot pick,
            accept/reject) the same length as ``nodes``; used by walk
            kernels that draw randomness in blocks.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        graph = self._graph
        out_degrees = graph.out_degrees[nodes]
        if np.any(out_degrees == 0):
            raise GraphError("cannot sample a neighbour of an isolated node")
        if uniforms is None:
            generator = ensure_rng(rng)
            pick = generator.random(nodes.size)
            accept = generator.random(nodes.size)
        else:
            pick, accept = uniforms
        slots = graph.indptr[nodes] + (pick * out_degrees).astype(np.int64)
        rejected = accept >= self.probability[slots]
        slots[rejected] = self.alias[slots[rejected]]
        return graph.indices[slots]

    def expected_distribution(self, node: int) -> np.ndarray:
        """Exact per-neighbour probabilities encoded by the table.

        Used in tests to confirm the table reproduces ``w_uv / d_u``.
        """
        graph = self._graph
        lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
        count = hi - lo
        result = np.zeros(count)
        for j in range(count):
            result[j] += self.probability[lo + j] / count
            result[self.alias[lo + j] - lo] += (1.0 - self.probability[lo + j]) / count
        return result
