"""Graph substrate: CSR storage, builders, IO, generators and datasets.

The central type is :class:`~repro.graph.csr.Graph`, an immutable
compressed-sparse-row adjacency structure used by every algorithm in
the library.  Synthetic stand-ins for the seven graphs of the paper's
Table 1 live in :mod:`repro.graph.datasets`.
"""

from repro.graph.csr import Graph
from repro.graph.build import (
    from_edges,
    from_adjacency,
    from_scipy_sparse,
    from_networkx,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    grid_graph,
    random_tree,
    erdos_renyi,
    barabasi_albert,
    chung_lu,
    powerlaw_configuration,
    watts_strogatz,
    stochastic_block_model,
    with_random_weights,
)
from repro.graph.datasets import (
    DatasetSpec,
    available_datasets,
    load_dataset,
    table1_statistics,
)
from repro.graph.alias import AliasTable
from repro.graph.delta import EdgeOp, GraphDelta, parse_edge_spec
from repro.graph.validation import check_graph_invariants

__all__ = [
    "Graph",
    "from_edges",
    "from_adjacency",
    "from_scipy_sparse",
    "from_networkx",
    "read_edge_list",
    "write_edge_list",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_tree",
    "erdos_renyi",
    "barabasi_albert",
    "chung_lu",
    "powerlaw_configuration",
    "watts_strogatz",
    "stochastic_block_model",
    "with_random_weights",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "table1_statistics",
    "AliasTable",
    "EdgeOp",
    "GraphDelta",
    "parse_edge_spec",
    "check_graph_invariants",
]
