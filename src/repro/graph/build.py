"""Builders that turn edge lists and foreign formats into :class:`Graph`.

All builders normalise to the CSR conventions documented in
:mod:`repro.graph.csr`: undirected graphs store both orientations,
parallel edges are merged by summing their weights, and self-loops are
dropped by default (the paper's random-walk model never uses them; a
self-loop neither changes the walk distribution materially nor appears
in any SNAP dataset).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.csr import Graph

__all__ = ["from_edges", "from_adjacency", "from_scipy_sparse", "from_networkx"]


def from_edges(edges, num_nodes: int | None = None, weights=None, *,
               directed: bool = False, allow_self_loops: bool = False) -> Graph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    edges:
        Sequence or array of shape ``(m, 2)`` with integer endpoints.
    num_nodes:
        Total node count; defaults to ``max id + 1``.
    weights:
        Optional per-edge positive weights.  Parallel edges have their
        weights summed (for unweighted input, parallel edges are merged
        into a single edge).
    directed:
        Treat each pair as a one-way arc.
    allow_self_loops:
        Keep ``(u, u)`` edges instead of silently dropping them.
    """
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                            dtype=np.int64)
    if edge_array.size == 0:
        edge_array = edge_array.reshape(0, 2)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise GraphError("edges must be an (m, 2) array of node pairs")
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape != (edge_array.shape[0],):
            raise GraphError("weights must have one entry per edge")
        if edge_array.shape[0] and not np.all(weight_array > 0):
            raise GraphError("edge weights must be strictly positive")
    else:
        weight_array = None

    if edge_array.shape[0]:
        if edge_array.min() < 0:
            raise GraphError("node ids must be non-negative")
        inferred = int(edge_array.max()) + 1
    else:
        inferred = 0
    if num_nodes is None:
        num_nodes = inferred
    if num_nodes < max(inferred, 1):
        raise GraphError(
            f"num_nodes={num_nodes} is too small for the largest node id")

    if not allow_self_loops and edge_array.shape[0]:
        keep = edge_array[:, 0] != edge_array[:, 1]
        edge_array = edge_array[keep]
        if weight_array is not None:
            weight_array = weight_array[keep]

    sources, targets = edge_array[:, 0], edge_array[:, 1]
    if not directed:
        sources = np.concatenate((sources, edge_array[:, 1]))
        targets = np.concatenate((targets, edge_array[:, 0]))
        if weight_array is not None:
            weight_array = np.concatenate((weight_array, weight_array))

    data = np.ones(sources.size) if weight_array is None else weight_array
    matrix = sp.coo_matrix((data, (sources, targets)),
                           shape=(num_nodes, num_nodes))
    matrix.sum_duplicates()  # merge parallel edges
    csr = matrix.tocsr()
    if weight_array is None and csr.nnz:
        csr.data[:] = 1.0  # merged multiplicities collapse back to 1
    out_weights = None if weight_array is None else csr.data.astype(np.float64)
    return Graph(csr.indptr.astype(np.int64), csr.indices.astype(np.int64),
                 out_weights, directed=directed, validate=True)


def from_adjacency(matrix, *, directed: bool = False,
                   weighted: bool | None = None) -> Graph:
    """Build a graph from a dense adjacency matrix.

    Parameters
    ----------
    matrix:
        Square array; entry ``(u, v)`` is the weight of arc ``u -> v``
        (0 for no edge).  For undirected graphs the matrix must be
        symmetric.
    weighted:
        Force weighted/unweighted storage; by default the graph is
        weighted iff any non-zero entry differs from 1.
    """
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise GraphError("adjacency matrix must be square")
    if not directed and not np.allclose(dense, dense.T):
        raise GraphError("undirected adjacency matrix must be symmetric")
    if np.any(dense < 0):
        raise GraphError("adjacency entries must be non-negative")
    np.fill_diagonal(dense, 0.0)
    return from_scipy_sparse(sp.csr_matrix(dense), directed=directed,
                             weighted=weighted)


def from_scipy_sparse(matrix: sp.spmatrix, *, directed: bool = False,
                      weighted: bool | None = None) -> Graph:
    """Build a graph from any scipy sparse matrix.

    The matrix is interpreted like in :func:`from_adjacency`; explicit
    zeros and diagonal entries are removed.
    """
    csr = sp.csr_matrix(matrix, copy=True)
    if csr.shape[0] != csr.shape[1]:
        raise GraphError("adjacency matrix must be square")
    csr.setdiag(0)
    csr.eliminate_zeros()
    csr.sort_indices()
    if weighted is None:
        weighted = bool(csr.nnz) and not np.all(csr.data == 1.0)
    weights = csr.data.astype(np.float64) if weighted else None
    return Graph(csr.indptr.astype(np.int64), csr.indices.astype(np.int64),
                 weights, directed=directed, validate=True)


def from_networkx(nx_graph, weight_attribute: str = "weight") -> Graph:
    """Build a graph from a ``networkx`` graph.

    Node labels are relabelled to ``0..n-1`` in sorted order when
    possible, insertion order otherwise.  Edge weights are read from
    ``weight_attribute`` when present on any edge.
    """
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    directed = bool(nx_graph.is_directed())
    pairs, values, saw_weight = [], [], False
    for u, v, data in nx_graph.edges(data=True):
        pairs.append((index[u], index[v]))
        weight = data.get(weight_attribute)
        if weight is not None:
            saw_weight = True
            values.append(float(weight))
        else:
            values.append(1.0)
    weights = np.asarray(values) if saw_weight else None
    return from_edges(pairs, num_nodes=max(len(nodes), 1), weights=weights,
                      directed=directed)
