"""Synthetic stand-ins for the paper's seven evaluation graphs.

The paper (Table 1) evaluates on five unweighted SNAP graphs (Youtube,
Pokec, LiveJournal, Orkut, Twitter) and two weighted interaction graphs
(DBLP, StackOverflow).  Those datasets are multi-gigabyte downloads and
far beyond pure-Python scale, so — per the substitution policy in
DESIGN.md §1 — each is replaced by a Chung–Lu graph with a power-law
expected-degree sequence whose *average degree and tail skew* match the
original, scaled down to a few thousand nodes.  The weighted datasets
additionally carry integer log-uniform edge weights mimicking
interaction counts.

What the algorithms under test are sensitive to — the degree
distribution (push thresholds, d_max, residual spread) and the spectrum
of ``P`` (τ, Lemma 4.4) — is preserved by this family; only absolute
scale changes.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import Graph
from repro.graph.build import from_edges
from repro.graph.generators import chung_lu, with_random_weights
from repro.rng import ensure_rng

__all__ = ["DatasetSpec", "available_datasets", "load_dataset",
           "table1_statistics", "clear_dataset_cache"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"youtube"``.
    paper_nodes, paper_edges, paper_avg_degree:
        The original SNAP statistics from Table 1, kept for reporting.
    num_nodes:
        Scaled-down node count used here.
    avg_degree:
        Target average degree of the stand-in (matches the paper's
        d̄ where feasible; Orkut/Twitter are mildly capped to keep the
        arc count laptop-friendly — noted in DESIGN.md).
    exponent:
        Power-law exponent of the expected-degree tail.
    weighted:
        Whether to attach integer interaction-count weights.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    num_nodes: int
    avg_degree: float
    exponent: float
    weighted: bool = False


_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("youtube", 1_134_890, 2_987_624, 5.27,
                    num_nodes=12_000, avg_degree=5.3, exponent=2.1),
        DatasetSpec("pokec", 1_632_803, 22_301_964, 27.32,
                    num_nodes=10_000, avg_degree=27.0, exponent=2.6),
        DatasetSpec("livejournal", 4_846_609, 42_851_237, 17.68,
                    num_nodes=15_000, avg_degree=17.7, exponent=2.4),
        DatasetSpec("orkut", 3_072_441, 117_185_083, 76.28,
                    num_nodes=8_000, avg_degree=55.0, exponent=2.8),
        DatasetSpec("twitter", 41_652_230, 1_202_513_046, 57.74,
                    num_nodes=25_000, avg_degree=35.0, exponent=2.3),
        DatasetSpec("dblp", 1_824_701, 8_344_615, 32.32,
                    num_nodes=9_000, avg_degree=16.0, exponent=2.5,
                    weighted=True),
        DatasetSpec("stackoverflow", 2_584_164, 28_142_395, 37.02,
                    num_nodes=10_000, avg_degree=21.0, exponent=2.5,
                    weighted=True),
    ]
}

#: Names in the paper's Table 1 order.
UNWEIGHTED_DATASETS = ("youtube", "pokec", "livejournal", "orkut", "twitter")
WEIGHTED_DATASETS = ("dblp", "stackoverflow")

_CACHE: dict[tuple[str, int], Graph] = {}


def available_datasets() -> list[DatasetSpec]:
    """All registered dataset specs, Table 1 order."""
    return [_SPECS[name] for name in UNWEIGHTED_DATASETS + WEIGHTED_DATASETS]


def clear_dataset_cache() -> None:
    """Drop memoised graphs (tests use this to bound memory)."""
    _CACHE.clear()


def _powerlaw_expected_degrees(num_nodes: int, mean_degree: float,
                               exponent: float,
                               rng: np.random.Generator) -> np.ndarray:
    """Pareto-tailed expected degrees with the requested mean.

    Draw ``w_i ~ Pareto(exponent - 1)`` shifted to start at 1, cap at
    ``sqrt(n) * mean`` to avoid a single node owning the graph, then
    rescale so the empirical mean hits ``mean_degree`` exactly.
    """
    shape = exponent - 1.0
    raw = 1.0 + rng.pareto(shape, size=num_nodes)
    raw = np.minimum(raw, np.sqrt(num_nodes) * mean_degree)
    return raw * (mean_degree / raw.mean())


def _bridge_components(graph: Graph,
                       rng: np.random.Generator) -> Graph:
    """Attach every small component to the giant one with a single edge.

    Keeps ``n`` exact and makes the graph connected so that exact
    solvers, sweep cuts and spectrum code never special-case stray
    islands.  The handful of added edges is negligible against ``m``.
    """
    labels = graph.connected_components
    counts = np.bincount(labels)
    if counts.size == 1:
        return graph
    giant = int(np.argmax(counts))
    giant_nodes = np.flatnonzero(labels == giant)
    extra_u, extra_v = [], []
    for component in range(counts.size):
        if component == giant:
            continue
        members = np.flatnonzero(labels == component)
        extra_u.append(int(members[int(rng.integers(members.size))]))
        extra_v.append(int(giant_nodes[int(rng.integers(giant_nodes.size))]))
    arcs = graph.edges()
    upper = arcs[arcs[:, 0] < arcs[:, 1]]
    bridged = np.concatenate(
        (upper, np.column_stack((extra_u, extra_v))))
    weights = None
    if graph.is_weighted:
        mask = arcs[:, 0] < arcs[:, 1]
        weights = np.concatenate(
            (graph.weights[mask], np.ones(len(extra_u))))
    return from_edges(bridged, num_nodes=graph.num_nodes, weights=weights)


def load_dataset(name: str, *, seed: int = 2022, scale: float = 1.0,
                 connected: bool = True,
                 cache_dir: str | None = None) -> Graph:
    """Build (or fetch from cache) one synthetic stand-in dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    seed:
        Generation seed — the same ``(name, seed, scale)`` always yields
        the identical graph within a process.
    scale:
        Multiplier on the registered node count, for quick runs
        (``scale=0.25`` quarters the graph).
    connected:
        Bridge small components into the giant one (default), so
        downstream experiments see one connected graph.
    cache_dir:
        Optional directory for an on-disk cache (``.npz`` per
        configuration) so repeated processes skip regeneration.
    """
    key = name.lower()
    if key not in _SPECS:
        raise GraphError(
            f"unknown dataset {name!r}; available: "
            f"{', '.join(sorted(_SPECS))}")
    if scale <= 0:
        raise GraphError("scale must be positive")
    spec = _SPECS[key]
    num_nodes = max(10, int(round(spec.num_nodes * scale)))
    cache_key = (key, seed, num_nodes)
    if cache_key in _CACHE:
        return _CACHE[cache_key]

    disk_path = None
    if cache_dir is not None:
        disk_path = os.path.join(
            cache_dir, f"{key}-seed{seed}-n{num_nodes}"
                       f"-c{int(connected)}.npz")
        if os.path.exists(disk_path):
            graph = Graph.load(disk_path)
            _CACHE[cache_key] = graph
            return graph

    rng = ensure_rng(seed + zlib.crc32(key.encode()) % (2**31))
    expected = _powerlaw_expected_degrees(num_nodes, spec.avg_degree,
                                          spec.exponent, rng)
    graph = chung_lu(expected, rng=rng)
    if connected:
        graph = _bridge_components(graph, rng)
    if spec.weighted:
        graph = with_random_weights(graph, low=1.0, high=50.0,
                                    integer=True, rng=rng)
    _CACHE[cache_key] = graph
    if disk_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        graph.save(disk_path)
    return graph


def table1_statistics(*, seed: int = 2022, scale: float = 1.0) -> list[dict]:
    """Rows reproducing Table 1 for the stand-in graphs.

    Each row reports both the paper's original statistics and the
    stand-in's measured ``n``, ``m`` and ``d̄`` so EXPERIMENTS.md can
    show them side by side.
    """
    rows = []
    for spec in available_datasets():
        graph = load_dataset(spec.name, seed=seed, scale=scale)
        rows.append({
            "dataset": spec.name,
            "type": "weighted" if spec.weighted else "unweighted",
            "paper_n": spec.paper_nodes,
            "paper_m": spec.paper_edges,
            "paper_avg_degree": spec.paper_avg_degree,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "avg_degree": round(graph.average_degree, 2),
        })
    return rows
