"""Structural invariants checked by the test-suite and property tests.

These go beyond the cheap constructor validation in
:class:`~repro.graph.csr.Graph`: symmetry of undirected storage,
absence of self-loops and duplicates, and consistency of the cached
derived quantities.  They are deliberately O(m log m) — fine for tests,
not meant for hot paths.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import Graph

__all__ = ["check_graph_invariants"]


def check_graph_invariants(graph: Graph, *,
                           allow_self_loops: bool = False,
                           allow_parallel_edges: bool = False) -> None:
    """Raise :class:`GraphError` if any structural invariant is violated.

    Checks performed:

    1. CSR bounds (re-runs the constructor validation).
    2. No self-loops / no parallel arcs (unless allowed).
    3. Undirected graphs store an exactly symmetric arc multiset,
       including weights.
    4. ``degrees`` equals the adjacency row sums; ``total_weight``
       equals their total.
    """
    graph._validate()

    arcs = graph.edges()
    if not allow_self_loops and arcs.size and np.any(arcs[:, 0] == arcs[:, 1]):
        raise GraphError("graph contains self-loops")

    if not allow_parallel_edges and arcs.size:
        order = np.lexsort((arcs[:, 1], arcs[:, 0]))
        ordered = arcs[order]
        duplicate = np.all(ordered[1:] == ordered[:-1], axis=1)
        if np.any(duplicate):
            raise GraphError("graph contains parallel arcs")

    if not graph.directed:
        adjacency = graph.to_scipy_adjacency()
        asymmetry = abs(adjacency - adjacency.T)
        if asymmetry.nnz and asymmetry.max() > 1e-12:
            raise GraphError("undirected graph has asymmetric storage")

    row_sums = np.asarray(graph.to_scipy_adjacency().sum(axis=1)).ravel()
    if not np.allclose(graph.degrees, row_sums):
        raise GraphError("cached degrees disagree with adjacency row sums")
    if not np.isclose(graph.total_weight, row_sums.sum()):
        raise GraphError("total_weight disagrees with adjacency total")
