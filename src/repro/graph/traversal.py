"""Breadth-first traversal utilities.

Support code for locality diagnostics: how far a push frontier or a
sweep-cut cluster reaches from its seed, k-hop neighbourhood sizes,
and eccentricity estimates.  All routines are frontier-vectorised
(one NumPy pass per BFS level).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["bfs_distances", "k_hop_neighborhood", "eccentricity",
           "average_distance_to"]


def bfs_distances(graph: Graph, source: int,
                  max_depth: int | None = None) -> np.ndarray:
    """Hop distance from ``source`` to every node (−1 if unreachable).

    Follows out-arcs; on undirected graphs that is ordinary BFS.
    """
    if not 0 <= source < graph.num_nodes:
        raise ConfigError(f"source {source} out of range")
    if max_depth is None:
        max_depth = graph.num_nodes
    distances = np.full(graph.num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size and depth < max_depth:
        depth += 1
        # gather all neighbours of the frontier in one pass
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        row_ends = np.cumsum(counts)
        positions = np.arange(total) - np.repeat(row_ends - counts, counts)
        neighbors = graph.indices[np.repeat(starts, counts) + positions]
        fresh = np.unique(neighbors[distances[neighbors] < 0])
        distances[fresh] = depth
        frontier = fresh
    return distances


def k_hop_neighborhood(graph: Graph, source: int, k: int) -> np.ndarray:
    """All nodes within ``k`` hops of ``source`` (including it)."""
    if k < 0:
        raise ConfigError("k must be non-negative")
    distances = bfs_distances(graph, source, max_depth=k)
    return np.flatnonzero((distances >= 0) & (distances <= k))


def eccentricity(graph: Graph, source: int) -> int:
    """Largest hop distance from ``source`` to any reachable node."""
    distances = bfs_distances(graph, source)
    reachable = distances[distances >= 0]
    return int(reachable.max(initial=0))


def average_distance_to(graph: Graph, source: int,
                        nodes: np.ndarray) -> float:
    """Mean hop distance from ``source`` to ``nodes`` (reachable only).

    Used to quantify how local a PPR cluster or push frontier is;
    returns ``inf`` if none of ``nodes`` is reachable.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        raise ConfigError("nodes must be non-empty")
    distances = bfs_distances(graph, source)
    reachable = distances[nodes]
    reachable = reachable[reachable >= 0]
    if reachable.size == 0:
        return float("inf")
    return float(reachable.mean())
