"""Plain-text edge-list input/output (SNAP-compatible).

The format matches the SNAP datasets the paper evaluates on: one edge
per line, whitespace-separated endpoints, optional third column with a
weight, ``#``-prefixed comment lines ignored.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import GraphError
from repro.graph.build import from_edges
from repro.graph.csr import Graph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(path: str | os.PathLike, *, directed: bool = False,
                   weighted: bool | None = None) -> Graph:
    """Read a SNAP-style edge list file into a :class:`Graph`.

    Parameters
    ----------
    path:
        File with one ``u v [w]`` triple per line.
    weighted:
        Force interpretation; by default the graph is weighted iff the
        first data line has a third column.
    """
    pairs: list[tuple[int, int]] = []
    weights: list[float] = []
    has_weight_column: bool | None = weighted
    declared_nodes: int | None = None
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                # recover the node count from our own header format so
                # trailing isolated nodes survive a round trip
                fields = stripped.lstrip("#% ").split()
                if (declared_nodes is None and len(fields) >= 2
                        and fields[0] == "nodes" and fields[1].isdigit()):
                    declared_nodes = int(fields[1])
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v [w]', got {stripped!r}")
            if has_weight_column is None:
                has_weight_column = len(fields) >= 3
            try:
                pairs.append((int(fields[0]), int(fields[1])))
                if has_weight_column:
                    weights.append(float(fields[2]) if len(fields) >= 3 else 1.0)
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_number}: cannot parse {stripped!r}") from exc
    return from_edges(pairs,
                      num_nodes=declared_nodes,
                      weights=np.asarray(weights) if has_weight_column else None,
                      directed=directed)


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph to a SNAP-style edge list file.

    Undirected graphs emit each edge once (smaller endpoint first);
    weighted graphs emit a third column.
    """
    arcs = graph.edges()
    weights = graph.weights
    if not graph.directed:
        keep = arcs[:, 0] <= arcs[:, 1]
        arcs = arcs[keep]
        if weights is not None:
            weights = weights[keep]
    with open(path, "w") as handle:
        handle.write(f"# nodes {graph.num_nodes} edges {len(arcs)} "
                     f"directed {int(graph.directed)}\n")
        if weights is None:
            for u, v in arcs:
                handle.write(f"{u} {v}\n")
        else:
            for (u, v), w in zip(arcs, weights):
                handle.write(f"{u} {v} {w:.17g}\n")
