"""rsfppr — Personalized PageRank via random spanning forest sampling.

A from-scratch reproduction of Liao, Li, Dai & Wang, *Efficient
Personalized PageRank Computation: A Spanning Forests Sampling Based
Approach* (SIGMOD 2022).

The public surface mirrors the paper's structure:

- :mod:`repro.graph` — CSR graph substrate, generators, Table-1
  stand-in datasets;
- :mod:`repro.linalg` — β-Laplacian, exact solvers, spectrum / τ;
- :mod:`repro.forests` — rooted-spanning-forest sampling (Algorithm 1
  and its vectorised cycle-popping equivalent) and forest estimators;
- :mod:`repro.push` — forward / balanced-forward / power / backward /
  randomized-backward push;
- :mod:`repro.montecarlo` — α-random-walk simulation and indexes;
- :mod:`repro.core` — the query algorithms of §5 and §6 (FORA, FORAL,
  FORALV, SPEEDPPR, SPEEDL, SPEEDLV, indexed variants, BACK, RBACK,
  BACKL, BACKLV) behind :func:`repro.single_source` /
  :func:`repro.single_target`;
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure.

Quickstart::

    import repro

    graph = repro.load_dataset("youtube", scale=0.25)
    result = repro.single_source(graph, source=0, alpha=0.01,
                                 method="speedlv", seed=7)
    print(result.top_k(10))
"""

from repro.exceptions import (
    ReproError,
    GraphError,
    ConfigError,
    ConvergenceError,
)
from repro.graph import (
    Graph,
    from_edges,
    from_adjacency,
    from_scipy_sparse,
    from_networkx,
    read_edge_list,
    write_edge_list,
    load_dataset,
    available_datasets,
    table1_statistics,
)
from repro.core import (
    PPRConfig,
    PPRResult,
    single_source,
    single_target,
    SINGLE_SOURCE_METHODS,
    SINGLE_TARGET_METHODS,
)
from repro.linalg import exact_single_source, exact_single_target
from repro.forests import (
    RootedForest,
    sample_forest,
    sample_forest_wilson,
    sample_forest_cycle_popping,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "ConfigError",
    "ConvergenceError",
    "Graph",
    "from_edges",
    "from_adjacency",
    "from_scipy_sparse",
    "from_networkx",
    "read_edge_list",
    "write_edge_list",
    "load_dataset",
    "available_datasets",
    "table1_statistics",
    "PPRConfig",
    "PPRResult",
    "single_source",
    "single_target",
    "SINGLE_SOURCE_METHODS",
    "SINGLE_TARGET_METHODS",
    "exact_single_source",
    "exact_single_target",
    "RootedForest",
    "sample_forest",
    "sample_forest_wilson",
    "sample_forest_cycle_popping",
    "__version__",
]
