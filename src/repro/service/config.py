"""Configuration for the long-lived PPR query service.

:class:`ServiceConfig` gathers every serving knob — which graph/α the
index is warmed for, the micro-batching window, cache sizing, and the
HTTP bind address — in one frozen record, mirroring how
:class:`~repro.core.config.PPRConfig` centralises the query-algorithm
parameters.  ``repro serve --dry-run`` prints :meth:`describe` and
exits, which the golden-output tests pin byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import PPRConfig
from repro.exceptions import ConfigError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable serving configuration.

    Attributes
    ----------
    graph, scale:
        Dataset name (see ``repro datasets``) and scale factor the
        service loads and warms at startup.
    alpha, epsilon, budget_scale, seed, workers, push_backend:
        The :class:`~repro.core.config.PPRConfig` fields the warmed
        index and its solvers are built with; ``workers`` fans the
        index *build* out over the parallel engine and — in process
        executor mode — also sizes the query worker pool.
    executor:
        ``"thread"`` folds batches in-process on the scheduler
        threads; ``"process"`` dispatches them to a pool of
        ``workers`` forked worker processes attached to the
        shared-memory bank (see :mod:`repro.service.executor`).
        Answers are byte-identical either way.
    dynamic:
        Build repairable
        :class:`~repro.montecarlo.dynamic_index.DynamicForestIndex`
        banks so ``POST /mutate`` repairs forests incrementally
        instead of rebuilding them (see
        :meth:`~repro.service.index_manager.IndexManager.mutate`).
        Off by default: records cost memory and mutate works either
        way (it falls back to a full rebuild on static banks).
    bank_dir:
        Preload generation 0 from a saved ``repro index build`` bank
        directory instead of sampling at boot.  The bank's graph
        fingerprint and α must match the served configuration;
        relabeled (``--node-order``) float64 banks answer
        byte-identically to a freshly built index at the same seed.
        Incompatible with ``dynamic`` (static banks carry no arrow
        records) and ignored for generations > 0 (mutations resample).
    shards, shard_strategy:
        Partition the node space across ``shards`` worker pools of
        ``workers`` processes each, scatter-gathering every query
        through the :class:`~repro.shard.router.ShardRouter`
        (requires ``executor="process"``; answers stay byte-identical
        to ``shards=1``).  ``shard_strategy`` picks the
        :class:`~repro.shard.partition.ShardMap` flavour
        (``"hash"`` or ``"range"``).
    max_batch:
        Most requests one batch-solver call may group.
    max_wait_ms:
        Deadline: a partially filled batch is flushed once its oldest
        request has waited this long.
    queue_capacity:
        Bound on admitted-but-unserved requests; beyond it the
        scheduler rejects with a retry-after hint (backpressure).
    cache_entries:
        Result-cache capacity in entries (``0`` disables caching).
        Each entry stores one full estimate vector, so memory is about
        ``cache_entries * num_nodes * 8`` bytes.
    topk_max_k:
        Admission bound on a ``/topk`` request's ranking depth — a
        front-end guard only (it never changes how an admitted query
        is computed, so thread and process executors stay
        byte-identical).
    multiseed_max_seeds:
        Admission bound on a ``/multiseed`` request's seed-set size;
        front-end guard only, like ``topk_max_k``.
    host, port:
        HTTP bind address (``port=0`` lets the OS pick, handy in tests).
    trace_sample_rate:
        Fraction of requests that record a full span tree
        (head-sampling, deterministic per request id; ``0`` disables
        tracing entirely — the no-op span path).
    trace_buffer:
        How many finished traces the in-memory ring retains.
    slowlog_path:
        JSON-lines slow-query log destination (``None`` keeps the
        in-memory ring only).
    slowlog_threshold_ms:
        Latency at or above which an ok request enters the slow log;
        errors are always logged.
    slowlog_max_bytes:
        Rotate the slow-log file once it would exceed this many bytes
        (previous generation kept as ``<path>.1``); ``None`` never
        rotates.
    slo_availability_objective, slo_latency_objective, slo_latency_ms:
        The two built-in SLOs (see :mod:`repro.obs.slo`): a fraction
        of requests that must not fail, and a fraction that must
        finish within ``slo_latency_ms``.
    slo_fast_window_s, slo_slow_window_s, slo_burn_threshold:
        Multi-window burn-rate alerting: an alert fires when the
        error-budget burn rate exceeds the threshold over *both*
        windows, and clears when the fast window recovers.
    """

    graph: str = "youtube"
    scale: float = 0.25
    alpha: float = 0.01
    epsilon: float = 0.5
    budget_scale: float = 0.05
    seed: int = 2022
    workers: int = 1
    push_backend: str = "vectorized"
    executor: str = "thread"
    dynamic: bool = False
    bank_dir: str | None = None
    shards: int = 1
    shard_strategy: str = "hash"
    max_batch: int = 32
    max_wait_ms: float = 10.0
    queue_capacity: int = 256
    cache_entries: int = 512
    topk_max_k: int = 100
    multiseed_max_seeds: int = 64
    host: str = "127.0.0.1"
    port: int = 8471
    trace_sample_rate: float = 0.0
    trace_buffer: int = 256
    slowlog_path: str | None = None
    slowlog_threshold_ms: float = 250.0
    slowlog_max_bytes: int | None = None
    slo_availability_objective: float = 0.999
    slo_latency_objective: float = 0.99
    slo_latency_ms: float = 250.0
    slo_fast_window_s: float = 60.0
    slo_slow_window_s: float = 300.0
    slo_burn_threshold: float = 10.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.cache_entries < 0:
            raise ConfigError(
                f"cache_entries must be >= 0, got {self.cache_entries}")
        if self.topk_max_k < 1:
            raise ConfigError(
                f"topk_max_k must be >= 1, got {self.topk_max_k}")
        if self.multiseed_max_seeds < 1:
            raise ConfigError(
                f"multiseed_max_seeds must be >= 1, "
                f"got {self.multiseed_max_seeds}")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.executor not in ("thread", "process"):
            raise ConfigError(
                f"executor must be 'thread' or 'process', "
                f"got {self.executor!r}")
        if self.executor == "process" and self.workers < 1:
            raise ConfigError(
                "executor='process' needs workers >= 1 "
                f"(got workers={self.workers})")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.shard_strategy not in ("hash", "range"):
            raise ConfigError(
                f"shard_strategy must be 'hash' or 'range', "
                f"got {self.shard_strategy!r}")
        if self.shards > 1 and self.executor != "process":
            raise ConfigError(
                "shards > 1 needs executor='process' "
                f"(got executor={self.executor!r})")
        if self.bank_dir is not None and self.dynamic:
            raise ConfigError(
                "bank_dir does not combine with dynamic=True: saved "
                "static banks carry no arrow records to repair")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError(
                f"trace_sample_rate must be in [0, 1], "
                f"got {self.trace_sample_rate}")
        if self.trace_buffer < 1:
            raise ConfigError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}")
        if self.slowlog_threshold_ms < 0:
            raise ConfigError(
                f"slowlog_threshold_ms must be >= 0, "
                f"got {self.slowlog_threshold_ms}")
        if self.slowlog_max_bytes is not None \
                and self.slowlog_max_bytes < 1:
            raise ConfigError(
                f"slowlog_max_bytes must be >= 1, "
                f"got {self.slowlog_max_bytes}")
        for label, objective in (
                ("slo_availability_objective",
                 self.slo_availability_objective),
                ("slo_latency_objective", self.slo_latency_objective)):
            if not 0.0 < objective < 1.0:
                raise ConfigError(
                    f"{label} must be in (0, 1), got {objective}")
        if self.slo_latency_ms <= 0:
            raise ConfigError(
                f"slo_latency_ms must be > 0, got {self.slo_latency_ms}")
        if self.slo_fast_window_s <= 0 or self.slo_slow_window_s <= 0:
            raise ConfigError(
                f"SLO windows must be > 0, got "
                f"fast={self.slo_fast_window_s} "
                f"slow={self.slo_slow_window_s}")
        if self.slo_fast_window_s >= self.slo_slow_window_s:
            raise ConfigError(
                f"slo_fast_window_s ({self.slo_fast_window_s}) must be "
                f"shorter than slo_slow_window_s "
                f"({self.slo_slow_window_s})")
        if self.slo_burn_threshold <= 0:
            raise ConfigError(
                f"slo_burn_threshold must be > 0, "
                f"got {self.slo_burn_threshold}")
        # delegate the query-parameter checks (alpha range, epsilon > 0,
        # workers >= 0, known push backend) to PPRConfig
        self.ppr_config()

    # ------------------------------------------------------------------
    def ppr_config(self) -> PPRConfig:
        """The query configuration served requests are solved under."""
        return PPRConfig(alpha=self.alpha, epsilon=self.epsilon,
                         budget_scale=self.budget_scale, seed=self.seed,
                         workers=self.workers,
                         push_backend=self.push_backend)

    def with_overrides(self, **changes) -> "ServiceConfig":
        """Functional update helper (``dataclasses.replace`` wrapper)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Deterministic multi-line rendering for ``serve --dry-run``."""
        lines = ["service config:"]
        for label, value in [
                ("graph", f"{self.graph} (scale {self.scale})"),
                ("alpha", self.alpha),
                ("epsilon", self.epsilon),
                ("budget_scale", self.budget_scale),
                ("seed", self.seed),
                ("workers", self.workers),
                ("push_backend", self.push_backend),
                ("executor", self.executor),
                ("dynamic", self.dynamic),
                ("bank_dir", self.bank_dir or "build at boot"),
                ("shards", f"{self.shards} ({self.shard_strategy})"),
                ("max_batch", self.max_batch),
                ("max_wait_ms", self.max_wait_ms),
                ("queue_capacity", self.queue_capacity),
                ("cache_entries", self.cache_entries),
                ("topk_max_k", self.topk_max_k),
                ("multiseed_max_seeds", self.multiseed_max_seeds),
                ("bind", f"{self.host}:{self.port}"),
                ("trace_sample_rate", self.trace_sample_rate),
                ("slowlog", self.slowlog_path or "off"),
                ("slo", f"avail {self.slo_availability_objective} / "
                        f"latency {self.slo_latency_objective} @ "
                        f"{self.slo_latency_ms:g}ms"),
                ("slo_windows", f"{self.slo_fast_window_s:g}s/"
                                f"{self.slo_slow_window_s:g}s "
                                f"burn {self.slo_burn_threshold:g}"),
        ]:
            lines.append(f"  {label:<15} {value}")
        return "\n".join(lines)
