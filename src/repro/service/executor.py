r"""Multiprocess query executor: fold micro-batches off the GIL.

The scheduler's batched estimator fold is two CSR × dense products —
pure compute that the ``ThreadingHTTPServer`` front end serializes on
the GIL, so a thread-mode service uses one core no matter how many the
box has.  :class:`ProcessExecutor` moves the fold into a pool of
forked worker processes:

- **zero-copy tasks** — a task stub carries only
  :class:`~repro.parallel.shared_bank.BankHandle` references (segment
  names + layout) to the graph CSR bank and the index operator bank
  published by :meth:`IndexManager.shared_view`, plus the resolved
  :class:`~repro.core.config.PPRConfig` and the node list; no array
  bytes are pickled;
- **warm attach** — each worker caches its attached graphs, indexes
  and solvers per handle, so after the first batch (or an explicit
  :meth:`warm`) a task costs zero attach work;
- **byte identity** — the worker runs the *identical*
  :class:`~repro.core.batch.BatchSourceSolver` /
  :class:`~repro.core.batch.BatchTargetSolver` ``query_many`` code
  path under the identical config against the identical (shared)
  bytes, so every estimate is bit-equal to the in-process path for
  any batch size and worker count;
- **bounded in-flight** — at most ``max_in_flight`` batches are
  admitted at once; further ``run_batch`` calls block, pushing
  backpressure up into the scheduler's own bounded queue;
- **crash isolation** — every worker talks over its *own* pipe pair
  (single reader, single writer per pipe), so a SIGKILLed worker can
  never poison a shared queue lock the way a shared
  ``SimpleQueue.get`` — which holds the reader lock while blocked —
  would.  The parent assigns tasks to workers itself, so on a death
  it knows exactly which task was in flight: the monitor respawns the
  worker on fresh pipes and re-dispatches that task.  A batch that
  still cannot complete times out into :class:`ExecutorError`, which
  the scheduler answers by folding inline — degraded throughput,
  identical answers;
- **graceful shutdown** — sentinel per worker, bounded join, then
  terminate; outstanding tasks fail with :class:`ExecutorError`.

Fork is the right start method here: spawn would re-import the world
per worker, while forked workers inherit the loaded modules and
attach segments *by name*, so they can bind banks created after the
fork (an index refresh mid-flight).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing import connection

# Workers are forked — possibly by the monitor thread while the
# dispatcher, collector, HTTP server and index-refresh threads are all
# live.  A forked child that then runs `import x` can inherit the
# parent's import lock mid-acquisition and deadlock before serving its
# first task, so everything the worker code path touches lazily must
# be fully imported HERE, at module import time, before any fork.
import scipy.sparse  # noqa: F401  (pre-fork: _BankOperators lazy import)

from repro.core.config import PPRConfig
from repro.exceptions import ReproError
from repro.montecarlo.forest_index import ForestIndex
from repro.obs.tracing import Span
from repro.parallel.shared_bank import BankHandle, attach_bank
from repro.parallel.shared_graph import graph_from_bank
from repro.service.index_manager import IndexManager, SOLVER_CLASSES

__all__ = ["ProcessExecutor", "ExecutorError"]


def _normalize_items(kind: str, items) -> tuple:
    """Canonical, picklable item tuples for one batch of ``kind``.

    Plain ints for full-vector kinds, ``(source, target)`` /
    ``(node, k)`` int pairs, and ``(seeds, weights)`` tuple pairs for
    multiseed — the same shapes ``run_items`` consumes, so the worker
    passes them through untouched.
    """
    if kind == "pair":
        return tuple((int(source), int(target)) for source, target in items)
    if kind == "topk":
        return tuple((int(node), int(k)) for node, k in items)
    if kind == "multiseed":
        return tuple((tuple(int(seed) for seed in seeds),
                      tuple(float(weight) for weight in weights))
                     for seeds, weights in items)
    return tuple(int(node) for node in items)


class ExecutorError(ReproError):
    """A batch could not be completed by the worker pool.

    The scheduler treats this as "fold inline instead" — the executor
    degrades to the single-process path rather than failing queries.
    """


class _Task:
    """Picklable work stub: handles + config + nodes, no array bytes.

    ``task_id`` is echoed back in the worker's reply so the collector
    can match replies to tasks: after a timeout the parent marks the
    worker idle while the worker is still computing, and the next task
    queues behind that computation on the same pipe — without the id a
    late reply for the timed-out task would be attributed to the new
    one, silently serving one batch's estimates to another's caller.
    """

    __slots__ = ("task_id", "graph_handle", "index_handle", "config",
                 "kind", "nodes", "trace")

    def __init__(self, task_id: int, graph_handle: BankHandle,
                 index_handle: BankHandle, config: PPRConfig, kind: str,
                 nodes: tuple[int, ...], trace: bool = False):
        self.task_id = task_id
        self.graph_handle = graph_handle
        self.index_handle = index_handle
        self.config = config
        self.kind = kind
        self.nodes = nodes
        self.trace = trace

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class _TaskState:
    """Parent-side bookkeeping for one admitted batch."""

    __slots__ = ("task", "view", "event", "results", "error", "worker",
                 "pin", "done", "extra")

    def __init__(self, task: _Task, view, pin: int | None = None):
        self.task = task
        self.view = view
        self.event = threading.Event()
        self.results = None
        self.error: str | None = None
        self.worker: int | None = None  # assigned worker (while running)
        self.pin = pin                  # warm tasks target one worker
        self.done = False
        self.extra: dict | None = None  # worker-side timings/spans


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerCache:
    """Per-worker warm-attach cache: handle → live attachment.

    Bounded FIFO (old generations are retired rarely); evicted
    attachments are closed so the worker does not pin unlinked
    segments forever.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self.graphs: dict[BankHandle, tuple] = {}
        self.indexes: dict[tuple[BankHandle, BankHandle], tuple] = {}
        self.solvers: dict[tuple, object] = {}

    def graph_for(self, handle: BankHandle):
        entry = self.graphs.get(handle)
        if entry is None:
            bank = attach_bank(handle)
            entry = (graph_from_bank(bank.arrays, bank.meta), bank)
            self._evict_graphs()
            self.graphs[handle] = entry
        return entry[0]

    def index_for(self, graph_handle: BankHandle, index_handle: BankHandle):
        key = (graph_handle, index_handle)
        entry = self.indexes.get(key)
        if entry is None:
            graph = self.graph_for(graph_handle)
            bank = attach_bank(index_handle)
            index = ForestIndex.attach_bank(bank.arrays, bank.meta, graph)
            self._evict(self.indexes)
            entry = (index, bank)
            self.indexes[key] = entry
            self._drop_stale_solvers()
        return entry[0]

    def solver_for(self, task: _Task):
        key = (task.graph_handle, task.index_handle, task.config, task.kind)
        solver = self.solvers.get(key)
        if solver is None:
            graph = self.graph_for(task.graph_handle)
            cls = SOLVER_CLASSES[task.kind]
            if task.kind == "topk":
                # the top-k solver samples its own deterministic forest
                # stream; it needs the graph but borrows no bank
                solver = cls(graph, config=task.config)
            else:
                index = self.index_for(task.graph_handle,
                                       task.index_handle)
                solver = cls(graph, config=task.config, index=index)
            self._evict(self.solvers)
            self.solvers[key] = solver
        return solver

    def _evict(self, cache: dict) -> None:
        while len(cache) >= self.capacity:
            entry = cache.pop(next(iter(cache)))  # FIFO: oldest first
            if isinstance(entry, tuple) and len(entry) == 2:
                entry[1].close()

    def _evict_graphs(self) -> None:
        """Evict oldest graphs plus everything built on top of them.

        Indexes and solvers keyed on an evicted graph hold live views
        into its segments; dropping only the graph entry would keep
        those (possibly unlinked) segments mapped forever, defeating
        the eviction.
        """
        while len(self.graphs) >= self.capacity:
            handle = next(iter(self.graphs))  # FIFO: oldest first
            _, bank = self.graphs.pop(handle)
            for key in [k for k in self.indexes if k[0] == handle]:
                self.indexes.pop(key)[1].close()
            self._drop_stale_solvers()
            bank.close()

    def _drop_stale_solvers(self) -> None:
        for key in [k for k in self.solvers
                    if (k[0], k[1]) not in self.indexes]:
            del self.solvers[key]


def _worker_main(conn) -> None:
    """Worker loop: recv a task, attach warm, fold, reply; None exits.

    Replies are ``(task_id, "done"|"error", payload, extra)`` where
    ``extra`` carries worker-side observability: the fold wall time
    (always — one subtraction) and, when ``task.trace`` is set, a raw
    span subtree (attach + fold under a ``worker`` root).  Monotonic
    timestamps are system-wide on Linux, so the parent grafts those
    spans straight into the request's tree (:meth:`Span.add_raw`).
    """
    cache = _WorkerCache()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            # a terminal Ctrl-C hits the whole process group; exit
            # quietly instead of spraying one traceback per worker
            return
        if task is None:
            return
        span = None
        fold_seconds = 0.0
        try:
            if task.nodes:
                if task.trace:
                    span = Span("worker", pid=os.getpid(),
                                batch=len(task.nodes))
                    with span.child("attach"):
                        solver = cache.solver_for(task)
                else:
                    solver = cache.solver_for(task)
                started = time.perf_counter()
                if span is not None:
                    with span.child("fold"):
                        answer = solver.run_items(list(task.nodes))
                else:
                    answer = solver.run_items(list(task.nodes))
                fold_seconds = time.perf_counter() - started
            else:  # warm-attach task: bind the bank, answer nothing
                cache.index_for(task.graph_handle, task.index_handle)
                answer = []
        except BaseException as error:
            reply = (task.task_id, "error",
                     f"{type(error).__name__}: {error}", None)
        else:
            extra = {"fold_seconds": fold_seconds,
                     "spans": (span.finish().to_raw()
                               if span is not None else None)}
            reply = (task.task_id, "done", answer, extra)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ProcessExecutor:
    """Forked worker pool folding scheduler batches off-process.

    Parameters
    ----------
    index_manager:
        Source of shared-memory views (graphs + index operator banks).
    workers:
        Pool size; each worker is one fold at a time.
    max_in_flight:
        Bound on admitted-but-unfinished batches (default
        ``2 * workers``); :meth:`run_batch` blocks beyond it.
    task_timeout:
        Seconds one batch may stay unanswered (spanning respawns)
        before :meth:`run_batch` gives up with :class:`ExecutorError`.
    shard:
        Pin this pool to one shard of the manager's partitioning:
        every view it requests is the shard's *restricted* bank, so
        its workers fold only that shard's rows.  The
        :class:`~repro.shard.router.ShardRouter` runs one such pool
        per shard; ``None`` (default) serves the whole node space.
    """

    def __init__(self, index_manager: IndexManager, *, workers: int = 2,
                 max_in_flight: int | None = None,
                 task_timeout: float = 120.0,
                 shard: int | None = None):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.index_manager = index_manager
        self.num_workers = int(workers)
        self.task_timeout = float(task_timeout)
        self.shard = None if shard is None else int(shard)
        self._ctx = multiprocessing.get_context("fork")
        self._sema = threading.BoundedSemaphore(
            max_in_flight or 2 * self.num_workers)
        self._cond = threading.Condition()
        self._pending: deque[_TaskState] = deque()
        self._procs: list[multiprocessing.Process | None] = \
            [None] * self.num_workers
        self._conns: list = [None] * self.num_workers  # parent pipe ends
        # Closing a Connection while another thread is mid-recv/send on
        # it is unsafe: os.close frees the fd number, a respawn's fresh
        # pipe can reuse it instantly, and the in-flight call then reads
        # or writes an unrelated pipe (stealing message bytes and
        # desynchronizing the new worker's stream).  So stale conns are
        # only ever closed ON the collector thread, between its recv
        # cycles (the collector is the sole reader), after passing
        # through this graveyard; sends are serialized against those
        # closes by per-worker locks.
        self._graveyard: list = []  # (worker_id, stale conn) pairs
        self._send_locks = [threading.Lock()
                            for _ in range(self.num_workers)]
        self._task_ids = itertools.count()  # GIL-atomic next()
        self._busy: list[_TaskState | None] = [None] * self.num_workers
        self._busy_since = [0.0] * self.num_workers
        self._busy_seconds = [0.0] * self.num_workers
        self._tasks_done = [0] * self.num_workers
        self._respawns = 0
        self._started = False
        self._stopping = threading.Event()
        self._started_at = time.monotonic()
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        self._monitor: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ProcessExecutor":
        """Fork the workers and start the service threads; idempotent."""
        if self._started:
            return self
        self._started = True
        self._started_at = time.monotonic()
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="ppr-exec-dispatch",
            daemon=True)
        self._collector = threading.Thread(
            target=self._collect_loop, name="ppr-exec-collect", daemon=True)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="ppr-exec-monitor", daemon=True)
        self._dispatcher.start()
        self._collector.start()
        self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        """Fork one worker on a fresh pipe pair (caller holds no locks)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"ppr-exec-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()  # the worker's end lives in the worker only
        # publish the pair atomically: the dispatcher must never see a
        # live process next to a stale/absent pipe
        with self._cond:
            self._procs[worker_id] = process
            self._conns[worker_id] = parent_conn
            self._cond.notify_all()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinels, bounded join, terminate stragglers.

        Outstanding batches fail with :class:`ExecutorError` (the
        scheduler then folds them inline).  Idempotent.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        with self._cond:
            self._cond.notify_all()
        if not self._started:
            return
        # stop the dispatcher first so nothing else writes task pipes
        # while the sentinels go out (Connection.send is not
        # thread-safe per connection)
        if self._dispatcher is not None and self._dispatcher.is_alive():
            self._dispatcher.join(timeout=2.0)
        for worker_id, conn in enumerate(self._conns):
            if conn is not None:
                try:
                    with self._send_locks[worker_id]:
                        conn.send(None)
                except (BrokenPipeError, OSError, TypeError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for process in self._procs:
            if process is None:
                continue
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for thread in (self._dispatcher, self._collector, self._monitor):
            if thread is not None and thread.is_alive():
                thread.join(timeout=2.0)
        with self._cond:
            orphans = list(self._pending) + [state for state in self._busy
                                             if state is not None]
        for state in orphans:
            self._finish(state, error="executor shut down")
        with self._cond:
            graveyard, self._graveyard = self._graveyard, []
        for conn in ([conn for conn in self._conns if conn is not None]
                     + [conn for _, conn in graveyard]):
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- dispatch ------------------------------------------------------
    def run_batch(self, graph: str, kind: str, alpha: float,
                  epsilon: float, nodes, *,
                  pin: int | None = None,
                  timeout: float | None = None,
                  trace: bool = False,
                  stats: dict | None = None) -> list:
        """Fold one batch in a worker; blocks until the answer returns.

        ``nodes`` holds kind-specific items (plain node ids, or the
        pair/top-k/multiseed tuples of
        :attr:`~repro.service.scheduler.QueryRequest.payload_item`).
        Byte-identical to the in-process
        ``get_solver(...).run_items(items)`` for the same arguments.
        Raises :class:`ExecutorError` on worker failure, timeout, or
        shutdown — callers fall back to the inline fold.  ``timeout``
        overrides the pool-wide ``task_timeout`` for this call.

        ``trace=True`` asks the worker to record attach/fold spans;
        pass a ``stats`` dict to receive the worker-side extras
        (``fold_seconds`` always, ``spans`` when traced) — the result
        list itself is unchanged either way.
        """
        if not self._started or self._stopping.is_set():
            raise ExecutorError("executor is not running")
        view = self.index_manager.shared_view(graph, alpha,
                                              shard=self.shard)
        try:
            config = self.index_manager.config.with_overrides(
                alpha=alpha, epsilon=epsilon)
            task = _Task(next(self._task_ids), view.graph_handle,
                         view.index_handle, config, kind,
                         _normalize_items(kind, nodes),
                         trace=trace)
        except BaseException:
            view.release()
            raise
        state = _TaskState(task, view, pin=pin)
        self._sema.acquire()
        with self._cond:
            self._pending.append(state)
            self._cond.notify_all()
        wait = self.task_timeout if timeout is None else float(timeout)
        if not state.event.wait(wait):
            self._finish(state, error="task timed out")
        if state.error is not None:
            raise ExecutorError(f"worker batch failed: {state.error}")
        if stats is not None and state.extra is not None:
            stats.update(state.extra)
        return state.results

    def warm(self, graph: str | None = None, alpha: float | None = None,
             timeout: float = 30.0, *, banks=None) -> int:
        """Per-worker warm attach of the current bank(s).

        Dispatches one zero-node task *pinned to each worker* so every
        worker binds the graph + index segments before real traffic
        arrives.  By default all workers warm ``(graph, alpha)``;
        ``banks=`` overrides that with one entry per worker — a
        ``(graph, alpha)`` pair (``alpha=None`` for the config
        default) or ``None`` to leave that worker cold — so a pool
        whose workers serve different banks warms each against only
        its own (a sharded pool's view is already pinned to
        ``self.shard``, so its warm attaches that shard's restricted
        bank and nothing else).  Returns how many workers completed
        the warm-up within ``timeout``: each pinned call carries the
        warm deadline as its own task timeout (not the pool-wide
        ``task_timeout``), so no warm thread outlives the deadline by
        more than a beat and the returned count is a settled total,
        not a snapshot a straggler could bump later.
        """
        if banks is None:
            if graph is None:
                raise ReproError("warm() needs a graph name or banks=")
            banks = [(graph, alpha)] * self.num_workers
        else:
            banks = list(banks)
            if len(banks) != self.num_workers:
                raise ReproError(
                    f"banks= needs one entry per worker "
                    f"({self.num_workers}), got {len(banks)}")
        deadline = time.monotonic() + timeout
        threads = []
        completed_lock = threading.Lock()
        completed: list[int] = []

        def one(worker_id: int, bank_graph: str, bank_alpha: float):
            try:
                self.run_batch(bank_graph, "source", bank_alpha,
                               self.index_manager.config.epsilon, (),
                               pin=worker_id,
                               timeout=max(deadline - time.monotonic(),
                                           0.05))
                with completed_lock:
                    completed.append(worker_id)
            except ExecutorError:
                pass

        for worker_id, spec in enumerate(banks):
            if spec is None:
                continue
            bank_graph, bank_alpha = spec
            bank_alpha = (self.index_manager.config.alpha
                          if bank_alpha is None else float(bank_alpha))
            thread = threading.Thread(
                target=one, args=(worker_id, bank_graph, bank_alpha),
                daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.05)
                        + 0.5)
        with completed_lock:
            return len(completed)

    # -- completion plumbing -------------------------------------------
    def _finish(self, state: _TaskState, *, results=None,
                error: str | None = None,
                extra: dict | None = None) -> None:
        """Resolve a batch exactly once (idempotent against races)."""
        with self._cond:
            if state.done:
                return
            # results/error must be visible before done is: a racing
            # run_batch returns the moment it sees done and reads them
            state.results = results
            state.error = error
            state.extra = extra
            state.done = True
            try:
                self._pending.remove(state)
            except ValueError:
                pass
            if (state.worker is not None
                    and self._busy[state.worker] is state):
                self._busy[state.worker] = None
            self._cond.notify_all()
        state.view.release()
        self._sema.release()
        state.event.set()

    def _dispatch_loop(self) -> None:
        """Assign pending batches to idle workers over their own pipes."""
        while not self._stopping.is_set():
            with self._cond:
                assignment = self._pick_locked()
                if assignment is None:
                    self._cond.wait(timeout=0.1)
                    continue
                worker_id, state = assignment
                state.worker = worker_id
                self._busy[worker_id] = state
                self._busy_since[worker_id] = time.monotonic()
                conn = self._conns[worker_id]
            try:
                if conn is None:  # worker mid-respawn: treat as dead
                    raise BrokenPipeError
                with self._send_locks[worker_id]:
                    conn.send(state.task)
            # a conn the collector closed between our lookup and the
            # send surfaces as TypeError/ValueError from its nulled
            # handle, not just OSError
            except (BrokenPipeError, OSError, TypeError, ValueError):
                # worker just died; hand the task back, the monitor
                # respawns the worker
                with self._cond:
                    if self._busy[worker_id] is state:
                        self._busy[worker_id] = None
                    state.worker = None
                    if not state.done:
                        self._pending.appendleft(state)

    def _pick_locked(self):
        """First dispatchable (worker, task) pair, else ``None``."""
        for state in self._pending:
            candidates = ([state.pin] if state.pin is not None
                          else range(self.num_workers))
            for worker_id in candidates:
                process = self._procs[worker_id]
                if (self._busy[worker_id] is None and process is not None
                        and self._conns[worker_id] is not None
                        and process.is_alive()):
                    self._pending.remove(state)
                    return worker_id, state
        return None

    def _collect_loop(self) -> None:
        """Read completions; every pipe has exactly one reader (us).

        This thread is also the only place stale conns are *closed*
        (see ``_graveyard``): between recv cycles it cannot race its
        own reads, so a close can never redirect an in-flight recv
        onto a recycled fd.
        """
        while not self._stopping.is_set():
            with self._cond:
                graveyard, self._graveyard = self._graveyard, []
                live = [(worker_id, conn) for worker_id, conn
                        in enumerate(self._conns) if conn is not None]
            for worker_id, stale in graveyard:
                with self._send_locks[worker_id]:
                    try:
                        stale.close()
                    except OSError:
                        pass
            try:
                ready = connection.wait([conn for _, conn in live],
                                        timeout=0.1)
            except (OSError, ValueError):
                continue
            for worker_id, conn in live:
                if conn not in ready:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # dead worker: retire its conn NOW so we do not
                    # spin on the EOF until the monitor notices, and
                    # so nobody re-reads it once the fd is recycled
                    with self._cond:
                        if self._conns[worker_id] is conn:
                            self._conns[worker_id] = None
                            self._graveyard.append((worker_id, conn))
                    continue
                now = time.monotonic()
                try:
                    task_id, kind, payload, extra = message
                except (TypeError, ValueError):
                    continue
                with self._cond:
                    state = self._busy[worker_id]
                    if state is None or state.task.task_id != task_id:
                        # stale reply for a task run_batch already timed
                        # out: the worker was marked idle mid-compute,
                        # so _busy may now hold the NEXT task, queued on
                        # the pipe behind the old one.  Attributing this
                        # payload to it would hand one batch's estimates
                        # to another batch's caller — drop it and leave
                        # _busy alone; the worker still owes a reply for
                        # whatever _busy holds.
                        state = None
                    else:
                        self._busy[worker_id] = None
                        self._busy_seconds[worker_id] += \
                            now - self._busy_since[worker_id]
                        self._tasks_done[worker_id] += 1
                if state is None:
                    continue
                if kind == "done":
                    self._finish(state, results=payload, extra=extra)
                else:
                    self._finish(state, error=payload)

    def _monitor_loop(self) -> None:
        """Respawn broken workers and re-dispatch their in-flight task.

        A worker is broken when its process died, or when the
        collector retired its pipe (EOF/IO error) — a live process
        without a pipe can never be dispatched to again, so it is
        replaced the same way.
        """
        while not self._stopping.wait(0.2):
            for worker_id, process in enumerate(self._procs):
                if process is None or self._stopping.is_set():
                    continue
                with self._cond:
                    conn_gone = self._conns[worker_id] is None
                if process.is_alive():
                    if not conn_gone:
                        continue
                    process.terminate()
                    process.join(timeout=1.0)
                exitcode = process.exitcode
                with self._cond:
                    self._respawns += 1
                    stale_conn = self._conns[worker_id]
                    self._conns[worker_id] = None
                    if stale_conn is not None:
                        # closed by the collector (sole safe closer),
                        # not here: the collector may be mid-recv
                        self._graveyard.append((worker_id, stale_conn))
                    lost = self._busy[worker_id]
                    self._busy[worker_id] = None
                    if lost is not None and not lost.done:
                        lost.worker = None
                        if lost.pin is not None:
                            # a pinned warm task for a dead worker is
                            # moot; the fresh worker attaches lazily
                            pass
                        self._pending.appendleft(lost)
                    self._cond.notify_all()
                self._spawn(worker_id)
                print(f"[executor] worker {worker_id} died "
                      f"(exit {exitcode}); respawned"
                      + (", task re-dispatched" if lost is not None
                         else ""), flush=True)

    # -- observability -------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Admitted-but-unfinished batches (executor queue depth)."""
        with self._cond:
            return (len(self._pending)
                    + sum(1 for state in self._busy if state is not None))

    def utilization(self) -> list[float]:
        """Per-worker busy fraction since :meth:`start`."""
        now = time.monotonic()
        uptime = max(now - self._started_at, 1e-9)
        with self._cond:
            busy = []
            for worker_id in range(self.num_workers):
                seconds = self._busy_seconds[worker_id]
                if self._busy[worker_id] is not None:
                    seconds += now - self._busy_since[worker_id]
                busy.append(min(seconds / uptime, 1.0))
        return busy

    def stats(self) -> dict:
        """Point-in-time pool snapshot for ``/metrics`` and tests."""
        with self._cond:
            tasks_done = list(self._tasks_done)
            respawns = self._respawns
            alive = [process is not None and process.is_alive()
                     for process in self._procs]
            in_flight = (len(self._pending)
                         + sum(1 for state in self._busy
                               if state is not None))
        return {
            "mode": "process",
            "workers": self.num_workers,
            "shard": self.shard,
            "alive": alive,
            "in_flight": in_flight,
            "tasks_done": tasks_done,
            "respawns": respawns,
            "utilization": self.utilization(),
            "pid": os.getpid(),
        }
