"""The PPR query service facade: cache → scheduler → solvers.

:class:`PPRService` is the embeddable composition of the four serving
components — :class:`~repro.service.index_manager.IndexManager`,
:class:`~repro.service.scheduler.MicroBatchScheduler`,
:class:`~repro.service.cache.ResultCache`,
:class:`~repro.service.metrics.ServiceMetrics` — behind the query
endpoints :meth:`query`, :meth:`query_topk`, :meth:`query_multiseed`,
:meth:`pair`, the graph-mutation verb :meth:`mutate` and
:meth:`healthz` (plus :meth:`metrics_text` for Prometheus scrapes).  The HTTP front end in
:mod:`repro.service.http` is a thin JSON shim over exactly these
methods; benchmarks and tests drive the facade in-process to keep the
network out of the measurement.

Every answer is bit-identical to a direct
:class:`~repro.core.batch.BatchSourceSolver` /
:class:`~repro.core.batch.BatchTargetSolver` call against the same
bank — batching and caching change latency and throughput, never the
estimates.
"""

from __future__ import annotations

import time

from repro.core.batch import normalize_seed_set
from repro.core.result import PPRResult
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.graph.datasets import load_dataset
from repro.graph.delta import GraphDelta
from repro.obs.slo import SLOEngine, default_specs
from repro.obs.slowlog import SlowLog
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracing import NULL_SPAN, Tracer, new_request_id
from repro.service.cache import ResultCache, cache_key
from repro.service.config import ServiceConfig
from repro.service.index_manager import IndexManager
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import (
    MicroBatchScheduler,
    QueryRequest,
    SchedulerFull,
)

__all__ = ["PPRService"]


class PPRService:
    """Long-lived serving layer over one (or more) registered graphs.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi
    >>> from repro.service import PPRService, ServiceConfig
    >>> config = ServiceConfig(graph="demo", alpha=0.2, seed=7,
    ...                        max_wait_ms=1.0, budget_scale=0.05)
    >>> with PPRService(config, graph=erdos_renyi(40, 0.2, rng=7)) as svc:
    ...     payload = svc.query("source", 0, top=3)
    >>> payload["kind"], len(payload["top"])
    ('source', 3)
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 graph: Graph | None = None):
        self.config = config or ServiceConfig()
        if graph is None:
            graph = load_dataset(self.config.graph, scale=self.config.scale)
        self.tracer = Tracer(self.config.trace_sample_rate,
                             capacity=self.config.trace_buffer,
                             seed=self.config.seed)
        self.slowlog = SlowLog(
            self.config.slowlog_path,
            threshold_ms=self.config.slowlog_threshold_ms,
            max_bytes=self.config.slowlog_max_bytes)
        # continuous telemetry: rolling windows sized to cover the
        # longest SLO window plus the 300 s /statusz view, and the two
        # built-in burn-rate SLOs (availability + latency threshold)
        self.timeseries = TimeSeriesStore(
            interval=1.0,
            capacity=int(max(300.0, self.config.slo_slow_window_s)) + 60)
        self.slo = SLOEngine(default_specs(
            availability_objective=self.config.slo_availability_objective,
            latency_objective=self.config.slo_latency_objective,
            latency_threshold_ms=self.config.slo_latency_ms,
            fast_window_s=self.config.slo_fast_window_s,
            slow_window_s=self.config.slo_slow_window_s,
            burn_threshold=self.config.slo_burn_threshold))
        self.index_manager = IndexManager(
            self.config.ppr_config(), tracer=self.tracer,
            dynamic=self.config.dynamic, shards=self.config.shards,
            shard_strategy=self.config.shard_strategy,
            bank_dir=self.config.bank_dir)
        self.index_manager.register_graph(self.config.graph, graph)
        self.cache = ResultCache(self.config.cache_entries)
        self.metrics = ServiceMetrics(timeseries=self.timeseries,
                                      slo=self.slo)
        self.executor = None
        if self.config.shards > 1:
            from repro.shard.router import ShardRouter

            self.executor = ShardRouter(
                self.index_manager,
                workers_per_shard=self.config.workers,
                metrics=self.metrics)
        elif self.config.executor == "process":
            from repro.service.executor import ProcessExecutor

            self.executor = ProcessExecutor(
                self.index_manager, workers=self.config.workers)
        self.scheduler = MicroBatchScheduler(
            self.index_manager,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_capacity=self.config.queue_capacity,
            metrics=self.metrics,
            # one flush thread per worker so the pool actually fills
            executors=(self.executor.num_workers
                       if self.executor is not None else 1),
            executor=self.executor)
        self.metrics.register_gauge(
            "repro_service_queue_depth",
            lambda: float(self.scheduler.queue_depth))
        if self.executor is not None:
            self.metrics.register_gauge(
                "repro_service_executor_queue_depth",
                lambda: float(self.executor.in_flight))
            self.metrics.register_gauge(
                "repro_service_executor_utilization",
                lambda: {f'{{worker="{worker}"}}': value
                         for worker, value
                         in enumerate(self.executor.utilization())})
            self.metrics.register_gauge(
                "repro_service_executor_tasks",
                lambda: {f'{{worker="{worker}"}}': float(value)
                         for worker, value in enumerate(
                             self.executor.stats()["tasks_done"])})
        self.metrics.register_gauge(
            "repro_service_cache",
            lambda: {f'{{stat="{key}"}}': float(value)
                     for key, value in self.cache.stats().items()})
        self.metrics.register_gauge(
            "repro_service_index_bytes",
            lambda: {f'{{bank="{bank}"}}': float(entry["size_bytes"])
                     for bank, entry
                     in self.index_manager.stats()["banks"].items()}
            or {"": 0.0})
        self._started_at = time.time()
        self._running = False

    # -- lifecycle -----------------------------------------------------
    def start(self, warm: bool = True) -> "PPRService":
        """Warm the default bank and start the scheduler; idempotent.

        In process-executor mode the worker pool forks here — before
        the scheduler threads start — and each worker warm-attaches
        the shared bank so the first real batch pays no attach cost.
        """
        if warm:
            self.index_manager.warm(self.config.graph, self.config.alpha)
        if self.executor is not None:
            self.executor.start()
            if warm:
                self.executor.warm(self.config.graph, self.config.alpha)
        self.scheduler.start()
        self._running = True
        return self

    def stop(self) -> None:
        """Drain the scheduler, stop the pool, unlink shared segments."""
        if self._running:
            self.scheduler.stop(drain=True)
            self._running = False
        if self.executor is not None:
            self.executor.shutdown()
        self.index_manager.close_shared()
        self.slowlog.close()

    def __enter__(self) -> "PPRService":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- raw query path (benchmarks / tests) ---------------------------
    def query_result(self, kind: str, node: int, *,
                     alpha: float | None = None,
                     epsilon: float | None = None,
                     use_cache: bool = True) -> tuple[PPRResult, bool]:
        """Answer one query; returns ``(result, was_cache_hit)``.

        ``kind`` is ``"source"`` or ``"target"``; the richer kinds
        have their own raw accessors (:meth:`topk_result`,
        :meth:`multiseed_result`, :meth:`pair_result`).  The result is
        bit-identical to ``solver.query(node)`` on the corresponding
        batch solver.
        """
        result, hit, _ = self._query_traced(kind, node, alpha=alpha,
                                            epsilon=epsilon,
                                            use_cache=use_cache,
                                            span=NULL_SPAN)
        return result, hit

    def _query_traced(self, kind: str, node: int, *,
                      alpha: float | None, epsilon: float | None,
                      use_cache: bool, span,
                      tenant: str | None = None
                      ) -> tuple[PPRResult, bool, dict]:
        """The instrumented query core behind every endpoint.

        ``span`` is the request's root span (:data:`NULL_SPAN` when
        unsampled — every operation on it is then a free no-op, so
        this is also the uninstrumented fast path).  Returns
        ``(result, was_cache_hit, meta)`` where ``meta`` carries how
        the request was served (batch size / disposition) for the slow
        log and debug responses.
        """
        if kind not in ("source", "target"):
            raise ConfigError(f"kind must be 'source' or 'target', "
                              f"got {kind!r}")
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        started = time.perf_counter()
        with span.child("admission"):
            graph = self.index_manager.graph(self.config.graph)
            if not 0 <= int(node) < graph.num_nodes:
                # validate before admission so one bad node can never
                # fail the whole micro-batch it would have joined
                raise ConfigError(f"{kind} node {node} out of range "
                                  f"[0, {graph.num_nodes})")
            key = cache_key(self.config.graph, "batch", kind, int(node),
                            alpha)
        self.metrics.record_stage("admission",
                                  time.perf_counter() - started)
        request = QueryRequest(graph=self.config.graph, kind=kind,
                               node=int(node), alpha=alpha,
                               epsilon=epsilon, tenant=tenant)
        return self._serve_request(
            request, key, span, use_cache, started, metric_kind=kind,
            cache_get=lambda k: self.cache.get(k, epsilon),
            cache_put=lambda k, result: self.cache.put(k, epsilon,
                                                       result))

    def _serve_request(self, request: QueryRequest, key, span,
                       use_cache: bool, started: float, *,
                       metric_kind: str, cache_get, cache_put):
        """Cache-lookup → scheduler-submit → cache-put core shared by
        every query kind; the kind-specific cache policy (ε-dominance
        vs. top-k prefix-dominance) comes in as the two closures."""
        if use_cache:
            lookup_started = time.perf_counter()
            with span.child("cache_lookup"):
                cached = cache_get(key)
            self.metrics.record_stage(
                "cache_lookup", time.perf_counter() - lookup_started)
            if cached is not None:
                span.annotate(cached=True)
                self.metrics.record_request(metric_kind,
                                            time.perf_counter() - started,
                                            tenant=request.tenant)
                return cached, True, {"batch_size": None,
                                      "disposition": "cache"}
        try:
            pending = self.scheduler.submit_nowait(request, span)
            result = pending.resolve(30.0)
        except SchedulerFull:
            self.metrics.record_rejection(tenant=request.tenant)
            raise
        if use_cache:
            cache_put(key, result)
        self.metrics.record_request(metric_kind,
                                    time.perf_counter() - started,
                                    tenant=request.tenant,
                                    work=result.work.as_dict())
        return result, False, {"batch_size": pending.batch_size,
                               "disposition": pending.disposition}

    def _topk_traced(self, node: int, k: int, *, alpha: float | None,
                     epsilon: float | None, use_cache: bool, span,
                     tenant: str | None = None):
        """Instrumented top-k core: prefix-dominance cache + scheduler."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        node, k = int(node), int(k)
        started = time.perf_counter()
        with span.child("admission"):
            graph = self.index_manager.graph(self.config.graph)
            if not 0 <= node < graph.num_nodes:
                raise ConfigError(f"source node {node} out of range "
                                  f"[0, {graph.num_nodes})")
            if not 1 <= k < graph.num_nodes:
                raise ConfigError(f"k must lie in [1, {graph.num_nodes})")
            if k > self.config.topk_max_k:
                raise ConfigError(
                    f"k={k} exceeds the admission limit "
                    f"topk_max_k={self.config.topk_max_k}")
            key = cache_key(self.config.graph, "batch", "topk", node,
                            alpha)
        self.metrics.record_stage("admission",
                                  time.perf_counter() - started)
        request = QueryRequest(graph=self.config.graph, kind="topk",
                               node=node, alpha=alpha, epsilon=epsilon,
                               k=k, tenant=tenant)
        return self._serve_request(
            request, key, span, use_cache, started, metric_kind="topk",
            cache_get=lambda ck: self.cache.get_topk(ck, epsilon, k),
            cache_put=lambda ck, result: self.cache.put_topk(
                ck, epsilon, result.k, result))

    def _multiseed_traced(self, seeds, weights, *, alpha: float | None,
                          epsilon: float | None, use_cache: bool, span,
                          tenant: str | None = None):
        """Instrumented multiseed core: canonical seed set + ε cache."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        started = time.perf_counter()
        with span.child("admission"):
            graph = self.index_manager.graph(self.config.graph)
            seeds, weights = normalize_seed_set(seeds, weights,
                                                graph.num_nodes)
            if len(seeds) > self.config.multiseed_max_seeds:
                raise ConfigError(
                    f"{len(seeds)} seeds exceed the admission limit "
                    f"multiseed_max_seeds="
                    f"{self.config.multiseed_max_seeds}")
            key = cache_key(self.config.graph, "batch", "multiseed",
                            (seeds, weights), alpha)
        self.metrics.record_stage("admission",
                                  time.perf_counter() - started)
        request = QueryRequest(graph=self.config.graph, kind="multiseed",
                               node=seeds[0], alpha=alpha,
                               epsilon=epsilon, seeds=seeds,
                               weights=weights, tenant=tenant)
        result, hit, meta = self._serve_request(
            request, key, span, use_cache, started,
            metric_kind="multiseed",
            cache_get=lambda ck: self.cache.get(ck, epsilon),
            cache_put=lambda ck, res: self.cache.put(ck, epsilon, res))
        return result, hit, meta, seeds, weights

    def _pair_traced(self, source: int, target: int, *,
                     alpha: float | None, epsilon: float | None,
                     use_cache: bool, span, tenant: str | None = None):
        """Instrumented pair core: its own batch group + ε cache keyed
        on the ``(source, target)`` tuple."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        source, target = int(source), int(target)
        started = time.perf_counter()
        with span.child("admission"):
            graph = self.index_manager.graph(self.config.graph)
            if not 0 <= source < graph.num_nodes:
                raise ConfigError(f"source {source} out of range "
                                  f"[0, {graph.num_nodes})")
            if not 0 <= target < graph.num_nodes:
                raise ConfigError(f"target {target} out of range "
                                  f"[0, {graph.num_nodes})")
            key = cache_key(self.config.graph, "batch", "pair",
                            (source, target), alpha)
        self.metrics.record_stage("admission",
                                  time.perf_counter() - started)
        request = QueryRequest(graph=self.config.graph, kind="pair",
                               node=target, alpha=alpha, epsilon=epsilon,
                               source=source, tenant=tenant)
        return self._serve_request(
            request, key, span, use_cache, started, metric_kind="pair",
            cache_get=lambda ck: self.cache.get(ck, epsilon),
            cache_put=lambda ck, result: self.cache.put(ck, epsilon,
                                                        result))

    # -- raw query paths (benchmarks / tests) --------------------------
    def topk_result(self, node: int, k: int, *,
                    alpha: float | None = None,
                    epsilon: float | None = None,
                    use_cache: bool = True):
        """One top-k query; returns ``(TopKQueryResult, was_cache_hit)``."""
        result, hit, _ = self._topk_traced(node, k, alpha=alpha,
                                           epsilon=epsilon,
                                           use_cache=use_cache,
                                           span=NULL_SPAN)
        return result, hit

    def multiseed_result(self, seeds, weights=None, *,
                         alpha: float | None = None,
                         epsilon: float | None = None,
                         use_cache: bool = True):
        """One seed-set query; returns ``(PPRResult, was_cache_hit)``."""
        result, hit, _, _, _ = self._multiseed_traced(
            seeds, weights, alpha=alpha, epsilon=epsilon,
            use_cache=use_cache, span=NULL_SPAN)
        return result, hit

    def pair_result(self, source: int, target: int, *,
                    alpha: float | None = None,
                    epsilon: float | None = None,
                    use_cache: bool = True):
        """One pair query; returns ``(PairResult, was_cache_hit)``."""
        result, hit, _ = self._pair_traced(source, target, alpha=alpha,
                                           epsilon=epsilon,
                                           use_cache=use_cache,
                                           span=NULL_SPAN)
        return result, hit

    # -- JSON-shaped endpoints -----------------------------------------
    def query(self, kind: str, node: int, *, alpha: float | None = None,
              epsilon: float | None = None, top: int = 10,
              use_cache: bool = True, request_id: str | None = None,
              tenant: str | None = None, debug: bool = False) -> dict:
        """``/query`` semantics: top-k answer plus provenance.

        ``request_id`` propagates the client's ``X-Request-Id`` (one
        is generated otherwise); ``tenant`` attributes the request in
        the per-tenant metrics tables without affecting the answer;
        ``debug=True`` forces a trace and adds a ``debug`` block (span
        tree + work counters) to the response.  Without ``debug``, the
        payload is byte-identical whether or not the request was
        sampled.
        """
        request_id = request_id or new_request_id()
        span = self.tracer.trace("query", request_id, force=debug)
        span.annotate(endpoint="query", kind=kind, node=int(node))
        if tenant:
            span.annotate(tenant=tenant)
        started = time.perf_counter()
        try:
            result, hit, meta = self._query_traced(
                kind, node, alpha=alpha, epsilon=epsilon,
                use_cache=use_cache, span=span, tenant=tenant)
        except BaseException as error:
            self._observe_failure(span, request_id, "query", kind, node,
                                  alpha, epsilon, started, error,
                                  tenant=tenant)
            raise
        with span.child("serialize"):
            serialize_started = time.perf_counter()
            payload = {
                "kind": kind,
                "node": int(node),
                "alpha": result.alpha,
                "epsilon": result.epsilon,
                "method": result.method,
                "total_mass": result.total_mass,
                "top": [[node_id, score] for node_id, score
                        in result.top_k(top)],
                "cached": hit,
                "work": result.work.as_dict(),
            }
            self.metrics.record_stage(
                "serialize", time.perf_counter() - serialize_started)
        seconds = time.perf_counter() - started
        tree = self.tracer.finish(span) if span.enabled else None
        self.slowlog.record(
            request_id=request_id, endpoint="query", kind=kind,
            node=int(node), alpha=result.alpha, epsilon=result.epsilon,
            seconds=seconds, cached=hit, batch_size=meta["batch_size"],
            disposition=meta["disposition"],
            work=result.work.as_dict(), trace=tree)
        if debug:
            payload["debug"] = {
                "request_id": request_id,
                "trace": tree,
                "batch_size": meta["batch_size"],
                "disposition": meta["disposition"],
                "counters": self.metrics.snapshot()["work"],
            }
        return payload

    def query_topk(self, node: int, k: int, *,
                   alpha: float | None = None,
                   epsilon: float | None = None,
                   use_cache: bool = True, request_id: str | None = None,
                   tenant: str | None = None,
                   debug: bool = False) -> dict:
        """``/topk`` semantics: early-terminated ranked prefix.

        The answer set comes from the adaptive solver
        (:class:`~repro.core.topk.BatchTopKSolver`) — ``converged``
        and ``num_forests`` report how early the sequential stopping
        rule froze the ranking.  Cache hits follow prefix-dominance: a
        stored deeper ranking serves any shallower ``k``.
        """
        request_id = request_id or new_request_id()
        span = self.tracer.trace("topk", request_id, force=debug)
        span.annotate(endpoint="topk", node=int(node), k=int(k))
        if tenant:
            span.annotate(tenant=tenant)
        started = time.perf_counter()
        try:
            result, hit, meta = self._topk_traced(
                node, k, alpha=alpha, epsilon=epsilon,
                use_cache=use_cache, span=span, tenant=tenant)
        except BaseException as error:
            self._observe_failure(span, request_id, "topk", "topk", node,
                                  alpha, epsilon, started, error,
                                  tenant=tenant)
            raise
        with span.child("serialize"):
            serialize_started = time.perf_counter()
            payload = {
                "kind": "topk",
                "node": int(node),
                "k": int(k),
                "alpha": result.alpha,
                "epsilon": result.epsilon,
                "converged": bool(result.converged),
                "num_forests": int(result.num_forests),
                "top": [[node_id, score] for node_id, score
                        in result.as_pairs()],
                "cached": hit,
                "work": result.work.as_dict(),
            }
            self.metrics.record_stage(
                "serialize", time.perf_counter() - serialize_started)
        seconds = time.perf_counter() - started
        tree = self.tracer.finish(span) if span.enabled else None
        self.slowlog.record(
            request_id=request_id, endpoint="topk", kind="topk",
            node=int(node), alpha=result.alpha, epsilon=result.epsilon,
            seconds=seconds, cached=hit, batch_size=meta["batch_size"],
            disposition=meta["disposition"],
            work=result.work.as_dict(), trace=tree)
        if debug:
            payload["debug"] = {
                "request_id": request_id,
                "trace": tree,
                "batch_size": meta["batch_size"],
                "disposition": meta["disposition"],
                "counters": self.metrics.snapshot()["work"],
            }
        return payload

    def query_multiseed(self, seeds, weights=None, *,
                        alpha: float | None = None,
                        epsilon: float | None = None, top: int = 10,
                        use_cache: bool = True,
                        request_id: str | None = None,
                        tenant: str | None = None,
                        debug: bool = False) -> dict:
        """``/multiseed`` semantics: weighted seed-set personalization.

        ``weights`` default to uniform and are normalised to sum to 1;
        the response echoes the canonical seed set.  The estimate is
        bit-identical to the weighted sum of the single-seed rows (see
        :class:`~repro.core.batch.BatchMultiSeedSolver`).
        """
        request_id = request_id or new_request_id()
        span = self.tracer.trace("multiseed", request_id, force=debug)
        span.annotate(endpoint="multiseed", seeds=len(tuple(seeds)))
        if tenant:
            span.annotate(tenant=tenant)
        started = time.perf_counter()
        try:
            result, hit, meta, canonical_seeds, canonical_weights = \
                self._multiseed_traced(seeds, weights, alpha=alpha,
                                       epsilon=epsilon,
                                       use_cache=use_cache, span=span,
                                       tenant=tenant)
        except BaseException as error:
            self._observe_failure(span, request_id, "multiseed",
                                  "multiseed", -1, alpha, epsilon,
                                  started, error, tenant=tenant)
            raise
        with span.child("serialize"):
            serialize_started = time.perf_counter()
            payload = {
                "kind": "multiseed",
                "seeds": [int(seed) for seed in canonical_seeds],
                "weights": [float(weight)
                            for weight in canonical_weights],
                "alpha": result.alpha,
                "epsilon": result.epsilon,
                "method": result.method,
                "total_mass": result.total_mass,
                "top": [[node_id, score] for node_id, score
                        in result.top_k(top)],
                "cached": hit,
                "work": result.work.as_dict(),
            }
            self.metrics.record_stage(
                "serialize", time.perf_counter() - serialize_started)
        seconds = time.perf_counter() - started
        tree = self.tracer.finish(span) if span.enabled else None
        self.slowlog.record(
            request_id=request_id, endpoint="multiseed",
            kind="multiseed", node=int(canonical_seeds[0]),
            alpha=result.alpha, epsilon=result.epsilon, seconds=seconds,
            cached=hit, batch_size=meta["batch_size"],
            disposition=meta["disposition"],
            work=result.work.as_dict(), trace=tree)
        if debug:
            payload["debug"] = {
                "request_id": request_id,
                "trace": tree,
                "batch_size": meta["batch_size"],
                "disposition": meta["disposition"],
                "counters": self.metrics.snapshot()["work"],
            }
        return payload

    def pair(self, source: int, target: int, *,
             alpha: float | None = None, epsilon: float | None = None,
             use_cache: bool = True, request_id: str | None = None,
             tenant: str | None = None, debug: bool = False) -> dict:
        """``/pair`` semantics: one π(source, target) value.

        Served by the dedicated pair solver
        (:class:`~repro.core.batch.BatchPairSolver`): a backward push
        from the target plus a forest fold that gathers only the
        source entry — bit-identical to reading entry ``s`` of the
        full ``π(·, t)`` column at roughly half the fold cost.  Pairs
        batch with other pairs and cache under their own
        ``(source, target)`` key.
        """
        request_id = request_id or new_request_id()
        span = self.tracer.trace("pair", request_id, force=debug)
        span.annotate(endpoint="pair", source=int(source),
                      target=int(target))
        if tenant:
            span.annotate(tenant=tenant)
        started = time.perf_counter()
        try:
            result, hit, meta = self._pair_traced(
                source, target, alpha=alpha, epsilon=epsilon,
                use_cache=use_cache, span=span, tenant=tenant)
        except BaseException as error:
            self._observe_failure(span, request_id, "pair", "pair",
                                  target, alpha, epsilon, started, error,
                                  tenant=tenant)
            raise
        with span.child("serialize"):
            serialize_started = time.perf_counter()
            payload = {
                "source": int(source),
                "target": int(target),
                "alpha": result.alpha,
                "epsilon": result.epsilon,
                "value": float(result),
                "method": result.method,
                "cached": hit,
            }
            self.metrics.record_stage(
                "serialize", time.perf_counter() - serialize_started)
        seconds = time.perf_counter() - started
        tree = self.tracer.finish(span) if span.enabled else None
        self.slowlog.record(
            request_id=request_id, endpoint="pair", kind="pair",
            node=int(target), alpha=result.alpha,
            epsilon=result.epsilon, seconds=seconds, cached=hit,
            batch_size=meta["batch_size"],
            disposition=meta["disposition"],
            work=result.work.as_dict(), trace=tree)
        if debug:
            payload["debug"] = {
                "request_id": request_id,
                "trace": tree,
                "batch_size": meta["batch_size"],
                "disposition": meta["disposition"],
                "counters": self.metrics.snapshot()["work"],
            }
        return payload

    # -- graph mutation ------------------------------------------------
    def mutate(self, ops, *, request_id: str | None = None,
               debug: bool = False) -> dict:
        """``/mutate`` semantics: stream edge updates into the served
        graph.

        ``ops`` is a list of edge-operation dicts (see
        :meth:`~repro.graph.delta.GraphDelta.from_dicts`) or an
        already-built :class:`~repro.graph.delta.GraphDelta`.  The
        delta is applied through
        :meth:`~repro.service.index_manager.IndexManager.mutate`:
        dynamic banks repair their forests incrementally, static banks
        rebuild, and either way the new generation swaps in atomically
        while in-flight queries finish on the old one.

        The result cache is cleared afterwards — unlike ``refresh``
        (which resamples the *same* graph, so cached answers stay
        valid), a mutation changes the graph itself and every cached
        estimate describes the old one.

        Mutations are rare, structural events, so they always record a
        full trace regardless of the sampling rate.
        """
        request_id = request_id or new_request_id()
        span = self.tracer.trace("mutate", request_id, force=True)
        started = time.perf_counter()
        try:
            delta = (ops if isinstance(ops, GraphDelta)
                     else GraphDelta.from_dicts(ops))
            span.annotate(endpoint="mutate", ops=len(delta))
            summary = self.index_manager.mutate(self.config.graph, delta)
            with span.child("cache_clear"):
                self.cache.clear()
        except BaseException as error:
            self._observe_failure(span, request_id, "mutate", "mutate",
                                  -1, None, None, started, error)
            raise
        self.metrics.record_mutation(summary["work"])
        seconds = time.perf_counter() - started
        tree = self.tracer.finish(span) if span.enabled else None
        self.slowlog.record(
            request_id=request_id, endpoint="mutate", kind="mutate",
            node=-1, alpha=self.config.alpha,
            epsilon=self.config.epsilon, seconds=seconds,
            work=summary["work"], trace=tree)
        payload = dict(summary)
        payload["request_id"] = request_id
        if debug:
            payload["debug"] = {
                "request_id": request_id,
                "trace": tree,
                "counters": self.metrics.snapshot()["work"],
            }
        return payload

    def _observe_failure(self, span, request_id: str, endpoint: str,
                         kind: str, node: int, alpha: float | None,
                         epsilon: float | None, started: float,
                         error: BaseException, *,
                         tenant: str | None = None) -> None:
        """Record a failed request: error-annotated trace + slow log
        (errors bypass the latency threshold)."""
        seconds = time.perf_counter() - started
        text = f"{type(error).__name__}: {error}"
        if not isinstance(error, SchedulerFull):
            # rejections were already counted (once) on the submit
            # path; everything else is an availability-SLO failure
            self.metrics.record_failure(tenant=tenant)
        tree = None
        if span.enabled:
            span.finish(error=text)
            tree = self.tracer.finish(span)
        self.slowlog.record(
            request_id=request_id, endpoint=endpoint, kind=kind,
            node=int(node),
            alpha=self.config.alpha if alpha is None else float(alpha),
            epsilon=(self.config.epsilon if epsilon is None
                     else float(epsilon)),
            seconds=seconds, error=text, trace=tree)

    # -- observability -------------------------------------------------
    def healthz(self) -> dict:
        """Liveness + readiness summary for ``/healthz``."""
        snap = self.metrics.snapshot()
        graph = self.index_manager.graph(self.config.graph)
        shard_map = self.index_manager.shard_map(self.config.graph)
        degrees = graph.out_degrees
        return {
            "status": "ok" if self._running else "stopped",
            "uptime_seconds": time.time() - self._started_at,
            "graph": self.config.graph,
            "num_nodes": graph.num_nodes,
            "alpha": self.config.alpha,
            "queue_depth": self.scheduler.queue_depth,
            "batches": snap["batches"],
            "requests": sum(snap["requests"].values()),
            "index": self.index_manager.stats(),
            "executor": (self.executor.stats()
                         if self.executor is not None
                         else {"mode": "thread", "workers": 0}),
            "shards": {
                "count": shard_map.num_shards,
                "strategy": shard_map.strategy,
                "per_shard": [
                    {"shard": shard,
                     "nodes": int(shard_map.shard_sizes[shard]),
                     "edges": int(degrees[
                         shard_map.local_nodes(shard)].sum())}
                    for shard in range(shard_map.num_shards)],
            },
            "observability": {
                "tracing": self.tracer.stats(),
                "slowlog": self.slowlog.stats(),
            },
        }

    def statusz(self, now: float | None = None) -> dict:
        """Operational dashboard snapshot for ``/statusz``.

        Everything ``repro top`` renders comes from this one JSON
        document: the 60 s / 300 s rolling windows out of the
        time-series store, the burn-rate state of both built-in SLOs,
        and the per-tenant / per-shard attribution tables (the shard
        table includes the straggler detector's view when the service
        scatter-gathers across shards).
        """
        now = time.monotonic() if now is None else float(now)
        snap = self.metrics.snapshot()
        payload = {
            "status": "ok" if self._running else "stopped",
            "uptime_seconds": time.time() - self._started_at,
            "graph": self.config.graph,
            "queue_depth": self.scheduler.queue_depth,
            "totals": {
                "requests": sum(snap["requests"].values()),
                "rejected": snap["rejected"],
                "errors": snap["errors"],
                "batches": snap["batches"],
                "straggler_folds": sum(
                    snap.get("straggler_folds", {}).values()),
            },
            "windows": {
                "60s": self.metrics.window_snapshot(60.0, now=now),
                "300s": self.metrics.window_snapshot(300.0, now=now),
            },
            "slo": self.metrics.slo_report(now=now),
            "tenants": self.metrics.tenant_table(),
            "shards": self.metrics.shard_table(),
        }
        if self.executor is not None \
                and hasattr(self.executor, "straggler_stats"):
            payload["stragglers"] = self.executor.straggler_stats()
        return payload

    def metrics_text(self) -> str:
        """Prometheus exposition for ``/metrics``."""
        return self.metrics.render()
