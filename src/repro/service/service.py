"""The PPR query service facade: cache → scheduler → solvers.

:class:`PPRService` is the embeddable composition of the four serving
components — :class:`~repro.service.index_manager.IndexManager`,
:class:`~repro.service.scheduler.MicroBatchScheduler`,
:class:`~repro.service.cache.ResultCache`,
:class:`~repro.service.metrics.ServiceMetrics` — behind three calls:
:meth:`query`, :meth:`pair`, :meth:`healthz` (plus
:meth:`metrics_text` for Prometheus scrapes).  The HTTP front end in
:mod:`repro.service.http` is a thin JSON shim over exactly these
methods; benchmarks and tests drive the facade in-process to keep the
network out of the measurement.

Every answer is bit-identical to a direct
:class:`~repro.core.batch.BatchSourceSolver` /
:class:`~repro.core.batch.BatchTargetSolver` call against the same
bank — batching and caching change latency and throughput, never the
estimates.
"""

from __future__ import annotations

import time

from repro.core.result import PPRResult
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.graph.datasets import load_dataset
from repro.service.cache import ResultCache, cache_key
from repro.service.config import ServiceConfig
from repro.service.index_manager import IndexManager
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import (
    MicroBatchScheduler,
    QueryRequest,
    SchedulerFull,
)

__all__ = ["PPRService"]


class PPRService:
    """Long-lived serving layer over one (or more) registered graphs.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi
    >>> from repro.service import PPRService, ServiceConfig
    >>> config = ServiceConfig(graph="demo", alpha=0.2, seed=7,
    ...                        max_wait_ms=1.0, budget_scale=0.05)
    >>> with PPRService(config, graph=erdos_renyi(40, 0.2, rng=7)) as svc:
    ...     payload = svc.query("source", 0, top=3)
    >>> payload["kind"], len(payload["top"])
    ('source', 3)
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 graph: Graph | None = None):
        self.config = config or ServiceConfig()
        if graph is None:
            graph = load_dataset(self.config.graph, scale=self.config.scale)
        self.index_manager = IndexManager(self.config.ppr_config())
        self.index_manager.register_graph(self.config.graph, graph)
        self.cache = ResultCache(self.config.cache_entries)
        self.metrics = ServiceMetrics()
        self.executor = None
        if self.config.executor == "process":
            from repro.service.executor import ProcessExecutor

            self.executor = ProcessExecutor(
                self.index_manager, workers=self.config.workers)
        self.scheduler = MicroBatchScheduler(
            self.index_manager,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_capacity=self.config.queue_capacity,
            metrics=self.metrics,
            # one flush thread per worker so the pool actually fills
            executors=(self.config.workers
                       if self.executor is not None else 1),
            executor=self.executor)
        self.metrics.register_gauge(
            "repro_service_queue_depth",
            lambda: float(self.scheduler.queue_depth))
        if self.executor is not None:
            self.metrics.register_gauge(
                "repro_service_executor_queue_depth",
                lambda: float(self.executor.in_flight))
            self.metrics.register_gauge(
                "repro_service_executor_utilization",
                lambda: {f'{{worker="{worker}"}}': value
                         for worker, value
                         in enumerate(self.executor.utilization())})
            self.metrics.register_gauge(
                "repro_service_executor_tasks",
                lambda: {f'{{worker="{worker}"}}': float(value)
                         for worker, value in enumerate(
                             self.executor.stats()["tasks_done"])})
        self.metrics.register_gauge(
            "repro_service_cache",
            lambda: {f"_{key}": float(value)
                     for key, value in self.cache.stats().items()})
        self.metrics.register_gauge(
            "repro_service_index_bytes",
            lambda: {f'{{bank="{bank}"}}': float(entry["size_bytes"])
                     for bank, entry
                     in self.index_manager.stats()["banks"].items()}
            or {"": 0.0})
        self._started_at = time.time()
        self._running = False

    # -- lifecycle -----------------------------------------------------
    def start(self, warm: bool = True) -> "PPRService":
        """Warm the default bank and start the scheduler; idempotent.

        In process-executor mode the worker pool forks here — before
        the scheduler threads start — and each worker warm-attaches
        the shared bank so the first real batch pays no attach cost.
        """
        if warm:
            self.index_manager.warm(self.config.graph, self.config.alpha)
        if self.executor is not None:
            self.executor.start()
            if warm:
                self.executor.warm(self.config.graph, self.config.alpha)
        self.scheduler.start()
        self._running = True
        return self

    def stop(self) -> None:
        """Drain the scheduler, stop the pool, unlink shared segments."""
        if self._running:
            self.scheduler.stop(drain=True)
            self._running = False
        if self.executor is not None:
            self.executor.shutdown()
        self.index_manager.close_shared()

    def __enter__(self) -> "PPRService":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- raw query path (benchmarks / tests) ---------------------------
    def query_result(self, kind: str, node: int, *,
                     alpha: float | None = None,
                     epsilon: float | None = None,
                     use_cache: bool = True) -> tuple[PPRResult, bool]:
        """Answer one query; returns ``(result, was_cache_hit)``.

        ``kind`` is ``"source"`` or ``"target"``; pair queries go
        through the target path (see :meth:`pair`).  The result is
        bit-identical to ``solver.query(node)`` on the corresponding
        batch solver.
        """
        if kind not in ("source", "target"):
            raise ConfigError(f"kind must be 'source' or 'target', "
                              f"got {kind!r}")
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        graph = self.index_manager.graph(self.config.graph)
        if not 0 <= int(node) < graph.num_nodes:
            # validate before admission so one bad node can never fail
            # the whole micro-batch it would have joined
            raise ConfigError(f"{kind} node {node} out of range "
                              f"[0, {graph.num_nodes})")
        key = cache_key(self.config.graph, "batch", kind, int(node), alpha)
        started = time.perf_counter()
        if use_cache:
            cached = self.cache.get(key, epsilon)
            if cached is not None:
                self.metrics.record_request(kind, time.perf_counter()
                                            - started)
                return cached, True
        try:
            result = self.scheduler.submit(QueryRequest(
                graph=self.config.graph, kind=kind, node=int(node),
                alpha=alpha, epsilon=epsilon))
        except SchedulerFull:
            self.metrics.record_rejection()
            raise
        if use_cache:
            self.cache.put(key, epsilon, result)
        self.metrics.record_request(kind, time.perf_counter() - started)
        return result, False

    # -- JSON-shaped endpoints -----------------------------------------
    def query(self, kind: str, node: int, *, alpha: float | None = None,
              epsilon: float | None = None, top: int = 10,
              use_cache: bool = True) -> dict:
        """``/query`` semantics: top-k answer plus provenance."""
        result, hit = self.query_result(kind, node, alpha=alpha,
                                        epsilon=epsilon,
                                        use_cache=use_cache)
        return {
            "kind": kind,
            "node": int(node),
            "alpha": result.alpha,
            "epsilon": result.epsilon,
            "method": result.method,
            "total_mass": result.total_mass,
            "top": [[node_id, score] for node_id, score
                    in result.top_k(top)],
            "cached": hit,
            "work": result.work.as_dict(),
        }

    def pair(self, source: int, target: int, *,
             alpha: float | None = None, epsilon: float | None = None,
             use_cache: bool = True) -> dict:
        """``/pair`` semantics: one π(source, target) value.

        Rides the single-target path — π(s, t) is entry ``s`` of the
        ``π(·, t)`` column — so pairs share batches *and* cache entries
        with plain target queries for the same target.
        """
        graph = self.index_manager.graph(self.config.graph)
        if not 0 <= source < graph.num_nodes:
            raise ConfigError(f"source {source} out of range")
        result, hit = self.query_result("target", target, alpha=alpha,
                                        epsilon=epsilon,
                                        use_cache=use_cache)
        return {
            "source": int(source),
            "target": int(target),
            "alpha": result.alpha,
            "epsilon": result.epsilon,
            "value": result[source],
            "cached": hit,
        }

    # -- observability -------------------------------------------------
    def healthz(self) -> dict:
        """Liveness + readiness summary for ``/healthz``."""
        snap = self.metrics.snapshot()
        return {
            "status": "ok" if self._running else "stopped",
            "uptime_seconds": time.time() - self._started_at,
            "graph": self.config.graph,
            "num_nodes": self.index_manager.graph(
                self.config.graph).num_nodes,
            "alpha": self.config.alpha,
            "queue_depth": self.scheduler.queue_depth,
            "batches": snap["batches"],
            "requests": sum(snap["requests"].values()),
            "index": self.index_manager.stats(),
            "executor": (self.executor.stats()
                         if self.executor is not None
                         else {"mode": "thread", "workers": 0}),
        }

    def metrics_text(self) -> str:
        """Prometheus exposition for ``/metrics``."""
        return self.metrics.render()
