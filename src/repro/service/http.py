"""Thin HTTP front end for :class:`~repro.service.service.PPRService`.

Pure stdlib (:mod:`http.server` with the threading mixin — one thread
per connection, which is plenty because the real concurrency lives in
the micro-batching scheduler behind it).  Endpoints:

- ``POST /query``     — body ``{"kind": "source"|"target", "node": int,
  "alpha"?, "epsilon"?, "top"?}`` → top-k JSON;
- ``POST /topk``      — body ``{"node": int, "k": int, "alpha"?,
  "epsilon"?}`` → the k highest-PPR nodes with the early-termination
  verdict (``converged``, ``num_forests``);
- ``POST /multiseed`` — body ``{"seeds": [int, ...], "weights"?:
  [float, ...], "alpha"?, "epsilon"?, "top"?}`` → top-k of the
  seed-set personalization vector;
- ``POST /pair``      — body ``{"source": int, "target": int,
  "alpha"?, "epsilon"?}`` → one π(s, t) value;
- ``POST /mutate``    — body ``{"ops": [{"op": "add"|"remove"|
  "set_weight"|"upsert", "u": int, "v": int, "weight"?: float}, ...]}``
  → applies the edge updates to the served graph (dynamic banks repair
  incrementally, static banks rebuild) and reports per-bank
  generations plus the work counters;
- ``GET /healthz``    — liveness/readiness JSON;
- ``GET /metrics``    — Prometheus text format;
- ``GET /statusz``    — operational dashboard JSON (rolling windows,
  SLO burn-rate state, per-tenant and per-shard tables) — what
  ``repro top`` polls.

Request correlation: an inbound ``X-Request-Id`` header is propagated
into the trace/slow-log pipeline and echoed back; without one the
service mints an id and the response still carries it — on every
response, including 404s, 429s and 500s, so a client can always join
its failure records to the server-side slow log.  Tenant attribution:
an ``X-Tenant`` header (or ``?tenant=`` query parameter) labels the
request in the per-tenant metrics tables; it never changes the
answer.  Appending ``?debug=1`` to any POST route forces a trace and
inlines the span tree + work counters in the response's ``debug``
block.

Error mapping: malformed body → 400, unknown path → 404, queue
backpressure (:class:`~repro.service.scheduler.SchedulerFull`) → 429
with a ``Retry-After`` header, configuration errors → 400, anything
else → 500.  Responses are always JSON except ``/metrics``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError
from repro.obs.tracing import new_request_id
from repro.service.scheduler import SchedulerFull
from repro.service.service import PPRService

__all__ = ["PPRServiceServer", "make_server", "serve_forever"]

_MAX_BODY_BYTES = 1 << 20


class PPRServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`PPRService` instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PPRService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PPRServiceServer
    protocol_version = "HTTP/1.1"

    # the default handler logs every request to stderr; route through
    # nothing — the service has /metrics for observability
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, payload, *,
              content_type: str = "application/json",
              headers: dict[str, str] | None = None) -> None:
        body = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode())
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not 0 < length <= _MAX_BODY_BYTES:
            raise ValueError(f"body length {length} outside "
                             f"(0, {_MAX_BODY_BYTES}]")
        payload = json.loads(self.rfile.read(length))
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        request_id = (self.headers.get("X-Request-Id")
                      or new_request_id())
        echo = {"X-Request-Id": request_id}
        if self.path == "/healthz":
            self._send(200, self.server.service.healthz(), headers=echo)
        elif self.path == "/metrics":
            self._send(200, self.server.service.metrics_text().encode(),
                       content_type="text/plain; version=0.0.4",
                       headers=echo)
        elif self.path == "/statusz":
            self._send(200, self.server.service.statusz(), headers=echo)
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"},
                       headers=echo)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        split = urlsplit(self.path)
        # inbound correlation id (minted here when the client sent
        # none) — echoed on EVERY response below, 404s and errors
        # included, so clients can always correlate failures
        request_id = (self.headers.get("X-Request-Id")
                      or new_request_id())
        echo = {"X-Request-Id": request_id}
        if split.path not in ("/query", "/topk", "/multiseed", "/pair",
                              "/mutate"):
            self._send(404, {"error": f"unknown path {self.path!r}"},
                       headers=echo)
            return
        query_args = parse_qs(split.query)
        debug = query_args.get("debug", ["0"])[-1] not in ("", "0",
                                                           "false")
        tenant = (self.headers.get("X-Tenant")
                  or query_args.get("tenant", [None])[-1])
        try:
            body = self._read_json()
            service = self.server.service
            if split.path == "/query":
                payload = service.query(
                    str(body.get("kind", "source")), int(body["node"]),
                    alpha=_opt_float(body, "alpha"),
                    epsilon=_opt_float(body, "epsilon"),
                    top=int(body.get("top", 10)),
                    request_id=request_id, tenant=tenant, debug=debug)
            elif split.path == "/topk":
                payload = service.query_topk(
                    int(body["node"]), int(body["k"]),
                    alpha=_opt_float(body, "alpha"),
                    epsilon=_opt_float(body, "epsilon"),
                    request_id=request_id, tenant=tenant, debug=debug)
            elif split.path == "/multiseed":
                payload = service.query_multiseed(
                    [int(seed) for seed in body["seeds"]],
                    (None if body.get("weights") is None
                     else [float(w) for w in body["weights"]]),
                    alpha=_opt_float(body, "alpha"),
                    epsilon=_opt_float(body, "epsilon"),
                    top=int(body.get("top", 10)),
                    request_id=request_id, tenant=tenant, debug=debug)
            elif split.path == "/mutate":
                payload = service.mutate(body["ops"],
                                         request_id=request_id,
                                         debug=debug)
            else:
                payload = service.pair(
                    int(body["source"]), int(body["target"]),
                    alpha=_opt_float(body, "alpha"),
                    epsilon=_opt_float(body, "epsilon"),
                    request_id=request_id, tenant=tenant, debug=debug)
        except SchedulerFull as full:
            self._send(429, {"error": str(full),
                             "retry_after": full.retry_after},
                       headers={**echo, "Retry-After":
                                f"{max(full.retry_after, 0.001):.3f}"})
        except (KeyError, TypeError, ValueError,
                json.JSONDecodeError) as error:
            self._send(400, {"error": f"bad request: {error}"},
                       headers=echo)
        except ReproError as error:
            self._send(400, {"error": str(error)}, headers=echo)
        except Exception as error:  # pragma: no cover - defensive
            self._send(500, {"error": f"internal error: {error}"},
                       headers=echo)
        else:
            self._send(200, payload, headers=echo)


def _opt_float(body: dict, key: str) -> float | None:
    value = body.get(key)
    return None if value is None else float(value)


def make_server(service: PPRService, host: str | None = None,
                port: int | None = None) -> PPRServiceServer:
    """Bind (without serving) — ``server.server_port`` has the real
    port when ``port=0`` asked the OS to pick one."""
    host = service.config.host if host is None else host
    port = service.config.port if port is None else port
    return PPRServiceServer((host, port), service)


def serve_forever(server: PPRServiceServer, *,
                  in_thread: bool = False) -> threading.Thread | None:
    """Run the accept loop, optionally on a daemon thread (tests)."""
    if in_thread:
        thread = threading.Thread(target=server.serve_forever,
                                  name="ppr-http", daemon=True)
        thread.start()
        return thread
    server.serve_forever()
    return None
