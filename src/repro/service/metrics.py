"""Service metrics: latency rings, batch histogram, Prometheus text.

The serving layer reports two kinds of numbers:

- machine-independent *work* — the same
  :class:`~repro.counters.WorkCounters` threaded through every sampler
  and push kernel, aggregated across scheduler batches under a lock
  (the counters themselves are deliberately unsynchronised, see
  :meth:`~repro.counters.WorkCounters.merge`);
- *serving* statistics — request/rejection totals, queue depth, batch
  sizes, and request latency quantiles from fixed-size rings.

Everything is exposed in Prometheus text format (v0.0.4) by
:meth:`ServiceMetrics.render`, which is what the HTTP front end serves
at ``/metrics``.  Gauges owned by other components (queue depth, cache
stats, index footprint) are *pulled* at render time through registered
callables, so the registry never holds stale copies.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.counters import WorkCounters

__all__ = ["LatencyRing", "BatchSizeHistogram", "ServiceMetrics"]

#: Upper bucket bounds for the batch-size histogram (plus +Inf).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class LatencyRing:
    """Fixed-size ring of the most recent latencies, for quantiles.

    A bounded ring keeps the quantile computation O(window) regardless
    of service uptime and naturally weights towards recent traffic —
    the behaviour expected of a p99 gauge.
    """

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._values = np.zeros(window)
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one observation (thread-safe)."""
        with self._lock:
            self._values[self._next] = seconds
            self._next = (self._next + 1) % self._values.size
            self._count = min(self._count + 1, self._values.size)

    @property
    def count(self) -> int:
        """Observations recorded (lifetime, capped reporting window)."""
        return self._count

    def quantile(self, q: float) -> float:
        """The ``q``-quantile over the current window (0.0 if empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return float(np.quantile(self._values[:self._count], q))


class BatchSizeHistogram:
    """Cumulative-bucket histogram of executed batch sizes."""

    def __init__(self, bounds=BATCH_SIZE_BUCKETS):
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # trailing +Inf
        self._sum = 0
        self._total = 0
        self._lock = threading.Lock()

    def record(self, size: int) -> None:
        """Account one executed batch of ``size`` requests."""
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if size <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += size
            self._total += 1

    def snapshot(self) -> dict:
        """``{"buckets": [(le, cumulative), ...], "sum": .., "count": ..}``."""
        with self._lock:
            cumulative = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                cumulative.append((str(bound), running))
            cumulative.append(("+Inf", running + self._counts[-1]))
            return {"buckets": cumulative, "sum": self._sum,
                    "count": self._total}


class ServiceMetrics:
    """Aggregation point for every number ``/metrics`` exposes."""

    def __init__(self, latency_window: int = 2048):
        self.work = WorkCounters()
        self.latency = LatencyRing(latency_window)
        # solver-fold time per batch, split out from end-to-end request
        # latency so queueing delay and compute are separately visible
        self.fold = LatencyRing(latency_window)
        self.batch_sizes = BatchSizeHistogram()
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._rejected = 0
        self._batches = 0
        self._errors = 0
        self._gauges: dict[str, Callable[[], dict | float]] = {}

    # ------------------------------------------------------------------
    def record_request(self, endpoint: str, seconds: float) -> None:
        """One completed request on ``endpoint`` taking ``seconds``."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
        self.latency.record(seconds)

    def record_rejection(self) -> None:
        """One request rejected by backpressure."""
        with self._lock:
            self._rejected += 1

    def record_error(self) -> None:
        """One request that raised past the solver."""
        with self._lock:
            self._errors += 1

    def record_batch(self, size: int, work: WorkCounters | dict) -> None:
        """One executed scheduler batch and the work it performed."""
        self.batch_sizes.record(size)
        with self._lock:
            self._batches += 1
            self.work.merge(work)

    def record_fold(self, seconds: float) -> None:
        """Solver-fold wall time of one executed batch (compute only,
        no queueing) — the p50/p99 split the executor sizing needs."""
        self.fold.record(seconds)

    def register_gauge(self, name: str, supplier: Callable) -> None:
        """Register a pull-at-render-time gauge.

        ``supplier`` returns either a float (one gauge line) or a
        ``{label_suffix: value}`` dict (one line per entry, the suffix
        appended to the metric name as-is, e.g. a ``{...}`` label set).
        """
        self._gauges[name] = supplier

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict summary (tests and ``/healthz`` read this)."""
        with self._lock:
            requests = dict(self._requests)
            rejected, batches, errors = (self._rejected, self._batches,
                                         self._errors)
            work = self.work.snapshot_dict()
        return {
            "requests": requests,
            "rejected": rejected,
            "batches": batches,
            "errors": errors,
            "work": work,
            "latency_p50": self.latency.quantile(0.5),
            "latency_p99": self.latency.quantile(0.99),
            "fold_p50": self.fold.quantile(0.5),
            "fold_p99": self.fold.quantile(0.99),
            "batch_size": self.batch_sizes.snapshot(),
        }

    def render(self) -> str:
        """Prometheus text-format (v0.0.4) exposition."""
        snap = self.snapshot()
        lines: list[str] = []

        def emit(name: str, kind: str, help_text: str, samples) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {_fmt(value)}")

        emit("repro_service_requests_total", "counter",
             "Completed requests by endpoint.",
             [(f'{{endpoint="{ep}"}}', count)
              for ep, count in sorted(snap["requests"].items())] or
             [('{endpoint="query"}', 0)])
        emit("repro_service_rejected_total", "counter",
             "Requests rejected by queue backpressure.",
             [("", snap["rejected"])])
        emit("repro_service_errors_total", "counter",
             "Requests that failed with an internal error.",
             [("", snap["errors"])])
        emit("repro_service_batches_total", "counter",
             "Micro-batches executed by the scheduler.",
             [("", snap["batches"])])

        hist = snap["batch_size"]
        emit("repro_service_batch_size", "histogram",
             "Requests grouped per executed micro-batch.",
             [(f'_bucket{{le="{le}"}}', count)
              for le, count in hist["buckets"]]
             + [("_sum", hist["sum"]), ("_count", hist["count"])])

        emit("repro_service_latency_seconds", "summary",
             "Request latency over the recent window.",
             [('{quantile="0.5"}', snap["latency_p50"]),
              ('{quantile="0.99"}', snap["latency_p99"]),
              ("_count", self.latency.count)])

        emit("repro_service_fold_seconds", "summary",
             "Per-batch solver-fold time (compute, no queueing).",
             [('{quantile="0.5"}', snap["fold_p50"]),
              ('{quantile="0.99"}', snap["fold_p99"]),
              ("_count", self.fold.count)])

        for name, value in sorted(snap["work"].items()):
            if name == "total":
                continue
            emit(f"repro_service_work_{name}_total", "counter",
                 f"Aggregated WorkCounters field '{name}'.",
                 [("", value)])

        for name, supplier in sorted(self._gauges.items()):
            value = supplier()
            samples = (sorted(value.items()) if isinstance(value, dict)
                       else [("", value)])
            emit(name, "gauge", "Pulled at render time.", samples)

        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)
