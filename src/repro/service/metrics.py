"""Service metrics: stage histograms, work counters, Prometheus text.

The serving layer reports three kinds of numbers:

- machine-independent *work* — the same
  :class:`~repro.counters.WorkCounters` threaded through every sampler
  and push kernel, aggregated across scheduler batches under the
  registry lock (the counters themselves are deliberately
  unsynchronised, see :meth:`~repro.counters.WorkCounters.merge`);
- *serving* statistics — request/rejection totals, queue depth, batch
  sizes, and request latency quantiles from a fixed-size ring;
- *stage latencies* — one fixed-bucket log-spaced histogram per
  pipeline stage (admission, cache lookup, batch wait, dispatch,
  fold, merge, serialize; see :data:`repro.obs.histogram.STAGES`),
  sharded per thread so recording never contends a global lock.
  These replaced the bespoke p50/p99 summaries: histogram buckets are
  additive across threads and scrapes and expose the whole tail, not
  two pinned quantiles.

Everything is exposed in Prometheus text format (v0.0.4) by
:meth:`ServiceMetrics.render`, which is what the HTTP front end serves
at ``/metrics``.  Gauges owned by other components (queue depth, cache
stats, index footprint) are *pulled* at render time through registered
callables, so the registry never holds stale copies.

Consistency: every multi-field update (request count + latency ring,
batch count + work counters + batch-size histogram) happens under the
registry lock, and :meth:`snapshot` reads under the same lock — so
``/healthz`` and ``/metrics`` can never observe a torn update (e.g. a
request counted but its latency not yet recorded).
"""

from __future__ import annotations

import re
import threading
from typing import Callable

import numpy as np

from repro.counters import WorkCounters
from repro.obs.histogram import STAGES, HistogramRegistry, LatencyHistogram

__all__ = ["LatencyRing", "BatchSizeHistogram", "ServiceMetrics",
           "clean_tenant", "DEFAULT_TENANT"]

#: Upper bucket bounds for the batch-size histogram (plus +Inf).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Label every request without an (acceptable) tenant lands under.
DEFAULT_TENANT = "default"

_TENANT_PATTERN = re.compile(r"[A-Za-z0-9_.:-]{1,64}")


def clean_tenant(raw) -> str:
    """Sanitize a client-supplied tenant label for metric use.

    Tenants come straight off an HTTP header or query parameter, and
    they end up inside Prometheus label values and JSON tables — so
    anything not matching a conservative charset (alnum plus
    ``_.:-``, at most 64 chars) collapses to :data:`DEFAULT_TENANT`
    rather than polluting the exposition.
    """
    if raw is None:
        return DEFAULT_TENANT
    text = str(raw).strip()
    if _TENANT_PATTERN.fullmatch(text):
        return text
    return DEFAULT_TENANT


class _TenantStats:
    """Per-tenant accounting: counters + a latency histogram.

    Counters are guarded by the owning registry's lock; the latency
    histogram is internally thread-safe (per-thread shards), so
    observations happen outside the lock like the global one.
    """

    __slots__ = ("requests", "rejected", "errors", "work", "latency")

    def __init__(self):
        self.requests = 0
        self.rejected = 0
        self.errors = 0
        self.work = 0.0
        self.latency = LatencyHistogram()


class LatencyRing:
    """Fixed-size ring of the most recent latencies, for quantiles.

    A bounded ring keeps the quantile computation O(window) regardless
    of service uptime and naturally weights towards recent traffic —
    the behaviour expected of a p99 gauge.  The ring feeds the
    ``/healthz`` snapshot; the ``/metrics`` exposition uses the
    mergeable fixed-bucket histograms instead.
    """

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._values = np.zeros(window)
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one observation (thread-safe)."""
        with self._lock:
            self._values[self._next] = seconds
            self._next = (self._next + 1) % self._values.size
            self._count = min(self._count + 1, self._values.size)

    @property
    def count(self) -> int:
        """Observations recorded (lifetime, capped reporting window)."""
        return self._count

    def quantile(self, q: float) -> float:
        """The ``q``-quantile over the current window (0.0 if empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return float(np.quantile(self._values[:self._count], q))


class BatchSizeHistogram:
    """Cumulative-bucket histogram of executed batch sizes."""

    def __init__(self, bounds=BATCH_SIZE_BUCKETS):
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # trailing +Inf
        self._sum = 0
        self._total = 0
        self._lock = threading.Lock()

    def record(self, size: int) -> None:
        """Account one executed batch of ``size`` requests."""
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if size <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += size
            self._total += 1

    def snapshot(self) -> dict:
        """``{"buckets": [(le, cumulative), ...], "sum": .., "count": ..}``."""
        with self._lock:
            cumulative = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                cumulative.append((str(bound), running))
            cumulative.append(("+Inf", running + self._counts[-1]))
            return {"buckets": cumulative, "sum": self._sum,
                    "count": self._total}


class ServiceMetrics:
    """Aggregation point for every number ``/metrics`` exposes.

    ``timeseries`` (a :class:`~repro.obs.timeseries.TimeSeriesStore`)
    and ``slo`` (a :class:`~repro.obs.slo.SLOEngine`) are optional
    sinks: when present, every request/rejection/failure is mirrored
    into rolling windows and SLO good/bad streams on the metrics path
    — strictly after the response payload is determined, so enabling
    them can never change a response byte.
    """

    def __init__(self, latency_window: int = 2048, *,
                 timeseries=None, slo=None):
        self.work = WorkCounters()
        self.latency = LatencyRing(latency_window)
        #: end-to-end request latency, histogram form (the exposition)
        self.latency_hist = LatencyHistogram()
        #: per-stage latency histograms (admission … serialize)
        self.stages = HistogramRegistry(STAGES)
        self.batch_sizes = BatchSizeHistogram()
        #: per-shard fold latency (sharded executor only), created
        #: lazily per shard label under the registry lock
        self._shard_folds: dict[int, LatencyHistogram] = {}
        self.timeseries = timeseries
        self.slo = slo
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._tenants: dict[str, _TenantStats] = {}
        self._straggler_folds: dict[int, int] = {}
        self._rejected = 0
        self._batches = 0
        self._errors = 0
        self._mutations = 0
        self._gauges: dict[str, Callable[[], dict | float]] = {}

    def _tenant_locked(self, tenant: str) -> _TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = _TenantStats()
            self._tenants[tenant] = stats
        return stats

    # ------------------------------------------------------------------
    def record_request(self, endpoint: str, seconds: float,
                       tenant: str | None = None,
                       work: dict | None = None) -> None:
        """One completed request on ``endpoint`` taking ``seconds``.

        The counter and the latency observation land under one lock so
        a concurrent :meth:`snapshot` sees both or neither.  ``tenant``
        attributes the request (and ``work``, the result's
        WorkCounters dict — zero on cache hits) to a per-tenant table;
        the rolling store and SLO engine see the request as well.
        """
        tenant = clean_tenant(tenant)
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            self.latency.record(seconds)
            stats = self._tenant_locked(tenant)
            stats.requests += 1
            if work:
                stats.work += float(work.get("total")
                                    or sum(work.values()))
        self.latency_hist.observe(seconds)
        stats.latency.observe(seconds)
        if self.timeseries is not None:
            self.timeseries.counter("requests").add()
            self.timeseries.histogram("latency").observe(seconds)
            self.timeseries.histogram(
                f"tenant_latency.{tenant}").observe(seconds)
        if self.slo is not None:
            self.slo.observe_request(seconds)

    def record_rejection(self, tenant: str | None = None) -> None:
        """One request rejected by backpressure (bad for availability)."""
        tenant = clean_tenant(tenant)
        with self._lock:
            self._rejected += 1
            self._tenant_locked(tenant).rejected += 1
        if self.timeseries is not None:
            self.timeseries.counter("rejected").add()
        if self.slo is not None:
            self.slo.observe_rejection()

    def record_error(self) -> None:
        """One request that raised past the solver."""
        with self._lock:
            self._errors += 1

    def record_failure(self, tenant: str | None = None) -> None:
        """One failed *request* (as opposed to :meth:`record_error`'s
        per-batch counter): tenant attribution, the rolling error
        series, and an SLO bad event."""
        tenant = clean_tenant(tenant)
        with self._lock:
            self._tenant_locked(tenant).errors += 1
        if self.timeseries is not None:
            self.timeseries.counter("errors").add()
        if self.slo is not None:
            self.slo.observe_request(0.0, error=True)

    def record_batch(self, size: int, work: WorkCounters | dict) -> None:
        """One executed scheduler batch and the work it performed."""
        with self._lock:
            self.batch_sizes.record(size)
            self._batches += 1
            self.work.merge(work)

    def record_mutation(self, work: WorkCounters | dict) -> None:
        """One applied graph mutation and the repair/rebuild work it
        cost (the ``repair_*`` counter fields land here)."""
        with self._lock:
            self._mutations += 1
            self.work.merge(work)

    def record_stage(self, stage: str, seconds: float) -> None:
        """One observation for a pipeline-stage latency histogram."""
        self.stages.observe(stage, seconds)

    def record_fold(self, seconds: float) -> None:
        """Solver-fold wall time of one executed batch (compute only,
        no queueing) — the stage split executor sizing needs."""
        self.stages.observe("fold", seconds)

    def record_shard_fold(self, shard: int, seconds: float) -> None:
        """One shard's fold wall time for one scatter-gathered batch.

        Feeds ``repro_service_shard_fold_seconds{shard="k"}`` so shard
        imbalance — one partition folding consistently slower than its
        peers — is visible straight from ``/metrics``.
        """
        shard = int(shard)
        histogram = self._shard_folds.get(shard)
        if histogram is None:
            with self._lock:
                histogram = self._shard_folds.setdefault(
                    shard, LatencyHistogram())
        histogram.observe(seconds)
        if self.timeseries is not None:
            self.timeseries.histogram(
                f"shard_fold.{shard}").observe(seconds)

    def record_straggler(self, shard: int) -> None:
        """One fold flagged by the straggler detector on ``shard``.

        Feeds ``repro_service_straggler_folds_total{shard="k"}`` and
        the rolling ``straggler_folds`` series ``/statusz`` windows.
        """
        shard = int(shard)
        with self._lock:
            self._straggler_folds[shard] = \
                self._straggler_folds.get(shard, 0) + 1
        if self.timeseries is not None:
            self.timeseries.counter("straggler_folds").add()

    def register_gauge(self, name: str, supplier: Callable) -> None:
        """Register a pull-at-render-time gauge.

        ``supplier`` returns either a float (one gauge line) or a
        ``{label_suffix: value}`` dict (one line per entry, the suffix
        appended to the metric name as-is, e.g. a ``{...}`` label set).
        """
        self._gauges[name] = supplier

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict summary (tests and ``/healthz`` read this).

        All counter fields are read under the registry lock, so the
        returned dict is a consistent point-in-time cut — request
        totals, latency window, batch totals and work counters all
        reflect the same set of completed updates.
        """
        with self._lock:
            requests = dict(self._requests)
            rejected, batches, errors = (self._rejected, self._batches,
                                         self._errors)
            mutations = self._mutations
            work = self.work.snapshot_dict()
            latency_p50 = self.latency.quantile(0.5)
            latency_p99 = self.latency.quantile(0.99)
            batch_size = self.batch_sizes.snapshot()
            stragglers = dict(self._straggler_folds)
        return {
            "requests": requests,
            "rejected": rejected,
            "batches": batches,
            "errors": errors,
            "mutations": mutations,
            "work": work,
            "latency_p50": latency_p50,
            "latency_p99": latency_p99,
            "fold_p50": self.stages.quantile("fold", 0.5),
            "fold_p99": self.stages.quantile("fold", 0.99),
            "batch_size": batch_size,
            "straggler_folds": stragglers,
        }

    def tenant_table(self) -> list[dict]:
        """Per-tenant attribution rows for ``/statusz`` and tests.

        One dict per tenant, sorted by tenant label, with since-boot
        request/rejection/error counts, attributed solver work, and
        bucket-resolution latency quantiles.
        """
        with self._lock:
            tenants = sorted(self._tenants.items())
        return [{
            "tenant": tenant,
            "requests": stats.requests,
            "rejected": stats.rejected,
            "errors": stats.errors,
            "work": stats.work,
            "p50_seconds": stats.latency.quantile(0.50),
            "p99_seconds": stats.latency.quantile(0.99),
        } for tenant, stats in tenants]

    def shard_table(self) -> list[dict]:
        """Per-shard fold latency + straggler counts for ``/statusz``."""
        with self._lock:
            shards = sorted(self._shard_folds.items())
            stragglers = dict(self._straggler_folds)
        return [{
            "shard": shard,
            "folds": histogram.count,
            "straggler_folds": stragglers.get(shard, 0),
            "fold_p50_seconds": histogram.quantile(0.50),
            "fold_p99_seconds": histogram.quantile(0.99),
        } for shard, histogram in shards]

    def window_snapshot(self, window_s: float,
                        now: float | None = None) -> dict | None:
        """Rolling-window view (``None`` without a time-series store)."""
        if self.timeseries is None:
            return None
        return self.timeseries.window_snapshot(window_s, now)

    def slo_report(self, now: float | None = None) -> list[dict]:
        """Evaluate every SLO alert state machine (empty = no engine)."""
        if self.slo is None:
            return []
        return self.slo.evaluate(now)

    def render(self) -> str:
        """Prometheus text-format (v0.0.4) exposition."""
        snap = self.snapshot()
        lines: list[str] = []

        def emit(name: str, kind: str, help_text: str, samples) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {_fmt(value)}")

        def histogram_samples(snapshot: dict, labels: str = "") -> list:
            sep = "," if labels else ""
            samples = [(f'_bucket{{{labels}{sep}le="{le}"}}', count)
                       for le, count in snapshot["buckets"]]
            wrap = f"{{{labels}}}" if labels else ""
            samples.append((f"_sum{wrap}", snapshot["sum"]))
            samples.append((f"_count{wrap}", snapshot["count"]))
            return samples

        emit("repro_service_requests_total", "counter",
             "Completed requests by endpoint.",
             [(f'{{endpoint="{ep}"}}', count)
              for ep, count in sorted(snap["requests"].items())] or
             [('{endpoint="query"}', 0)])
        emit("repro_service_rejected_total", "counter",
             "Requests rejected by queue backpressure.",
             [("", snap["rejected"])])
        emit("repro_service_errors_total", "counter",
             "Requests that failed with an internal error.",
             [("", snap["errors"])])
        emit("repro_service_batches_total", "counter",
             "Micro-batches executed by the scheduler.",
             [("", snap["batches"])])
        emit("repro_service_mutations_total", "counter",
             "Graph mutations applied through /mutate.",
             [("", snap["mutations"])])

        emit("repro_service_batch_size", "histogram",
             "Requests grouped per executed micro-batch.",
             histogram_samples(snap["batch_size"]))

        emit("repro_service_latency_seconds", "histogram",
             "End-to-end request latency.",
             histogram_samples(self.latency_hist.snapshot()))

        stage_samples: list = []
        for stage, snapshot in self.stages.snapshot().items():
            stage_samples.extend(
                histogram_samples(snapshot, labels=f'stage="{stage}"'))
        emit("repro_service_stage_seconds", "histogram",
             "Per-stage pipeline latency "
             "(admission|cache_lookup|batch_wait|dispatch|fold|merge|"
             "serialize).",
             stage_samples)

        with self._lock:
            shard_folds = sorted(self._shard_folds.items())
            tenants = sorted(self._tenants.items())
            stragglers = sorted(self._straggler_folds.items())
        if shard_folds:
            shard_samples: list = []
            for shard, histogram in shard_folds:
                shard_samples.extend(histogram_samples(
                    histogram.snapshot(), labels=f'shard="{shard}"'))
            emit("repro_service_shard_fold_seconds", "histogram",
                 "Per-shard fold latency of scatter-gathered batches.",
                 shard_samples)
        if stragglers:
            emit("repro_service_straggler_folds_total", "counter",
                 "Shard folds flagged as stragglers (z-score above "
                 "threshold vs the rolling fold-time window).",
                 [(f'{{shard="{shard}"}}', count)
                  for shard, count in stragglers])
        if tenants:
            emit("repro_service_tenant_requests_total", "counter",
                 "Completed requests by tenant.",
                 [(f'{{tenant="{tenant}"}}', stats.requests)
                  for tenant, stats in tenants])
            emit("repro_service_tenant_rejected_total", "counter",
                 "Backpressure rejections by tenant.",
                 [(f'{{tenant="{tenant}"}}', stats.rejected)
                  for tenant, stats in tenants])
            emit("repro_service_tenant_errors_total", "counter",
                 "Failed requests by tenant.",
                 [(f'{{tenant="{tenant}"}}', stats.errors)
                  for tenant, stats in tenants])
            emit("repro_service_tenant_work_total", "counter",
                 "Attributed solver work (WorkCounters total) by "
                 "tenant.",
                 [(f'{{tenant="{tenant}"}}', stats.work)
                  for tenant, stats in tenants])
            tenant_samples: list = []
            for tenant, stats in tenants:
                tenant_samples.extend(histogram_samples(
                    stats.latency.snapshot(),
                    labels=f'tenant="{tenant}"'))
            emit("repro_service_tenant_latency_seconds", "histogram",
                 "End-to-end request latency by tenant.",
                 tenant_samples)

        for name, value in sorted(snap["work"].items()):
            if name == "total":
                continue
            emit(f"repro_service_work_{name}_total", "counter",
                 f"Aggregated WorkCounters field '{name}'.",
                 [("", value)])

        for name, supplier in sorted(self._gauges.items()):
            value = supplier()
            samples = (sorted(value.items()) if isinstance(value, dict)
                       else [("", value)])
            emit(name, "gauge", "Pulled at render time.", samples)

        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)
