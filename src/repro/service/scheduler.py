r"""Micro-batching scheduler: group compatible queries, share the bank.

A forest bank answers any number of queries, but every solver call has
fixed per-call overhead (push setup, estimator fold dispatch) and —
more importantly for a service — every *naive per-request* path
resamples its forests from scratch.  The scheduler sits between the
front end and the batch solvers and

- admits requests into a **bounded queue** (total across groups);
  beyond ``queue_capacity`` it rejects with
  :class:`SchedulerFull` carrying a ``retry_after`` hint
  (backpressure, surfaced as HTTP 429);
- groups requests by **compatibility key** ``(graph, kind, α, ε)`` —
  requests that can share one batch-solver call.  Incompatible
  configurations are never mixed: a group's batch binds exactly one
  solver;
- flushes a group when it reaches **max_batch** or when its oldest
  request has waited **max_wait** (deadline-based flush), whichever
  comes first.  A deadline wake-up that finds the group already
  drained is a no-op, not an error.

Results are per-request result objects — full-vector
:class:`~repro.core.result.PPRResult`, pair
:class:`~repro.core.result.PairResult`, or top-k
:class:`~repro.core.topk.TopKQueryResult` — bit-identical to calling
the underlying solver directly, because a batch is exactly
``solver.run_items([r.payload_item for r in batch])`` against the
shared deterministic bank (or, for top-k, the shared deterministic
forest stream).  Batching changes *when* work happens, never *what*
is computed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.exceptions import ConfigError, ReproError
from repro.obs.tracing import NULL_SPAN, Span
from repro.service.index_manager import IndexManager
from repro.service.metrics import ServiceMetrics

__all__ = ["QueryRequest", "SchedulerFull", "MicroBatchScheduler"]


class SchedulerFull(ReproError):
    """Raised when the admission queue is at capacity.

    ``retry_after`` is the suggested client back-off in seconds (one
    flush window — by then at least one batch has drained).
    """

    def __init__(self, depth: int, retry_after: float):
        super().__init__(
            f"scheduler queue full ({depth} pending); "
            f"retry after {retry_after:.3f}s")
        self.depth = depth
        self.retry_after = retry_after


@dataclass(frozen=True)
class QueryRequest:
    """One admitted query.

    ``kind`` is one of ``"source"``, ``"target"``, ``"pair"``,
    ``"topk"`` or ``"multiseed"``.  Every kind batches *only* with its
    own kind (plus matching graph/α/ε): the full-vector folds, the
    pair gather fold, the early-terminating top-k stream and the
    seed-set fold are different solver calls with different cost
    shapes, so mixing them in one batch would serialize unlike work
    behind one latch.

    Per-kind extras: pairs carry ``source`` (``node`` is the target,
    matching the backward-push anchor), top-k carries ``k``, multiseed
    carries canonical ``seeds``/``weights`` tuples (see
    :func:`~repro.core.batch.normalize_seed_set`).

    ``tenant`` is attribution metadata only: it rides the request into
    the batch (per-tenant accounting, batch-span annotation) but is
    deliberately NOT part of :attr:`group_key` — requests from
    different tenants still share batches, so enabling tenant labels
    changes neither batching behaviour nor a single response byte.
    """

    graph: str
    kind: str
    node: int
    alpha: float
    epsilon: float
    source: int | None = None          # pair: the row to read out
    k: int | None = None               # topk: ranking depth
    seeds: tuple | None = None         # multiseed: seed nodes
    weights: tuple | None = None       # multiseed: normalized weights
    tenant: str | None = None          # attribution label (never keyed)

    def __post_init__(self):
        if self.kind not in ("source", "target", "pair", "topk",
                             "multiseed"):
            raise ConfigError(
                f"kind must be source/target/pair/topk/multiseed, "
                f"got {self.kind!r}")
        if self.kind == "pair" and self.source is None:
            raise ConfigError("pair requests need source=")
        if self.kind == "topk" and (self.k is None or self.k < 1):
            raise ConfigError("topk requests need k >= 1")
        if self.kind == "multiseed":
            if not self.seeds or self.weights is None:
                raise ConfigError(
                    "multiseed requests need seeds= and weights=")
            object.__setattr__(self, "seeds", tuple(self.seeds))
            object.__setattr__(self, "weights", tuple(self.weights))

    @property
    def solver_kind(self) -> str:
        """Which batch solver serves this request (the kind itself —
        every kind owns a solver and a batching group)."""
        return self.kind

    @property
    def payload_item(self):
        """The kind-specific item handed to ``solver.run_items``."""
        if self.kind == "pair":
            return (self.source, self.node)
        if self.kind == "topk":
            return (self.node, self.k)
        if self.kind == "multiseed":
            return (self.seeds, self.weights)
        return self.node

    @property
    def group_key(self) -> tuple:
        """Compatibility key — requests sharing it may share a batch."""
        return (self.graph, self.solver_kind, self.alpha, self.epsilon)


class _Pending:
    """A request waiting in the queue plus its completion latch.

    ``span`` is the caller's request span (:data:`NULL_SPAN` when the
    request is unsampled); the scheduler grafts the shared batch
    subtree onto it.  ``batch_size`` and ``disposition`` record how
    the request was ultimately served — the slow log reads them after
    :meth:`resolve` returns.
    """

    __slots__ = ("request", "event", "result", "error", "enqueued_at",
                 "span", "batch_size", "disposition")

    def __init__(self, request: QueryRequest, enqueued_at: float,
                 span=NULL_SPAN):
        self.request = request
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.enqueued_at = enqueued_at
        self.span = span
        self.batch_size: int | None = None
        self.disposition: str | None = None

    def resolve(self, timeout: float | None = None):
        if not self.event.wait(timeout):
            raise TimeoutError("scheduler did not answer in time")
        if self.error is not None:
            raise self.error
        return self.result


class MicroBatchScheduler:
    """Deadline-flushed, bounded, compatibility-grouped batcher."""

    def __init__(self, index_manager: IndexManager, *,
                 max_batch: int = 32, max_wait_ms: float = 10.0,
                 queue_capacity: int = 256,
                 metrics: ServiceMetrics | None = None,
                 executors: int = 1, executor=None):
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        self.index_manager = index_manager
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.queue_capacity = int(queue_capacity)
        self.metrics = metrics
        #: optional ProcessExecutor; batches are folded in its worker
        #: pool, falling back inline on ExecutorError (same bytes
        #: either way, see repro.service.executor)
        self.executor = executor
        self.fallback_batches = 0
        self._groups: OrderedDict[tuple, deque[_Pending]] = OrderedDict()
        self._depth = 0
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._loop, daemon=True,
                             name=f"ppr-batch-{i}")
            for i in range(max(1, executors))]
        self._started = False
        self.batches_executed = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MicroBatchScheduler":
        """Start the executor thread(s); idempotent."""
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the executors, optionally draining pending requests."""
        if drain:
            deadline = time.monotonic() + max(1.0, 50 * self.max_wait)
            with self._cond:
                while self._depth and time.monotonic() < deadline:
                    self._cond.wait(timeout=0.05)
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=2.0)

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet handed to a solver."""
        with self._cond:
            return self._depth

    # -- admission -----------------------------------------------------
    def submit_nowait(self, request: QueryRequest,
                      span=NULL_SPAN) -> _Pending:
        """Admit ``request``; raises :class:`SchedulerFull` at capacity.

        ``span`` (if sampled) receives the executed batch's span
        subtree — queue wait, dispatch, fold, merge — once the batch
        containing this request completes.
        """
        now = time.monotonic()
        with self._cond:
            if self._depth >= self.queue_capacity:
                raise SchedulerFull(self._depth,
                                    retry_after=max(self.max_wait, 0.001))
            pending = _Pending(request, now, span)
            self._groups.setdefault(request.group_key,
                                    deque()).append(pending)
            self._depth += 1
            self._cond.notify()
            return pending

    def submit(self, request: QueryRequest, timeout: float | None = 30.0):
        """Admit and block until the batch containing it executes.

        Returns the request's :class:`~repro.core.result.PPRResult`
        (pair requests included — the caller reads out entry
        ``request.source``).
        """
        return self.submit_nowait(request).resolve(timeout)

    # -- executor loop -------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            with self._cond:
                batch = self._collect_locked(time.monotonic())
                if batch is None:
                    self._cond.wait(timeout=self._next_wait_locked())
                    continue
            self._execute(batch)

    def _collect_locked(self, now: float) -> list[_Pending] | None:
        """Pop one ready batch, or ``None`` when nothing is due.

        Ready = a group at ``max_batch``, or any group whose oldest
        request has aged past the flush deadline.  Groups whose
        deadline fires after being drained by another executor simply
        no longer exist here — the empty-flush case is a silent no-op.
        """
        for key, group in self._groups.items():
            if (len(group) >= self.max_batch
                    or now - group[0].enqueued_at >= self.max_wait):
                batch = [group.popleft()
                         for _ in range(min(self.max_batch, len(group)))]
                if not group:
                    del self._groups[key]
                self._depth -= len(batch)
                self._cond.notify_all()
                return batch
        return None

    def _next_wait_locked(self) -> float | None:
        """Seconds until the earliest group deadline (None = idle)."""
        if not self._groups:
            return None
        now = time.monotonic()
        oldest = min(group[0].enqueued_at
                     for group in self._groups.values())
        return max(oldest + self.max_wait - now, 0.0)

    def _execute(self, batch: list[_Pending]) -> None:
        request = batch[0].request
        now = time.monotonic()
        if self.metrics is not None:
            for pending in batch:
                self.metrics.record_stage(
                    "batch_wait", max(now - pending.enqueued_at, 0.0))
        for pending in batch:
            pending.batch_size = len(batch)
        # one real span tree is shared by every sampled request in the
        # batch — the work happened once, so it is recorded once and
        # grafted (as a finished raw subtree) onto each sampled span
        traced = [pending for pending in batch if pending.span.enabled]
        batch_span = (Span("batch", size=len(batch),
                           kind=request.solver_kind)
                      if traced else NULL_SPAN)
        if traced:
            tenants = sorted({pending.request.tenant
                              for pending in batch
                              if pending.request.tenant})
            if tenants:
                batch_span.annotate(tenants=tenants)
        try:
            if self.executor is not None:
                # cheap pre-validation so an unknown graph fails at the
                # same stage it would on the inline path
                self.index_manager.graph(request.graph)
                solver = None
            else:
                solver = self.index_manager.get_solver(
                    request.graph, request.solver_kind,
                    alpha=request.alpha, epsilon=request.epsilon)
        except BaseException as error:  # propagate to every waiter
            self._attach_batch_span(traced, batch_span, error=str(error))
            for pending in batch:
                pending.disposition = "error"
                pending.error = error
                pending.event.set()
            if self.metrics is not None:
                self.metrics.record_error()
            return
        nodes = [pending.request.payload_item for pending in batch]
        work_sum = None
        stats: dict = {}
        started = time.perf_counter()
        try:
            results = self._fold(request, nodes, solver, batch_span,
                                 stats)
        except BaseException as error:
            self._attach_batch_span(traced, batch_span, error=str(error))
            for pending in batch:
                pending.disposition = "error"
                pending.error = error
                pending.event.set()
            if self.metrics is not None:
                self.metrics.record_error()
                self.metrics.record_batch(len(batch), {})
            with self._cond:
                self.batches_executed += 1
            return
        total_seconds = time.perf_counter() - started
        # worker-reported compute time when the executor served us,
        # otherwise the inline fold IS the whole call
        fold_seconds = stats.get("fold_seconds", total_seconds)
        disposition = stats.get("disposition", "inline")
        merge_span = batch_span.child("merge")
        merge_started = time.perf_counter()
        for pending, result in zip(batch, results):
            work_sum = (result.work if work_sum is None
                        else work_sum.merge(result.work))
            pending.disposition = disposition
            pending.result = result
        merge_seconds = time.perf_counter() - merge_started
        merge_span.finish()
        self._attach_batch_span(traced, batch_span)
        # wake the waiters only after their spans are grafted —
        # resolve() reads pending.span/disposition immediately
        for pending in batch:
            pending.event.set()
        with self._cond:
            self.batches_executed += 1
        if self.metrics is not None:
            self.metrics.record_batch(
                len(batch), work_sum if work_sum is not None else {})
            self.metrics.record_fold(fold_seconds)
            self.metrics.record_stage("merge", merge_seconds)
            if disposition == "executor":
                self.metrics.record_stage("dispatch",
                                          max(total_seconds
                                              - fold_seconds, 0.0))

    @staticmethod
    def _attach_batch_span(traced: list[_Pending], batch_span,
                           error: str | None = None) -> None:
        """Finish the shared batch span and graft it onto every
        sampled request in the batch."""
        if not traced:
            return
        raw = batch_span.finish(error=error).to_raw()
        for pending in traced:
            pending.span.add_raw(raw)

    def _fold(self, request: QueryRequest, nodes: list, solver,
              span, stats: dict):
        """Run one batch — in a worker process when an executor is
        attached (falling back inline on :class:`ExecutorError`),
        inline otherwise.  Both paths run the identical
        ``run_items`` code against the identical bank bytes, so the
        answers are byte-equal.

        ``span`` gets a ``dispatch`` child (worker round trip, with
        the worker's own attach/fold spans grafted inside) or an
        inline ``fold`` child; ``stats`` comes back with
        ``fold_seconds`` and ``disposition``
        (``executor``/``fallback``/``inline``)."""
        if self.executor is not None:
            from repro.service.executor import ExecutorError

            try:
                with span.child("dispatch") as dispatch:
                    results = self.executor.run_batch(
                        request.graph, request.solver_kind,
                        request.alpha, request.epsilon, nodes,
                        trace=span.enabled, stats=stats)
                    dispatch.add_raw(stats.pop("spans", None))
                    if stats.get("stragglers"):
                        # flag slow shards on the scatter-gather span
                        dispatch.annotate(
                            stragglers=stats["stragglers"])
                stats["disposition"] = "executor"
                return results
            except ExecutorError:
                with self._cond:
                    self.fallback_batches += 1
                stats.pop("fold_seconds", None)
                stats["disposition"] = "fallback"
        if solver is None:
            solver = self.index_manager.get_solver(
                request.graph, request.solver_kind,
                alpha=request.alpha, epsilon=request.epsilon)
        with span.child("fold"):
            started = time.perf_counter()
            results = solver.run_items(nodes)
            stats["fold_seconds"] = time.perf_counter() - started
        stats.setdefault("disposition", "inline")
        return results
