r"""ε-aware LRU result cache for the serving layer.

PPR answers are keyed by what determines them — ``(graph, algo, kind,
node, α)`` — while the accuracy parameter ε lives *inside* the entry:
an answer computed at ε′ carries at least the accuracy of any looser
ε ≥ ε′, so a single cached tight answer satisfies every looser query
for the same key (the ε-dominance rule).  Storing ε in the key instead
would fragment the cache across accuracy tiers and never let a tight
answer serve a loose request.

Top-k answers need a second dominance axis: a depth-``k`` ranking
contains every depth-``k' ≤ k`` ranking as its prefix, *and* a deeper
answer was frozen at (or after) the shallower one's convergence point,
so it is at least as refined.  :meth:`ResultCache.get_topk` /
:meth:`ResultCache.put_topk` implement this **prefix-dominance** rule:
a stored entry serves any request with ``k' ≤ stored k`` (trimmed to
the requested depth via ``value.prefix(k')``), and admission only ever
*deepens* an entry — mirroring how ``put`` never loosens ε.

The cache is a plain lock-guarded ``OrderedDict`` LRU with hit / miss /
eviction counters for the ``/metrics`` endpoint.  Values are whatever
the service stores (full :class:`~repro.core.result.PPRResult` objects
by default), so capacity should be sized against
``entries × num_nodes × 8`` bytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["ResultCache", "cache_key"]


def cache_key(graph: str, algo: str, kind: str, node: Hashable,
              alpha: float) -> tuple:
    """Canonical cache key — everything that determines the answer
    except ε (which is ε-dominance-matched at lookup time)."""
    return (graph, algo, kind, node, float(alpha))


@dataclass
class _Entry:
    epsilon: float
    value: Any
    k: int | None = None


class ResultCache:
    """Thread-safe LRU cache with ε-dominance lookup semantics.

    ``capacity=0`` disables the cache: every ``get`` misses and ``put``
    is a no-op, so callers never need to special-case the off switch.

    Examples
    --------
    >>> cache = ResultCache(capacity=2)
    >>> key = cache_key("youtube", "batch", "source", 7, 0.01)
    >>> cache.put(key, epsilon=0.25, value="tight answer")
    >>> cache.get(key, epsilon=0.5)   # looser query: tight answer ok
    'tight answer'
    >>> cache.get(key, epsilon=0.1) is None   # tighter query: miss
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(self, capacity: int = 512):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: tuple, epsilon: float):
        """Return the cached value if one exists at ε′ ≤ ``epsilon``.

        A hit refreshes the entry's LRU position; a stored answer
        *looser* than the request counts as a miss (the caller must
        recompute, and its :meth:`put` will tighten the entry).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.epsilon <= epsilon:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.value
            self._misses += 1
            return None

    def put(self, key: tuple, epsilon: float, value) -> None:
        """Store ``value`` computed at accuracy ``epsilon``.

        Never *loosens* an entry: if a tighter answer is already cached
        under ``key`` its value is kept and only its LRU position is
        refreshed.  Evicts least-recently-used entries beyond capacity.
        """
        if self.capacity == 0:
            return
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or epsilon < entry.epsilon:
                self._entries[key] = _Entry(float(epsilon), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_topk(self, key: tuple, epsilon: float, k: int):
        """Prefix-dominance lookup for a depth-``k`` top-k request.

        A hit requires a stored top-k entry that dominates on *both*
        axes — ``entry.k >= k`` (the answer contains the requested
        prefix) and ``entry.epsilon <= epsilon`` — and serves the
        stored value trimmed to the requested depth.  A shallower or
        looser entry is a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if (entry is not None and entry.k is not None
                    and entry.k >= k and entry.epsilon <= epsilon):
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.value.prefix(k)
            self._misses += 1
            return None

    def put_topk(self, key: tuple, epsilon: float, k: int, value) -> None:
        """Prefix-dominance admission for a depth-``k`` answer.

        Only ever *deepens* (or, at equal depth, tightens) the stored
        entry: a depth-20 answer replaces a depth-10 one and then
        serves every ``k <= 20`` request, while a depth-5 answer
        arriving later leaves the deeper entry in place and just
        refreshes its LRU position.
        """
        if self.capacity == 0:
            return
        with self._lock:
            entry = self._entries.get(key)
            if (entry is None or entry.k is None or k > entry.k
                    or (k == entry.k and epsilon < entry.epsilon)):
                self._entries[key] = _Entry(float(epsilon), value, int(k))
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime
        totals for the metrics endpoint)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot: size, capacity, hits, misses, evictions, hit_rate."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }
