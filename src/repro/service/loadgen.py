"""Closed-loop HTTP load generator for the PPR service.

Each of ``concurrency`` clients issues its next request only after the
previous one completes (closed loop), drawing source nodes from a
Zipf-like distribution — the workload shape the paper's Fig-12
query-distribution experiment uses and the shape real PPR serving
sees (a heavy head of popular seeds).  Doubles as the CI smoke
checker:

    python -m repro.service.loadgen --url http://127.0.0.1:8471 \
        --requests 64 --concurrency 8 --check-metrics

exits non-zero unless every request returned 200 with valid JSON and
(with ``--check-metrics``) the ``/metrics`` endpoint shows non-zero
request/batch counters and a populated latency summary.
``--check-exposition`` additionally runs the strict format checker
(:mod:`repro.obs.exposition`) against the live document, and
``--tenants "acme:2,beta:1"`` cycles an ``X-Tenant`` header over the
burst — the summary then carries per-tenant p50/p99 and
``--check-metrics`` asserts every tenant label reached the
exposition.  Every request sends a fresh ``X-Request-Id``; failure
records echo the id the server answered with.

Scenarios: ``--kind`` picks the request shape — ``source``/``target``
hit ``POST /query``, ``topk`` hits ``/topk`` (depth ``--topk-k``),
``multiseed`` hits ``/multiseed`` (``--seeds-per-query`` seeds drawn
from the same Zipf stream), ``pair`` hits ``/pair``, ``mixed``
round-robins across all of them, and ``churn`` interleaves queries
with graph mutations — every ``--mutate-every``-th request is a
``POST /mutate`` carrying one ``upsert`` edge op (upsert is always
valid whether or not the edge exists, so concurrent clients can never
race each other into a rejected delta).  Every scenario is
deterministic in ``--seed``, so two services fed the same burst see
byte-identical request streams.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.obs.exposition import check_exposition
from repro.obs.histogram import exact_quantile
from repro.obs.tracing import new_request_id

__all__ = ["build_requests", "parse_tenants", "run_load", "main"]

KINDS = ("source", "target", "topk", "multiseed", "pair", "mixed",
         "churn")


def _post_json(url: str, payload: dict, timeout: float = 30.0,
               headers: dict[str, str] | None = None) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def parse_tenants(spec: str | None) -> list[str]:
    """``"acme:2,beta:1"`` → ``["acme", "acme", "beta"]``.

    The expanded list is cycled over the burst positions, so the mix
    is deterministic (request *i* always belongs to the same tenant)
    and the weights are exact over each full cycle.  A bare name means
    weight 1; blank/None means no tenant labelling at all.
    """
    if not spec:
        return []
    cycle: list[str] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"tenant spec part {part!r} has no name")
        count = int(weight) if weight else 1
        if count < 1:
            raise ValueError(f"tenant {name!r} weight must be >= 1, "
                             f"got {count}")
        cycle.extend([name] * count)
    return cycle


def _get(url: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def zipf_nodes(num_nodes: int, count: int, *, exponent: float = 1.1,
               seed: int = 2022) -> np.ndarray:
    """``count`` node ids with Zipf(``exponent``) popularity over the
    node range (ranks clipped into ``[0, num_nodes)``)."""
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(exponent, size=count)
    return np.minimum(ranks - 1, num_nodes - 1).astype(np.int64)


def build_requests(kind: str, nodes, num_nodes: int, *,
                   topk_k: int = 10, seeds_per_query: int = 3,
                   mutate_every: int = 8,
                   seed: int = 2022) -> list[tuple[str, dict, str]]:
    """One ``(path, body, ok_key)`` triple per burst position.

    ``ok_key`` is the response field whose presence marks success
    (``"top"`` for ranked answers, ``"value"`` for pair answers,
    ``"banks"`` for mutations).  Deterministic in ``seed`` so
    identical bursts can be replayed against two services for
    byte-level comparison.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown load kind {kind!r} (choose from {KINDS})")
    rng = np.random.default_rng(seed + 1)
    num_nodes = max(1, num_nodes)
    plans: list[tuple[str, dict, str]] = []
    for position, node in enumerate(int(n) for n in nodes):
        shape = kind
        if kind == "mixed":
            shape = ("source", "topk", "multiseed",
                     "pair")[position % 4]
        elif kind == "churn":
            # queries with a mutation every mutate_every-th request;
            # a one-node graph has no edge to upsert, so stay a query
            mutating = (num_nodes > 1 and mutate_every > 0
                        and position % mutate_every == mutate_every - 1)
            shape = "mutate" if mutating else "source"
        if shape == "mutate":
            other = (node + 1 + int(rng.integers(num_nodes - 1))) \
                % num_nodes
            weight = round(float(rng.uniform(0.5, 2.0)), 3)
            plans.append(("/mutate", {"ops": [{"op": "upsert", "u": node,
                                               "v": other,
                                               "weight": weight}]},
                          "banks"))
        elif shape in ("source", "target"):
            plans.append(("/query", {"kind": shape, "node": node}, "top"))
        elif shape == "topk":
            plans.append(("/topk", {"node": node,
                                    "k": max(1, min(topk_k, num_nodes - 1))},
                          "top"))
        elif shape == "multiseed":
            extra = rng.integers(0, num_nodes,
                                 size=max(0, seeds_per_query - 1))
            seeds = sorted({node, *(int(s) for s in extra)})
            plans.append(("/multiseed", {"seeds": seeds}, "top"))
        else:  # pair
            target = int(rng.integers(0, num_nodes))
            plans.append(("/pair", {"source": node, "target": target},
                          "value"))
    return plans


def run_load(base_url: str, *, requests: int = 64, concurrency: int = 8,
             num_nodes: int | None = None, kind: str = "source",
             topk_k: int = 10, seeds_per_query: int = 3,
             mutate_every: int = 8, zipf_exponent: float = 1.1,
             seed: int = 2022, timeout: float = 30.0,
             tenants: str | None = None) -> dict:
    """Fire a closed-loop burst; returns an outcome summary dict.

    ``num_nodes`` defaults to what ``/healthz`` is willing to admit —
    node 0 only — so pass the real graph size for a spread workload.
    ``tenants`` (e.g. ``"acme:2,beta:1"``) cycles an ``X-Tenant``
    header over the burst and adds a per-tenant latency table to the
    summary.  Every request carries a fresh ``X-Request-Id``; failure
    records echo the id the server responded with, so a failed burst
    can be joined against the server's slow log.
    """
    nodes = zipf_nodes(num_nodes or 1, requests, exponent=zipf_exponent,
                       seed=seed)
    plans = build_requests(kind, nodes, num_nodes or 1, topk_k=topk_k,
                           seeds_per_query=seeds_per_query,
                           mutate_every=mutate_every, seed=seed)
    tenant_cycle = parse_tenants(tenants)
    cursor = {"next": 0}
    lock = threading.Lock()
    outcomes: list[dict] = []

    def client():
        while True:
            with lock:
                position = cursor["next"]
                if position >= requests:
                    return
                cursor["next"] += 1
            path, body, ok_key = plans[position]
            request_id = new_request_id()
            headers = {"X-Request-Id": request_id}
            tenant = None
            if tenant_cycle:
                tenant = tenant_cycle[position % len(tenant_cycle)]
                headers["X-Tenant"] = tenant
            started = time.perf_counter()
            try:
                payload = _post_json(f"{base_url}{path}", body,
                                     timeout=timeout, headers=headers)
                outcome = {"ok": ok_key in payload,
                           "cached": payload.get("cached", False)}
            except urllib.error.HTTPError as error:
                outcome = {"ok": False, "status": error.code,
                           "request_id":
                               error.headers.get("X-Request-Id")
                               or request_id}
            except Exception as error:  # connection refused, timeout, ...
                outcome = {"ok": False, "error": str(error),
                           "request_id": request_id}
            outcome["seconds"] = time.perf_counter() - started
            if tenant is not None:
                outcome["tenant"] = tenant
            with lock:
                outcomes.append(outcome)

    started = time.perf_counter()
    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(max(1, concurrency))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    succeeded = sum(1 for outcome in outcomes if outcome["ok"])
    latencies = sorted(outcome["seconds"] for outcome in outcomes)

    summary = {
        "requests": requests,
        "succeeded": succeeded,
        "failed": requests - succeeded,
        "failures": [o for o in outcomes if not o["ok"]],
        "cached": sum(1 for o in outcomes if o.get("cached")),
        "seconds": elapsed,
        "throughput_qps": requests / elapsed if elapsed else 0.0,
        "latency": {
            "p50_seconds": exact_quantile(latencies, 0.50),
            "p95_seconds": exact_quantile(latencies, 0.95),
            "p99_seconds": exact_quantile(latencies, 0.99),
            "max_seconds": latencies[-1] if latencies else 0.0,
        },
        "latencies_seconds": latencies,
    }
    if tenant_cycle:
        table: dict[str, dict] = {}
        for tenant in sorted(set(tenant_cycle)):
            rows = [o["seconds"] for o in outcomes
                    if o.get("tenant") == tenant]
            table[tenant] = {
                "requests": len(rows),
                "p50_seconds": exact_quantile(rows, 0.50),
                "p99_seconds": exact_quantile(rows, 0.99),
            }
        summary["tenants"] = table
    return summary


def check_metrics(base_url: str,
                  tenants: str | None = None) -> list[str]:
    """Return failure messages (empty = the smoke assertions hold).

    With ``tenants`` (same spec as ``run_load``), additionally asserts
    that every named tenant shows up in the per-tenant counter
    families on the live exposition.
    """
    text = _get(f"{base_url}/metrics")
    failures = []

    def value_of(prefix: str) -> float | None:
        for line in text.splitlines():
            if line.startswith(prefix) and not line.startswith("#"):
                try:
                    return float(line.rsplit(None, 1)[1])
                except ValueError:
                    return None
        return None

    for metric in ("repro_service_batches_total",
                   "repro_service_batch_size_count",
                   "repro_service_latency_seconds_count"):
        value = value_of(metric)
        if not value:
            failures.append(f"{metric} missing or zero (got {value})")
    for metric in ("repro_service_queue_depth",
                   'repro_service_cache{stat="hit_rate"}',
                   'repro_service_latency_seconds_bucket{le="+Inf"}'):
        if value_of(metric) is None:
            failures.append(f"{metric} missing")
    if not value_of('repro_service_stage_seconds_count{stage="fold"}'):
        failures.append("fold stage histogram missing or zero")
    if value_of('repro_service_requests_total{endpoint="source"}') is None:
        failures.append("per-endpoint request counter missing")
    for tenant in sorted(set(parse_tenants(tenants))):
        for family in ("repro_service_tenant_requests_total",
                       "repro_service_tenant_latency_seconds_count"):
            if not value_of(f'{family}{{tenant="{tenant}"}}'):
                failures.append(f"{family} missing or zero for "
                                f"tenant {tenant!r}")
    return failures


def check_live_exposition(base_url: str) -> list[str]:
    """Run the strict format checker against the live ``/metrics``."""
    return check_exposition(_get(f"{base_url}/metrics"))


def shard_fold_report(base_url: str, shards: int) -> tuple[list, list]:
    """Per-shard fold-latency quantiles from the stage histograms.

    Scrapes ``/metrics`` and reads the cumulative buckets of
    ``repro_service_shard_fold_seconds{shard="k"}``; the reported p99
    is the upper bound of the first bucket covering the 0.99 mass —
    the same resolution Prometheus' ``histogram_quantile`` has.
    Returns ``(rows, failures)`` where ``rows`` holds one
    ``{"shard", "count", "p50_seconds", "p99_seconds"}`` dict per shard
    and ``failures`` lists shards whose histogram is missing or empty.
    """
    text = _get(f"{base_url}/metrics")
    buckets: dict[int, list[tuple[float, float]]] = {}
    prefix = "repro_service_shard_fold_seconds_bucket{"
    for line in text.splitlines():
        if not line.startswith(prefix):
            continue
        labels, value = line[len(prefix):].rsplit(None, 1)
        labels = labels.rstrip("}")
        fields = dict(part.split("=", 1) for part in labels.split(","))
        shard = int(fields['shard'].strip('"'))
        le = fields["le"].strip('"')
        bound = float("inf") if le == "+Inf" else float(le)
        buckets.setdefault(shard, []).append((bound, float(value)))

    def quantile(cumulative: list[tuple[float, float]], q: float) -> float:
        total = cumulative[-1][1]
        for bound, count in cumulative:
            if count >= q * total:
                return bound
        return cumulative[-1][0]

    rows, failures = [], []
    for shard in range(shards):
        if shard not in buckets or not buckets[shard][-1][1]:
            failures.append(
                f"shard {shard} fold histogram missing or zero")
            continue
        cumulative = sorted(buckets[shard])
        rows.append({
            "shard": shard,
            "count": int(cumulative[-1][1]),
            "p50_seconds": quantile(cumulative, 0.50),
            "p99_seconds": quantile(cumulative, 0.99),
        })
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (non-zero = smoke
    failure)."""
    parser = argparse.ArgumentParser(
        prog="repro.service.loadgen",
        description="closed-loop load generator / smoke checker")
    parser.add_argument("--url", required=True,
                        help="service base url, e.g. http://127.0.0.1:8471")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--num-nodes", type=int, default=None,
                        help="node-id range for the Zipf stream "
                             "(default: read from /healthz)")
    parser.add_argument("--kind", choices=KINDS, default="source",
                        help="request scenario (default: source; "
                             "'mixed' round-robins all kinds)")
    parser.add_argument("--topk-k", type=int, default=10,
                        help="ranking depth for --kind topk/mixed")
    parser.add_argument("--seeds-per-query", type=int, default=3,
                        help="seed-set size for --kind multiseed/mixed")
    parser.add_argument("--mutate-every", type=int, default=8,
                        help="for --kind churn: one /mutate per this "
                             "many requests")
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--tenants", default=None, metavar="SPEC",
                        help="weighted tenant mix, e.g. 'acme:2,beta:1' "
                             "— cycles an X-Tenant header over the "
                             "burst and reports per-tenant p50/p99")
    parser.add_argument("--check-metrics", action="store_true",
                        help="also assert /metrics is populated (and "
                             "carries every --tenants label)")
    parser.add_argument("--check-exposition", action="store_true",
                        help="strictly validate the live /metrics "
                             "document format (HELP/TYPE coverage, "
                             "label syntax, cumulative buckets)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="service shard count: report per-shard "
                             "p99 fold latency from the shard stage "
                             "histograms and fail if any of the N "
                             "shards folded nothing")
    parser.add_argument("--latency-out", default=None, metavar="PATH",
                        help="write the full summary (including every "
                             "per-request latency) as JSON to this file")
    args = parser.parse_args(argv)

    num_nodes = args.num_nodes
    if num_nodes is None:
        health = json.loads(_get(f"{args.url}/healthz"))
        num_nodes = int(health.get("num_nodes", 1))
    summary = run_load(args.url, requests=args.requests,
                       concurrency=args.concurrency, num_nodes=num_nodes,
                       kind=args.kind, topk_k=args.topk_k,
                       seeds_per_query=args.seeds_per_query,
                       mutate_every=args.mutate_every,
                       zipf_exponent=args.zipf, seed=args.seed,
                       tenants=args.tenants)
    if args.latency_out:
        with open(args.latency_out, "w", encoding="utf-8") as sink:
            json.dump(summary, sink, indent=2, sort_keys=True)
            sink.write("\n")
    # the raw latency list is file-only; stdout stays a short summary
    printed = {key: value for key, value in summary.items()
               if key != "latencies_seconds"}
    print(json.dumps(printed, indent=2))
    code = 0
    if summary["failed"]:
        print(f"FAIL: {summary['failed']} request(s) failed",
              file=sys.stderr)
        code = 1
    if args.check_metrics:
        failures = check_metrics(args.url, tenants=args.tenants)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        code = code or (1 if failures else 0)
    if args.check_exposition:
        failures = check_live_exposition(args.url)
        for failure in failures:
            print(f"FAIL: exposition: {failure}", file=sys.stderr)
        code = code or (1 if failures else 0)
    if args.shards > 1:
        rows, failures = shard_fold_report(args.url, args.shards)
        for row in rows:
            print(f"shard {row['shard']}: {row['count']} folds, "
                  f"fold p50 <= {row['p50_seconds']:g}s, "
                  f"p99 <= {row['p99_seconds']:g}s")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        code = code or (1 if failures else 0)
    if code == 0:
        print("load burst ok")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
