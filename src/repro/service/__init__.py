r"""Long-lived PPR query service (serving layer).

Everything one-shot in the library — CLI queries, the batch solvers —
rebuilds graphs and forest banks per invocation.  The paper's §5.3
index idea (forests are query-independent) is exactly what makes a
*resident* process the right architecture for heavy query traffic,
and this package is that process, dependency-free (stdlib + NumPy):

- :class:`~repro.service.index_manager.IndexManager` — forest-bank
  lifecycle: build/warm, per-(graph, α) keying, background refresh
  with atomic swap, memory accounting;
- :class:`~repro.service.scheduler.MicroBatchScheduler` — bounded
  admission queue, compatibility-grouped micro-batches with
  deadline-based flush and backpressure;
- :class:`~repro.service.cache.ResultCache` — ε-aware LRU (a tight
  answer serves any looser query) with hit/miss/eviction counters;
- :class:`~repro.service.metrics.ServiceMetrics` — work counters,
  latency quantile rings (end-to-end and per-batch fold), batch-size
  histogram, Prometheus text;
- :class:`~repro.service.executor.ProcessExecutor` — forked worker
  pool folding batches against shared-memory banks (zero-copy tasks,
  crash respawn, byte-identical answers to the in-process path);
- :class:`~repro.service.service.PPRService` — the embeddable facade
  composing the four;
- :mod:`repro.service.http` — the ``/query`` ``/topk``
  ``/multiseed`` ``/pair`` ``/healthz`` ``/metrics`` HTTP front end
  behind ``repro serve``;
- :mod:`repro.service.loadgen` — closed-loop load generator / CI
  smoke checker.

See docs/SERVING.md for architecture and tuning guidance.
"""

from repro.service.cache import ResultCache, cache_key
from repro.service.config import ServiceConfig
from repro.service.executor import ExecutorError, ProcessExecutor
from repro.service.index_manager import IndexManager, SharedIndexView
from repro.service.metrics import (
    BatchSizeHistogram,
    LatencyRing,
    ServiceMetrics,
)
from repro.service.scheduler import (
    MicroBatchScheduler,
    QueryRequest,
    SchedulerFull,
)
from repro.service.service import PPRService

__all__ = [
    "BatchSizeHistogram",
    "ExecutorError",
    "IndexManager",
    "LatencyRing",
    "MicroBatchScheduler",
    "PPRService",
    "ProcessExecutor",
    "QueryRequest",
    "ResultCache",
    "SchedulerFull",
    "ServiceConfig",
    "ServiceMetrics",
    "SharedIndexView",
    "cache_key",
]
