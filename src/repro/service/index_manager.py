r"""Index lifecycle for the serving layer.

The paper's §5.3 structural fact — forests are query-independent — is
what makes a *long-lived* service the right shape: one
:class:`~repro.montecarlo.forest_index.ForestIndex` bank per
``(graph, α)`` pair serves every request, with only the cheap push
stage per query.  :class:`IndexManager` owns those banks:

- **build / warm** — banks are built on first use (or eagerly via
  :meth:`warm`), fanned out over the parallel engine when
  ``workers > 1``;
- **keying** — one bank per ``(graph, α)``; solvers are keyed
  ``(graph, α, ε, kind)`` and *borrow* the shared bank through the
  batch solvers' ``index=`` injection, so an ε change never resamples
  forests;
- **background refresh with atomic swap** — :meth:`refresh` rebuilds a
  bank off-thread under a fresh deterministic seed and swaps it (and
  drops the solvers borrowing the old one) under the manager lock;
  in-flight queries keep the bank they already hold, new queries see
  the new generation;
- **memory accounting** — :meth:`memory_bytes` / :meth:`stats` report
  per-bank and total footprint via the index-size machinery the Fig-6
  experiment already uses;
- **shared-memory views** — :meth:`shared_view` publishes the graph's
  CSR arrays and the bank's fold operators as named shared-memory
  segments for the multiprocess executor; a refresh *retires* the old
  generation's segments, which are unlinked only once the last
  borrower releases them (in-flight worker batches finish on the old
  bank, new batches attach the new one).
"""

from __future__ import annotations

import threading
import time
import zlib

import numpy as np

from repro.core.batch import (
    BatchMultiSeedSolver,
    BatchPairSolver,
    BatchSourceSolver,
    BatchTargetSolver,
)
from repro.core.config import PPRConfig
from repro.core.topk import BatchTopKSolver
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.graph.delta import GraphDelta
from repro.montecarlo.dynamic_index import DynamicForestIndex
from repro.montecarlo.forest_index import ForestIndex
from repro.obs.tracing import NULL_TRACER
from repro.parallel.shared_bank import BankHandle, SharedArrayBank
from repro.parallel.shared_graph import graph_bank_arrays
from repro.shard.partition import STRATEGIES, ShardMap

__all__ = ["IndexManager", "SharedIndexView", "SOLVER_CLASSES"]

#: Query kind → batch solver class; the one dispatch table shared by
#: the in-process scheduler path and the executor workers.
SOLVER_CLASSES = {
    "source": BatchSourceSolver,
    "target": BatchTargetSolver,
    "multiseed": BatchMultiSeedSolver,
    "topk": BatchTopKSolver,
    "pair": BatchPairSolver,
}


class _ManagedIndex:
    """One (graph, α) bank plus its provenance."""

    def __init__(self, index: ForestIndex, generation: int, seed: int):
        self.index = index
        self.generation = generation
        self.seed = seed
        self.built_at = time.time()


class SharedIndexView:
    """A borrowed reference to one generation's shared segments.

    Couples the graph CSR bank with the index operator bank under one
    acquire/release pair so a dispatched batch pins *both* for its
    lifetime.  Views are handed out already acquired (under the
    manager lock, so a concurrent retirement can never unlink between
    construction and acquisition); callers must :meth:`release`
    exactly once.
    """

    def __init__(self, graph_bank: SharedArrayBank,
                 index_bank: SharedArrayBank, generation: int):
        self._graph_bank = graph_bank
        self._index_bank = index_bank
        self.generation = generation

    @property
    def graph_handle(self) -> BankHandle:
        return self._graph_bank.handle

    @property
    def index_handle(self) -> BankHandle:
        return self._index_bank.handle

    def _acquire(self) -> "SharedIndexView":
        self._graph_bank.acquire()
        try:
            self._index_bank.acquire()
        except BaseException:
            self._graph_bank.release()
            raise
        return self

    def release(self) -> None:
        """Drop the borrow; retired segments unlink on the last drop."""
        self._index_bank.release()
        self._graph_bank.release()


class IndexManager:
    """Owns graph registrations, forest banks, and borrowed solvers.

    Parameters
    ----------
    config:
        Baseline :class:`~repro.core.config.PPRConfig`; per-request ε
        overrides it at solver-build time, everything else (seed,
        budget scale, push backend, build workers) comes from here.
    num_forests:
        Bank size; defaults to
        :meth:`ForestIndex.recommended_size` for the baseline ε.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  Index lifecycle
        events (refresh, drop, mutate) record *forced* traces — they
        are rare and expensive, so they are always worth a span tree.
    dynamic:
        Build repairable
        :class:`~repro.montecarlo.dynamic_index.DynamicForestIndex`
        banks (arrow records kept), so :meth:`mutate` repairs
        incrementally instead of rebuilding.  Costs record memory and
        a serial build; off by default.
    shards / shard_strategy:
        Node-space partitioning for the scatter-gather router.  The
        whole-space bank is still built once per ``(graph, α)`` —
        forests are sampled globally so sharded answers stay
        bit-identical — and :meth:`shared_view` publishes per-shard
        *restrictions* of it (``shard=k``) for each shard's worker
        group.  ``shards=1`` (default) disables all of this.
    """

    def __init__(self, config: PPRConfig | None = None, *,
                 num_forests: int | None = None, tracer=None,
                 dynamic: bool = False, shards: int = 1,
                 shard_strategy: str = "hash",
                 bank_dir: str | None = None):
        self.config = config or PPRConfig()
        self.num_forests = num_forests
        self.dynamic = bool(dynamic)
        if bank_dir is not None and self.dynamic:
            raise ConfigError(
                "bank_dir does not combine with dynamic banks")
        self.bank_dir = bank_dir
        self.tracer = tracer if tracer is not None else NULL_TRACER
        shards = int(shards)
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shard_strategy not in STRATEGIES:
            raise ConfigError(
                f"shard_strategy must be one of {STRATEGIES}, "
                f"got {shard_strategy!r}")
        self.shards = shards
        self.shard_strategy = str(shard_strategy)
        self._graphs: dict[str, Graph] = {}
        self._indexes: dict[tuple[str, float], _ManagedIndex] = {}
        self._solvers: dict[tuple, BatchSourceSolver | BatchTargetSolver] = {}
        self._shared_graphs: dict[str, SharedArrayBank] = {}
        # keyed (name, alpha, shard); shard None is the whole-space bank
        self._shared_indexes: dict[tuple[str, float, int | None],
                                   tuple[SharedArrayBank, int]] = {}
        self._shard_maps: dict[str, ShardMap] = {}
        # per-generation shard restrictions, keyed (name, alpha, shard)
        self._restricted: dict[tuple[str, float, int],
                               tuple[ForestIndex, int]] = {}
        self._lock = threading.RLock()
        self._builds = 0

    # -- graph registry ------------------------------------------------
    def register_graph(self, name: str, graph: Graph) -> None:
        """Register ``graph`` under ``name`` for later index builds."""
        with self._lock:
            self._graphs[name] = graph
            stale = self._shared_graphs.pop(name, None)
            self._shard_maps.pop(name, None)
            for key in [k for k in self._restricted if k[0] == name]:
                del self._restricted[key]
        if stale is not None:
            stale.retire()

    def shard_map(self, name: str) -> ShardMap:
        """The node ↔ shard mapping for ``name`` under this manager's
        shard count and strategy (cached; deterministic)."""
        graph = self.graph(name)
        with self._lock:
            cached = self._shard_maps.get(name)
            if (cached is not None
                    and cached.num_nodes == graph.num_nodes):
                return cached
            shard_map = ShardMap(graph.num_nodes, self.shards,
                                 self.shard_strategy)
            self._shard_maps[name] = shard_map
            return shard_map

    def graph(self, name: str) -> Graph:
        """The registered graph, or :class:`ConfigError` if unknown."""
        with self._lock:
            if name not in self._graphs:
                raise ConfigError(
                    f"unknown graph {name!r}; registered: "
                    f"{sorted(self._graphs)}")
            return self._graphs[name]

    # -- bank lifecycle ------------------------------------------------
    def _build_seed(self, name: str, alpha: float, generation: int) -> int:
        """Deterministic per-(graph, α, generation) build seed."""
        base = self.config.seed or 0
        salt = zlib.crc32(f"{name}:{alpha!r}".encode())
        return (base + salt + generation) % (2**31)

    def _build(self, name: str, alpha: float,
               generation: int) -> _ManagedIndex:
        graph = self.graph(name)
        size = self.num_forests or ForestIndex.recommended_size(
            graph, self.config.epsilon,
            variance_mode=self.config.variance_mode)
        seed = self._build_seed(name, alpha, generation)
        if self.bank_dir is not None and generation == 0:
            # preload the saved bank instead of sampling; the graph
            # fingerprint check lives in load_bank, the α check here.
            # Generations > 0 (mutations) resample as usual.
            index = ForestIndex.load_bank(self.bank_dir, graph)
            if abs(index.alpha - alpha) > 1e-12:
                raise ConfigError(
                    f"bank at {self.bank_dir!r} was built for "
                    f"alpha={index.alpha}, service wants alpha={alpha}")
            with self._lock:
                self._builds += 1
            return _ManagedIndex(index, generation, seed)
        if self.dynamic:
            # recorded sampling: repairable banks, cycle popping only
            index = DynamicForestIndex.build(graph, alpha, size, rng=seed,
                                             method="cycle_popping")
        else:
            index = ForestIndex.build(graph, alpha, size, rng=seed,
                                      method=self.config.sampler,
                                      workers=self.config.workers,
                                      variance_mode=self.config.variance_mode)
        with self._lock:
            self._builds += 1
        return _ManagedIndex(index, generation, seed)

    def get_index(self, name: str, alpha: float | None = None) -> ForestIndex:
        """The bank for ``(name, α)``, building it on first use."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        key = (name, alpha)
        with self._lock:
            managed = self._indexes.get(key)
            if managed is not None:
                return managed.index
        # build outside the lock (it can take seconds); last writer
        # wins, which is fine because both builds are deterministic
        # from the same generation-0 seed
        managed = self._build(name, alpha, generation=0)
        with self._lock:
            existing = self._indexes.get(key)
            if existing is not None:
                return existing.index
            self._indexes[key] = managed
            return managed.index

    def warm(self, name: str, alpha: float | None = None) -> ForestIndex:
        """Eagerly build the bank (alias of :meth:`get_index`)."""
        return self.get_index(name, alpha)

    def refresh(self, name: str, alpha: float | None = None, *,
                block: bool = True) -> threading.Thread:
        """Rebuild the ``(name, α)`` bank and atomically swap it in.

        The replacement is sampled under the next generation's seed, so
        refreshing genuinely redraws the forests (deterministically —
        generation ``g`` always yields the same bank).  With
        ``block=False`` the rebuild runs on a daemon thread and the
        swap happens whenever it finishes; either way solvers borrowing
        the old bank are dropped at swap time so the next request binds
        the new generation, while queries already executing keep their
        reference (the old bank stays alive until they return).
        """
        alpha = self.config.alpha if alpha is None else float(alpha)
        key = (name, alpha)
        with self._lock:
            current = self._indexes.get(key)
            generation = current.generation + 1 if current else 0

        def rebuild():
            span = self.tracer.trace("index_refresh", force=True)
            span.annotate(graph=name, alpha=alpha, generation=generation)
            with span.child("build"):
                managed = self._build(name, alpha, generation)
            with span.child("swap"):
                with self._lock:
                    self._indexes[key] = managed
                    for solver_key in [k for k in self._solvers
                                       if k[0] == name and k[1] == alpha]:
                        del self._solvers[solver_key]
                    stale = [self._shared_indexes.pop(k)
                             for k in list(self._shared_indexes)
                             if k[0] == name and k[1] == alpha]
                    for cache_key in [k for k in self._restricted
                                      if k[0] == name and k[1] == alpha]:
                        del self._restricted[cache_key]
            if stale:
                # unlink happens once the last in-flight borrower drops
                with span.child("retire"):
                    for bank, _generation in stale:
                        bank.retire()
            self.tracer.finish(span)

        thread = threading.Thread(target=rebuild, name=f"refresh-{name}",
                                  daemon=True)
        thread.start()
        if block:
            thread.join()
        return thread

    def mutate(self, name: str, delta: GraphDelta) -> dict:
        """Apply a :class:`GraphDelta` to ``name`` — the third lifecycle
        verb beside refresh/drop.

        The registered graph is replaced by ``delta.apply(graph)`` and
        every resident ``(name, α)`` bank is brought onto the new
        graph: :class:`DynamicForestIndex` banks are *repaired*
        incrementally (replaying their arrow records, fresh draws only
        where the mutation invalidated them), any other bank is fully
        rebuilt.  Replacements are computed off-lock, then swapped in
        atomically exactly like :meth:`refresh` — generations bump,
        solvers borrowing old banks drop, shared-memory segments for
        the graph and old banks retire once their last borrower
        releases.  In-flight queries keep whatever they already hold.

        Returns a summary: per-bank generations and ``repaired`` flags,
        the dirty-node list, and the merged work counters (all
        ``repair_*`` for repaired banks; ``walk_steps`` only when a
        non-dynamic bank forced a rebuild).  Deterministic for a given
        delta and generation history.
        """
        span = self.tracer.trace("index_mutate", force=True)
        old_graph = self.graph(name)
        span.annotate(graph=name, ops=len(delta))
        with span.child("apply_delta"):
            new_graph = delta.apply(old_graph)
        dirty = delta.touched_nodes()
        with self._lock:
            resident = {key: entry for key, entry in self._indexes.items()
                        if key[0] == name}
        counters = WorkCounters()
        replacements: dict[tuple[str, float], _ManagedIndex] = {}
        repaired_flags: dict[tuple[str, float], bool] = {}
        for (key, entry) in sorted(resident.items()):
            alpha = key[1]
            generation = entry.generation + 1
            seed = self._build_seed(name, alpha, generation)
            if isinstance(entry.index, DynamicForestIndex):
                with span.child("repair"):
                    index, repair_work = entry.index.mutated(delta, rng=seed)
                counters.merge(repair_work)
                repaired_flags[key] = True
            else:
                # no records to replay: the bank must be resampled
                # against the new graph (correct, just not incremental)
                with span.child("rebuild"):
                    size = entry.index.num_forests
                    index = ForestIndex.build(new_graph, alpha, size,
                                              rng=seed,
                                              method=self.config.sampler,
                                              workers=self.config.workers)
                counters.merge(index.build_counters)
                repaired_flags[key] = False
            replacements[key] = _ManagedIndex(index, generation, seed)
        with span.child("swap"):
            with self._lock:
                self._graphs[name] = new_graph
                self._indexes.update(replacements)
                for solver_key in [k for k in self._solvers
                                   if k[0] == name]:
                    del self._solvers[solver_key]
                stale_graph = self._shared_graphs.pop(name, None)
                stale_banks = [self._shared_indexes.pop(key)
                               for key in list(self._shared_indexes)
                               if key[0] == name]
                for cache_key in [k for k in self._restricted
                                  if k[0] == name]:
                    del self._restricted[cache_key]
        with span.child("retire"):
            if stale_graph is not None:
                stale_graph.retire()
            for bank, _generation in stale_banks:
                bank.retire()
        self.tracer.finish(span)
        summary = {
            "graph": name,
            "ops": len(delta),
            "num_nodes": new_graph.num_nodes,
            "num_edges": new_graph.num_edges,
            "dirty_nodes": [int(node) for node in dirty],
            "banks": {
                f"{key[0]}@{key[1]}": {
                    "generation": managed.generation,
                    "repaired": repaired_flags[key],
                }
                for key, managed in sorted(replacements.items())},
            "work": counters.as_dict(),
        }
        if self.shards > 1:
            # attribute the repair to owning shards: the global counter
            # is (forests repaired) x |dirty|, so splitting by each
            # shard's dirty-node count decomposes it exactly — and
            # proves untouched shards did zero repair work
            shard_map = self.shard_map(name)
            dirty_arr = np.asarray(dirty, dtype=np.int64)
            per_shard_dirty = np.bincount(
                shard_map.shard_of[dirty_arr] if dirty_arr.size
                else np.empty(0, dtype=np.int64),
                minlength=self.shards)
            unit = (counters.repair_dirty_nodes // dirty_arr.size
                    if dirty_arr.size else 0)
            summary["shards"] = [
                {"shard": shard,
                 "dirty_nodes": int(per_shard_dirty[shard]),
                 "repair_dirty_nodes": int(unit * per_shard_dirty[shard])}
                for shard in range(self.shards)]
        return summary

    def drop(self, name: str, alpha: float | None = None) -> None:
        """Forget the bank and solvers for ``(name, α)`` (if any)."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        span = self.tracer.trace("index_drop", force=True)
        span.annotate(graph=name, alpha=alpha)
        with self._lock:
            self._indexes.pop((name, alpha), None)
            for solver_key in [k for k in self._solvers
                               if k[0] == name and k[1] == alpha]:
                del self._solvers[solver_key]
            stale = [self._shared_indexes.pop(k)
                     for k in list(self._shared_indexes)
                     if k[0] == name and k[1] == alpha]
            for cache_key in [k for k in self._restricted
                              if k[0] == name and k[1] == alpha]:
                del self._restricted[cache_key]
        if stale:
            with span.child("retire"):
                for bank, _generation in stale:
                    bank.retire()
        self.tracer.finish(span)

    # -- shared-memory views (multiprocess executor) -------------------
    def shared_view(self, name: str, alpha: float | None = None, *,
                    shard: int | None = None) -> SharedIndexView:
        """An *acquired* shared-memory view of ``(name, α[, shard])``.

        Publishes the graph CSR arrays and the bank's fold operators
        as named shared-memory segments (built lazily, reused across
        calls for the same generation) and returns a view pinning
        both.  With ``shard=k`` the index bank carries the shard-``k``
        restriction of the whole-space bank (same forests, same
        generation — just this shard's output rows), while the graph
        bank stays the full CSR: every shard runs the full push.  The
        caller — one executor batch — must
        :meth:`SharedIndexView.release` when done; a refresh that
        lands mid-batch retires the old segments, and the unlink is
        deferred until that release.
        """
        alpha = self.config.alpha if alpha is None else float(alpha)
        if shard is not None:
            shard = int(shard)
            if not 0 <= shard < self.shards:
                raise ConfigError(
                    f"shard {shard} out of range [0, {self.shards})")
        index = self.get_index(name, alpha)
        # materialise the fold operators outside the lock (first call
        # builds them; they are cached on the index afterwards)
        index._operators  # noqa: B018 - intentional cache warm
        with self._lock:
            managed = self._indexes[(name, alpha)]
            # re-read under the lock: a refresh may have swapped the
            # bank between get_index and here
            index, generation = managed.index, managed.generation
            if shard is not None:
                cached = self._restricted.get((name, alpha, shard))
                if cached is not None and cached[1] == generation:
                    publish = cached[0]
                else:
                    # pure row slicing of the warmed operators — cheap
                    # enough to run under the lock, and doing so pins
                    # the restriction to this exact generation
                    shard_map = self.shard_map(name)
                    publish = index.restrict(
                        shard_map.local_nodes(shard), shard_index=shard,
                        shard_count=self.shards,
                        strategy=self.shard_strategy)
                    self._restricted[(name, alpha, shard)] = (publish,
                                                              generation)
            else:
                publish = index
            graph_bank = self._shared_graphs.get(name)
            if graph_bank is None or graph_bank.retired:
                arrays, meta = graph_bank_arrays(self._graphs[name])
                graph_bank = SharedArrayBank(arrays, meta)
                self._shared_graphs[name] = graph_bank
            key = (name, alpha, shard)
            entry = self._shared_indexes.get(key)
            if entry is None or entry[1] != generation or entry[0].retired:
                if entry is not None:
                    entry[0].retire()
                index_bank = SharedArrayBank(*publish.bank_arrays())
                self._shared_indexes[key] = (index_bank, generation)
            else:
                index_bank = entry[0]
            return SharedIndexView(graph_bank, index_bank,
                                   generation)._acquire()

    def close_shared(self) -> None:
        """Force-unlink every shared segment (shutdown path)."""
        with self._lock:
            graph_banks = list(self._shared_graphs.values())
            index_banks = [entry[0]
                          for entry in self._shared_indexes.values()]
            self._shared_graphs.clear()
            self._shared_indexes.clear()
        for bank in index_banks + graph_banks:
            bank.close()

    # -- solvers -------------------------------------------------------
    def get_solver(self, name: str, kind: str, alpha: float | None = None,
                   epsilon: float | None = None):
        """A batch solver for ``(name, α, ε, kind)`` borrowing the bank.

        ``kind`` is one of ``"source"``, ``"target"``, ``"multiseed"``,
        ``"topk"`` or ``"pair"``.  Solvers are cached; every
        bank-backed kind and ε value for one ``(graph, α)`` shares one
        forest bank (the top-k solver samples its own deterministic
        forest stream per call and borrows no bank).
        """
        alpha = self.config.alpha if alpha is None else float(alpha)
        epsilon = self.config.epsilon if epsilon is None else float(epsilon)
        if kind not in SOLVER_CLASSES:
            raise ConfigError(
                f"kind must be one of {sorted(SOLVER_CLASSES)}, "
                f"got {kind!r}")
        key = (name, alpha, epsilon, kind)
        with self._lock:
            solver = self._solvers.get(key)
            if solver is not None:
                return solver
        cls = SOLVER_CLASSES[kind]
        config = self.config.with_overrides(alpha=alpha, epsilon=epsilon)
        if kind == "topk":
            solver = cls(self.graph(name), config=config)
        else:
            index = self.get_index(name, alpha)
            solver = cls(self.graph(name), config=config, index=index)
        with self._lock:
            return self._solvers.setdefault(key, solver)

    # -- accounting ----------------------------------------------------
    def generation(self, name: str, alpha: float | None = None) -> int:
        """Refresh generation of the bank (-1 if not built yet)."""
        alpha = self.config.alpha if alpha is None else float(alpha)
        with self._lock:
            managed = self._indexes.get((name, alpha))
            return managed.generation if managed else -1

    def memory_bytes(self) -> int:
        """Total footprint of every resident bank."""
        with self._lock:
            managed = list(self._indexes.values())
        return sum(entry.index.size_bytes for entry in managed)

    def stats(self) -> dict:
        """Snapshot: builds, per-bank size/generation, total bytes."""
        with self._lock:
            managed = dict(self._indexes)
            builds = self._builds
            solvers = len(self._solvers)
        banks = {
            f"{name}@{alpha}": {
                "num_forests": entry.index.num_forests,
                "size_bytes": entry.index.size_bytes,
                "generation": entry.generation,
                "build_seconds": entry.index.build_seconds,
            }
            for (name, alpha), entry in sorted(managed.items())}
        return {"builds": builds, "solvers": solvers, "banks": banks,
                "memory_bytes": sum(b["size_bytes"] for b in banks.values()),
                "shards": self.shards,
                "shard_strategy": self.shard_strategy}
