"""Local push algorithms: the deterministic halves of every two-stage
PPR method in the paper.

- :func:`forward_push` — Algorithm 2 (threshold ``d_u · r_max``);
- :func:`balanced_forward_push` — §5.2's variant with the uniform
  threshold ``r_max``, required by the forest samplers' fixed sample
  count;
- :func:`power_push` — SPEEDPPR-style whole-vector push (power
  iteration on the residual) used by the SPEED* family;
- :func:`backward_push` — Algorithm 4 (single target);
- :func:`randomized_backward_push` — the RBACK baseline [43].

All deterministic pushes run as synchronous frontier sweeps over a
:mod:`repro.push.kernels` scatter kernel; ``backend="vectorized"``
(default) batches the whole frontier into segment ops, while
``backend="scalar"`` keeps the node-at-a-time reference loop.  The two
backends agree on every output (tested to ≤1e-12) and on all work
counters.
"""

from repro.push.forward import (
    PushResult,
    forward_push,
    balanced_forward_push,
)
from repro.push.kernels import DEFAULT_PUSH_BACKEND, PUSH_BACKENDS
from repro.push.power_push import power_push
from repro.push.backward import backward_push, randomized_backward_push

__all__ = [
    "PushResult",
    "forward_push",
    "balanced_forward_push",
    "power_push",
    "backward_push",
    "randomized_backward_push",
    "PUSH_BACKENDS",
    "DEFAULT_PUSH_BACKEND",
]
