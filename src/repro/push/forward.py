r"""Forward push (Algorithm 2) and the balanced variant of §5.2.

Forward push maintains a reserve ``q`` and residual ``r`` with the
invariant (Eq. 6)

.. math:: \pi(s, v) = q(v) + \sum_u r(u)\,\pi(u, v) \quad \forall v,

starting from ``r = e_s``.  Pushing a node ``u`` converts the α-share
of its residual into reserve and forwards the rest to its neighbours
proportionally to edge weight.  The classic algorithm pushes while
``r(u) ≥ d_u · r_max``; the *balanced* variant (§5.2) pushes while
``r(u) ≥ r_max``, equalising the per-node residual ceiling so that a
fixed number ``⌈r_max · W⌉`` of forest samples suffices for the
Chernoff argument of Theorem 5.3 (high-degree nodes may no longer hide
large residuals behind a degree-scaled threshold).

Dangling nodes absorb their entire residual into reserve, matching the
library-wide absorbing-walk convention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["PushResult", "forward_push", "balanced_forward_push"]


@dataclass
class PushResult:
    """Outcome of a (forward or backward) push run.

    Attributes
    ----------
    reserve:
        ``q`` — the settled estimate per node.
    residual:
        ``r`` — the unsettled mass per node (non-negative).
    num_pushes:
        Number of push operations executed.
    work:
        Total edge traversals, the machine-independent cost measure
        used by the benchmark harness.
    """

    reserve: np.ndarray
    residual: np.ndarray
    num_pushes: int = 0
    work: int = 0

    @property
    def residual_mass(self) -> float:
        """Total unsettled mass ``Σ_u r(u)``."""
        return float(self.residual.sum())


def _check_common(graph: Graph, node: int, alpha: float, r_max: float) -> None:
    if not 0 <= node < graph.num_nodes:
        raise ConfigError(f"node {node} out of range [0, {graph.num_nodes})")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if r_max <= 0.0:
        raise ConfigError(f"r_max must be positive, got {r_max}")


def _forward_push_impl(graph: Graph, source: int, alpha: float,
                       r_max: float, *, balanced: bool,
                       max_pushes: int) -> PushResult:
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    weights = graph.weights
    degrees = graph.degrees
    reserve = np.zeros(n)
    residual = np.zeros(n)
    residual[source] = 1.0

    # threshold per node: r_max (balanced) or d_u * r_max (classic)
    thresholds = np.full(n, r_max) if balanced else degrees * r_max
    # classic push on a zero-degree node would have threshold 0 and
    # spin forever; both variants absorb dangling residual outright
    queue: deque[int] = deque()
    in_queue = np.zeros(n, dtype=bool)
    if residual[source] >= thresholds[source] or degrees[source] == 0:
        queue.append(source)
        in_queue[source] = True

    pushes = 0
    work = 0
    while queue:
        if pushes >= max_pushes:
            raise ConfigError(
                f"forward push exceeded max_pushes={max_pushes}; "
                f"raise the limit or increase r_max")
        u = queue.popleft()
        in_queue[u] = False
        mass = residual[u]
        if degrees[u] == 0:
            reserve[u] += mass  # absorbing node: the walk ends here
            residual[u] = 0.0
            pushes += 1
            continue
        if mass < thresholds[u]:
            continue  # stale queue entry
        pushes += 1
        reserve[u] += alpha * mass
        residual[u] = 0.0
        lo, hi = indptr[u], indptr[u + 1]
        neighbors = indices[lo:hi]
        if weights is None:
            share = (1.0 - alpha) * mass / degrees[u]
            np.add.at(residual, neighbors, share)
        else:
            np.add.at(residual, neighbors,
                      (1.0 - alpha) * mass * weights[lo:hi] / degrees[u])
        work += hi - lo
        hot = neighbors[(residual[neighbors] >= thresholds[neighbors])
                        & ~in_queue[neighbors]]
        for z in hot:
            queue.append(int(z))
            in_queue[z] = True
    return PushResult(reserve=reserve, residual=residual,
                      num_pushes=pushes, work=work)


def forward_push(graph: Graph, source: int, alpha: float, r_max: float,
                 max_pushes: int = 50_000_000) -> PushResult:
    """Algorithm 2: classic forward push, threshold ``d_u · r_max``.

    Runs in ``O(1 / (α · r_max))`` pushes; the reserve under-estimates
    ``π(source, ·)`` and the invariant Eq. 6 holds exactly (tested).
    """
    _check_common(graph, source, alpha, r_max)
    return _forward_push_impl(graph, source, alpha, r_max, balanced=False,
                              max_pushes=max_pushes)


def balanced_forward_push(graph: Graph, source: int, alpha: float,
                          r_max: float,
                          max_pushes: int = 50_000_000) -> PushResult:
    """§5.2's balanced forward push: uniform threshold ``r_max``.

    Guarantees ``r(u) < r_max`` for every node on exit — the property
    FORAL/FORALV's sample-size bound needs.  Costs
    ``O(d̄ / (α · r_max))`` (Lemma 5.4).
    """
    _check_common(graph, source, alpha, r_max)
    return _forward_push_impl(graph, source, alpha, r_max, balanced=True,
                              max_pushes=max_pushes)
