r"""Forward push (Algorithm 2) and the balanced variant of §5.2.

Forward push maintains a reserve ``q`` and residual ``r`` with the
invariant (Eq. 6)

.. math:: \pi(s, v) = q(v) + \sum_u r(u)\,\pi(u, v) \quad \forall v,

starting from ``r = e_s``.  Pushing a node ``u`` converts the α-share
of its residual into reserve and forwards the rest to its neighbours
proportionally to edge weight.  The classic algorithm pushes while
``r(u) ≥ d_u · r_max``; the *balanced* variant (§5.2) pushes while
``r(u) ≥ r_max``, equalising the per-node residual ceiling so that a
fixed number ``⌈r_max · W⌉`` of forest samples suffices for the
Chernoff argument of Theorem 5.3 (high-degree nodes may no longer hide
large residuals behind a degree-scaled threshold).

Both variants run as synchronous *frontier sweeps*: every iteration
pushes the entire above-threshold frontier at once through a
:mod:`repro.push.kernels` scatter kernel (``backend="vectorized"``
batches all frontier rows into one segment-scatter;
``backend="scalar"`` is the node-at-a-time reference loop).  The
sweep schedule — and hence ``num_pushes`` and the exit state — is
identical for both backends; only the per-sweep execution differs.

Dangling nodes absorb their entire residual into reserve, matching the
library-wide absorbing-walk convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.push.kernels import (
    DEFAULT_PUSH_BACKEND,
    forward_scatter,
    validate_push_backend,
)

__all__ = ["PushResult", "forward_push", "balanced_forward_push"]


@dataclass
class PushResult:
    """Outcome of a (forward or backward) push run.

    Attributes
    ----------
    reserve:
        ``q`` — the settled estimate per node.
    residual:
        ``r`` — the unsettled mass per node (non-negative).
    num_pushes:
        Number of push operations executed (total frontier memberships
        across all sweeps; equal for every backend).
    work:
        Total edge traversals, the machine-independent cost measure
        used by the benchmark harness.
    num_sweeps:
        Synchronous frontier sweeps executed.
    frontier_sizes:
        Frontier size per sweep; sums to ``num_pushes``.
    """

    reserve: np.ndarray
    residual: np.ndarray
    num_pushes: int = 0
    work: int = 0
    num_sweeps: int = 0
    frontier_sizes: tuple[int, ...] = field(default_factory=tuple)

    @property
    def residual_mass(self) -> float:
        """Total unsettled mass ``Σ_u r(u)``."""
        return float(self.residual.sum())

    @property
    def peak_frontier(self) -> int:
        """Largest frontier pushed in one sweep (0 if nothing pushed)."""
        return max(self.frontier_sizes, default=0)


def _check_common(graph: Graph, node: int, alpha: float, r_max: float) -> None:
    if not 0 <= node < graph.num_nodes:
        raise ConfigError(f"node {node} out of range [0, {graph.num_nodes})")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if r_max <= 0.0:
        raise ConfigError(f"r_max must be positive, got {r_max}")


def _forward_push_impl(graph: Graph, source: int, alpha: float,
                       r_max: float, *, balanced: bool,
                       max_pushes: int, backend: str) -> PushResult:
    validate_push_backend(backend)
    n = graph.num_nodes
    degrees = graph.degrees
    reserve = np.zeros(n)
    residual = np.zeros(n)
    residual[source] = 1.0

    # threshold per node: r_max (balanced) or d_u * r_max (classic);
    # a dangling node's classic threshold is 0, so the `residual > 0`
    # clause keeps already-absorbed nodes out of the frontier
    thresholds = np.full(n, r_max) if balanced else degrees * r_max

    pushes = 0
    work = 0
    frontier_sizes: list[int] = []
    while True:
        frontier = np.flatnonzero((residual >= thresholds)
                                  & (residual > 0.0))
        if frontier.size == 0:
            break
        if pushes + frontier.size > max_pushes:
            raise ConfigError(
                f"forward push exceeded max_pushes={max_pushes}; "
                f"raise the limit or increase r_max")
        pushes += int(frontier.size)
        frontier_sizes.append(int(frontier.size))
        mass = residual[frontier].copy()
        residual[frontier] = 0.0
        dangling = degrees[frontier] == 0
        if dangling.any():
            # absorbing node: the walk ends here
            reserve[frontier[dangling]] += mass[dangling]
        pushable = frontier[~dangling]
        if pushable.size:
            push_mass = mass[~dangling]
            reserve[pushable] += alpha * push_mass
            work += forward_scatter(graph, pushable, push_mass, alpha,
                                    residual, backend)
    return PushResult(reserve=reserve, residual=residual,
                      num_pushes=pushes, work=work,
                      num_sweeps=len(frontier_sizes),
                      frontier_sizes=tuple(frontier_sizes))


def forward_push(graph: Graph, source: int, alpha: float, r_max: float,
                 max_pushes: int = 50_000_000, *,
                 backend: str = DEFAULT_PUSH_BACKEND) -> PushResult:
    """Algorithm 2: classic forward push, threshold ``d_u · r_max``.

    Runs in ``O(1 / (α · r_max))`` pushes; the reserve under-estimates
    ``π(source, ·)`` and the invariant Eq. 6 holds exactly (tested).
    ``backend`` picks the sweep kernel (see :mod:`repro.push.kernels`);
    the result is backend-independent.
    """
    _check_common(graph, source, alpha, r_max)
    return _forward_push_impl(graph, source, alpha, r_max, balanced=False,
                              max_pushes=max_pushes, backend=backend)


def balanced_forward_push(graph: Graph, source: int, alpha: float,
                          r_max: float,
                          max_pushes: int = 50_000_000, *,
                          backend: str = DEFAULT_PUSH_BACKEND) -> PushResult:
    """§5.2's balanced forward push: uniform threshold ``r_max``.

    Guarantees ``r(u) < r_max`` for every node on exit — the property
    FORAL/FORALV's sample-size bound needs.  Costs
    ``O(d̄ / (α · r_max))`` (Lemma 5.4).
    """
    _check_common(graph, source, alpha, r_max)
    return _forward_push_impl(graph, source, alpha, r_max, balanced=True,
                              max_pushes=max_pushes, backend=backend)
