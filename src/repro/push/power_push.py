r"""SPEEDPPR-style whole-vector forward push ("power push").

Wu et al. (SIGMOD'21) observed that once the push frontier covers most
of the graph, queue bookkeeping dominates and it is cheaper to push
*every* node per round — which is exactly one power-iteration step on
the residual:

.. math::
   q \mathrel{+}= \alpha\,r, \qquad r \leftarrow (1-\alpha)\,P^\top r .

The residual mass shrinks by the factor ``(1-α)`` per round, so
reaching total residual ``ρ`` costs ``log(ρ) / log(1-α)`` sparse
mat-vecs — the ``(1/α)·n·log n·log(1/ε)`` term in SPEEDPPR's
complexity.  Our SPEED* algorithms run this as their deterministic
stage and hand the final residual to either α-walks (SPEEDPPR) or
forest sampling (SPEEDL / SPEEDLV).

A hybrid refinement (``local_start=True``) runs a frontier-sweep local
push first while the frontier is narrow, then switches to full
mat-vecs — mirroring SPEEDPPR's actual implementation.  ``backend``
selects the local phase's sweep kernel (see
:mod:`repro.push.kernels`); the whole-vector rounds are already one
maximal-frontier vector kernel (a CSR mat-vec) and are shared by both
backends, so the result is backend-independent.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.linalg.transition import transition_matrix
from repro.push.forward import PushResult, forward_push
from repro.push.kernels import DEFAULT_PUSH_BACKEND, validate_push_backend

__all__ = ["power_push"]


def power_push(graph: Graph, source: int, alpha: float,
               residual_target: float, *, criterion: str = "mass",
               local_start: bool = True,
               max_rounds: int = 100_000,
               backend: str = DEFAULT_PUSH_BACKEND) -> PushResult:
    """Push until the residual drops below ``residual_target``.

    Parameters
    ----------
    residual_target:
        Stop once the monitored quantity is ``<= residual_target``
        (must be in (0, 1]).
    criterion:
        ``"mass"`` monitors ``Σ_u r(u)`` (the SPEEDPPR walk-budget
        balance); ``"max"`` monitors ``max_u r(u)`` (what the forest
        samplers' ``ω = ⌈r_ceil · W⌉`` bound depends on — used by
        SPEEDL/SPEEDLV).
    local_start:
        Begin with a classic local forward push (cheap while the
        frontier is small) before switching to whole-vector rounds.
    backend:
        Sweep kernel for the local phase (whole-vector rounds are
        backend-independent).

    Returns
    -------
    PushResult
        ``work`` counts edge traversals across both phases;
        ``num_sweeps`` counts local sweeps plus whole-vector rounds.
    """
    if not 0 <= source < graph.num_nodes:
        raise ConfigError(f"node {source} out of range")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if not 0.0 < residual_target <= 1.0:
        raise ConfigError("residual_target must lie in (0, 1]")
    if criterion not in ("mass", "max"):
        raise ConfigError("criterion must be 'mass' or 'max'")
    validate_push_backend(backend)

    work = 0
    pushes = 0
    frontier_sizes: list[int] = []
    if local_start:
        # a moderately coarse local push clears the easy mass first
        warm = forward_push(graph, source, alpha,
                            r_max=max(residual_target, 1.0 / max(
                                graph.num_nodes, 1)),
                            backend=backend)
        reserve, residual = warm.reserve, warm.residual
        work += warm.work
        pushes += warm.num_pushes
        frontier_sizes.extend(warm.frontier_sizes)
    else:
        reserve = np.zeros(graph.num_nodes)
        residual = np.zeros(graph.num_nodes)
        residual[source] = 1.0

    operator = transition_matrix(graph).T.tocsr()
    arcs = graph.num_arcs
    for _ in range(max_rounds):
        level = residual.sum() if criterion == "mass" else residual.max(initial=0.0)
        if level <= residual_target:
            break
        reserve = reserve + alpha * residual
        residual = (1.0 - alpha) * (operator @ residual)
        work += arcs
        pushes += graph.num_nodes
        frontier_sizes.append(graph.num_nodes)
    else:
        raise ConfigError(
            f"power push did not reach residual_target={residual_target} "
            f"within {max_rounds} rounds")
    return PushResult(reserve=reserve, residual=residual,
                      num_pushes=pushes, work=work,
                      num_sweeps=len(frontier_sizes),
                      frontier_sizes=tuple(frontier_sizes))
