r"""Frontier-batch push kernels shared by every deterministic push.

All push algorithms in this package now run as *synchronous frontier
sweeps*: each iteration selects the entire above-threshold frontier at
once, converts the α-share of every frontier residual into reserve,
and scatters the remaining ``(1-α)`` mass to the frontier's neighbours
over the shared CSR arrays.  The per-sweep scatter — the hot inner
loop — lives here in two interchangeable *backends*:

``vectorized`` (default)
    One ``np.add.at`` segment-scatter over the concatenated CSR rows
    of all frontier nodes (PowerWalk-style vertex-centric batching).
``scalar``
    The historical node-at-a-time Python loop, retained as the
    reference implementation the statistical and equivalence tests
    compare against.

Both backends traverse the same edges in the same order with the same
floating-point expression structure, so for a given frontier they
produce identical residual/reserve updates (the cross-backend tests
assert agreement to ≤1e-12 and equal push counts).  Backend selection
threads from :class:`~repro.core.config.PPRConfig.push_backend` and
the CLI's ``--push-backend`` down to the ``backend=`` parameter of
:func:`~repro.push.forward.forward_push` and friends.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = [
    "PUSH_BACKENDS",
    "DEFAULT_PUSH_BACKEND",
    "validate_push_backend",
    "frontier_edges",
    "forward_scatter",
    "backward_scatter",
]

#: Registered push backends, in documentation order.
PUSH_BACKENDS = ("vectorized", "scalar")

#: Backend used when none is requested.
DEFAULT_PUSH_BACKEND = "vectorized"


def validate_push_backend(backend: str) -> str:
    """Return ``backend`` if registered, raise :class:`ConfigError` if not."""
    if backend not in PUSH_BACKENDS:
        raise ConfigError(
            f"unknown push backend {backend!r}; choose from {PUSH_BACKENDS}")
    return backend


def frontier_edges(indptr: np.ndarray, frontier: np.ndarray,
                   counts: np.ndarray) -> np.ndarray:
    """Flat CSR edge positions of the frontier's rows, in frontier order.

    ``counts`` must equal ``indptr[frontier + 1] - indptr[frontier]``
    (passed in because every caller already has it).  The result
    concatenates each row's ``arange(indptr[u], indptr[u+1])`` so that
    gathered edge arrays line up with ``np.repeat(..., counts)``.
    """
    total = int(counts.sum())
    starts = indptr[frontier]
    # start of each row inside the concatenated output
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets,
                                                        counts)


def forward_scatter(graph: Graph, frontier: np.ndarray, mass: np.ndarray,
                    alpha: float, residual: np.ndarray,
                    backend: str) -> int:
    """Scatter the forward shares of every frontier node's residual.

    ``mass`` holds the residuals captured at sweep start (the driver
    has already zeroed ``residual[frontier]`` and credited the reserve)
    and every frontier node has out-degree > 0.  Each neighbour ``v``
    of ``u`` receives ``(1-α)·mass(u)·w_uv/d_u``.  Returns the number
    of edge traversals.
    """
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    degrees = graph.degrees
    if backend == "scalar":
        work = 0
        for i in range(frontier.size):
            u = int(frontier[i])
            m = float(mass[i])
            lo, hi = indptr[u], indptr[u + 1]
            neighbors = indices[lo:hi]
            if weights is None:
                np.add.at(residual, neighbors, (1.0 - alpha) * m / degrees[u])
            else:
                np.add.at(residual, neighbors,
                          (1.0 - alpha) * m * weights[lo:hi] / degrees[u])
            work += int(hi - lo)
        return work
    counts = indptr[frontier + 1] - indptr[frontier]
    edges = frontier_edges(indptr, frontier, counts)
    targets = indices[edges]
    if weights is None:
        shares = np.repeat((1.0 - alpha) * mass / degrees[frontier], counts)
    else:
        shares = (np.repeat((1.0 - alpha) * mass, counts) * weights[edges]
                  / np.repeat(degrees[frontier], counts))
    np.add.at(residual, targets, shares)
    return int(counts.sum())


def backward_scatter(indptr: np.ndarray, indices: np.ndarray,
                     weights: np.ndarray | None, degrees: np.ndarray,
                     frontier: np.ndarray, spread: np.ndarray,
                     residual: np.ndarray, backend: str) -> int:
    """Scatter backward-push mass to the frontier's in-neighbours.

    ``indptr``/``indices``/``weights`` describe the *reverse* CSR (the
    in-edges of each frontier node) while ``degrees`` are the forward
    weighted out-degrees: in-neighbour ``z`` of ``u`` receives
    ``spread(u)·w_zu/d_z`` — the division is by the *receiver's*
    degree, the transpose of forward push.  ``spread`` is the driver's
    per-node outgoing mass (``(1-α)·r(u)``, or the dangling closed
    form).  Returns the number of edge traversals.
    """
    if backend == "scalar":
        work = 0
        for i in range(frontier.size):
            u = int(frontier[i])
            lo, hi = indptr[u], indptr[u + 1]
            sources = indices[lo:hi]
            if sources.size:
                edge_w = (np.ones(hi - lo) if weights is None
                          else weights[lo:hi])
                receiver_deg = degrees[sources]
                increments = np.zeros(hi - lo)
                # in-neighbours necessarily have an out-edge, so
                # receiver_deg > 0; guard anyway for pathological input
                ok = receiver_deg > 0
                increments[ok] = float(spread[i]) * edge_w[ok] / receiver_deg[ok]
                np.add.at(residual, sources, increments)
            work += int(hi - lo)
        return work
    counts = indptr[frontier + 1] - indptr[frontier]
    edges = frontier_edges(indptr, frontier, counts)
    sources = indices[edges]
    edge_w = np.ones(sources.size) if weights is None else weights[edges]
    receiver_deg = degrees[sources]
    increments = np.zeros(sources.size)
    ok = receiver_deg > 0
    increments[ok] = (np.repeat(spread, counts)[ok] * edge_w[ok]
                      / receiver_deg[ok])
    np.add.at(residual, sources, increments)
    return int(counts.sum())
