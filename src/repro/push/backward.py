r"""Backward push (Algorithm 4) and randomized backward push (RBACK).

Backward push estimates the single-target vector ``π(·, t)``.  It
maintains reserve/residual with the invariant (Eq. 7)

.. math:: \pi(v, t) = q(v) + \sum_u \pi(v, u)\, r(u) \quad \forall v,

starting from ``r = e_t``.  Pushing ``u`` moves ``α r(u)`` into
``q(u)`` and sends ``(1-α)\,w_{zu} r(u) / d_z`` to every in-neighbour
``z`` — note the division by the *receiver's* degree, the transpose of
forward push.  The uniform threshold ``r(u) ≥ r_max`` yields the
classic additive guarantee ``|π(v,t) − q(v)| ≤ r_max`` for all ``v``.

:func:`backward_push` runs as synchronous frontier sweeps over the
reverse CSR through :func:`repro.push.kernels.backward_scatter`
(``backend="vectorized"`` batches the whole frontier,
``backend="scalar"`` is the node-at-a-time reference loop; the sweep
schedule and exit state are backend-independent).

:func:`randomized_backward_push` implements the RBACK baseline
(Wang et al., KDD'20): residual increments below a threshold ``θ`` are
rounded up to ``θ`` with probability ``increment/θ`` and dropped
otherwise — an unbiased sparsification that skips work on tiny
increments at the cost of extra randomness per push.  Because its
random stream is consumed push by push it stays queue-based and
scalar-only.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.push.forward import PushResult
from repro.push.kernels import (
    DEFAULT_PUSH_BACKEND,
    backward_scatter,
    validate_push_backend,
)
from repro.rng import ensure_rng

__all__ = ["backward_push", "randomized_backward_push"]


def _check(graph: Graph, target: int, alpha: float, r_max: float) -> None:
    if not 0 <= target < graph.num_nodes:
        raise ConfigError(f"node {target} out of range [0, {graph.num_nodes})")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if r_max <= 0.0:
        raise ConfigError(f"r_max must be positive, got {r_max}")


def _in_edges(graph: Graph):
    """CSR of in-edges with the weight/degree data backward push needs.

    For node ``u`` the slice gives its in-neighbours ``z``, the edge
    weights ``w_zu``, and we pair them with the *receivers'* degrees
    ``d_z``.  Undirected graphs reuse the forward CSR directly.
    """
    reverse = graph.reverse()
    return reverse.indptr, reverse.indices, reverse.weights


def backward_push(graph: Graph, target: int, alpha: float, r_max: float,
                  max_pushes: int = 50_000_000, *,
                  backend: str = DEFAULT_PUSH_BACKEND) -> PushResult:
    """Algorithm 4: deterministic backward push from ``target``.

    Guarantees ``0 ≤ π(v, t) − q(v) ≤ r_max`` for every ``v`` on exit
    (additive error), at cost ``O(π(t) · d̄ / (α · r_max))``.
    """
    _check(graph, target, alpha, r_max)
    validate_push_backend(backend)
    n = graph.num_nodes
    indptr, indices, weights = _in_edges(graph)
    degrees = graph.degrees
    reserve = np.zeros(n)
    residual = np.zeros(n)
    residual[target] = 1.0

    pushes = 0
    work = 0
    frontier_sizes: list[int] = []
    while True:
        frontier = np.flatnonzero(residual >= r_max)
        if frontier.size == 0:
            break
        if pushes + frontier.size > max_pushes:
            raise ConfigError(
                f"backward push exceeded max_pushes={max_pushes}")
        pushes += int(frontier.size)
        frontier_sizes.append(int(frontier.size))
        mass = residual[frontier].copy()
        residual[frontier] = 0.0
        # dangling node: absorbing self-loop summed in closed form
        dangling = degrees[frontier] == 0
        reserve[frontier] += np.where(dangling, mass, alpha * mass)
        spread = np.where(dangling, (1.0 - alpha) / alpha * mass,
                          (1.0 - alpha) * mass)
        work += backward_scatter(indptr, indices, weights, degrees,
                                 frontier, spread, residual, backend)
    return PushResult(reserve=reserve, residual=residual,
                      num_pushes=pushes, work=work,
                      num_sweeps=len(frontier_sizes),
                      frontier_sizes=tuple(frontier_sizes))


def randomized_backward_push(graph: Graph, target: int, alpha: float,
                             r_max: float, *,
                             theta: float | None = None,
                             rng: np.random.Generator | int | None = None,
                             max_pushes: int = 50_000_000) -> PushResult:
    """RBACK: backward push with probabilistic increment rounding.

    Parameters
    ----------
    theta:
        Rounding threshold; increments below it are pushed as exactly
        ``theta`` with probability ``increment / theta`` (unbiased).
        Defaults to ``r_max / 4`` — small enough that the extra
        variance stays below the push guarantee, large enough to prune.
    """
    _check(graph, target, alpha, r_max)
    if theta is None:
        theta = r_max / 4.0
    if theta <= 0.0:
        raise ConfigError("theta must be positive")
    generator = ensure_rng(rng)
    n = graph.num_nodes
    indptr, indices, weights = _in_edges(graph)
    degrees = graph.degrees
    reserve = np.zeros(n)
    residual = np.zeros(n)
    residual[target] = 1.0

    queue: deque[int] = deque([target])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[target] = True
    pushes = 0
    work = 0
    while queue:
        if pushes >= max_pushes:
            raise ConfigError(
                f"randomized backward push exceeded max_pushes={max_pushes}")
        u = queue.popleft()
        in_queue[u] = False
        mass = residual[u]
        if mass < r_max:
            continue
        pushes += 1
        if degrees[u] == 0:
            reserve[u] += mass
            spread = (1.0 - alpha) / alpha * mass
        else:
            reserve[u] += alpha * mass
            spread = (1.0 - alpha) * mass
        residual[u] = 0.0
        lo, hi = indptr[u], indptr[u + 1]
        sources = indices[lo:hi]
        if sources.size:
            edge_w = np.ones(hi - lo) if weights is None else weights[lo:hi]
            receiver_deg = degrees[sources]
            increments = np.zeros(hi - lo)
            ok = receiver_deg > 0
            increments[ok] = spread * edge_w[ok] / receiver_deg[ok]
            small = increments < theta
            if small.any():
                survive = generator.random(int(small.sum())) < (
                    increments[small] / theta)
                rounded = np.zeros(int(small.sum()))
                rounded[survive] = theta
                increments[small] = rounded
            touched = increments > 0
            np.add.at(residual, sources[touched], increments[touched])
            work += int(touched.sum())
            hot = sources[(residual[sources] >= r_max) & ~in_queue[sources]]
            for z in hot:
                queue.append(int(z))
                in_queue[z] = True
    return PushResult(reserve=reserve, residual=residual,
                      num_pushes=pushes, work=work)
