"""Algorithm 1: loop-erased α-random-walk forest sampling (reference).

This is the paper's pseudocode transcribed faithfully: iterate over the
nodes in a fixed order; from each yet-uncovered node run an α-random
walk that stops either by the α coin (the stop node becomes a fresh
root) or by hitting the already-built forest; then retrace the
``Next`` pointers — which at that moment encode the loop-erased
trajectory — and attach it.

It is the *reference* sampler: a tight Python loop, one node visit per
iteration, counting exactly the τ statistic of §4.2 (the expected
number of visits is ``Σ_u π(u,u)/α``, Lemma 4.4).  The production
sampler is :mod:`repro.forests.cycle_popping`, which draws the same
distribution with vectorised NumPy passes; the test-suite verifies the
two agree.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.forest import RootedForest
from repro.graph.csr import Graph
from repro.rng import BlockUniforms

__all__ = ["sample_forest_wilson", "loop_erased_alpha_walk"]


def loop_erased_alpha_walk(graph: Graph, start: int, alpha: float,
                           rng: np.random.Generator | int | None = None,
                           blocked=None) -> tuple[list[int], bool]:
    """Run one loop-erased α-random walk and return its trajectory.

    The building block of Algorithm 1, exposed on its own for theory
    verification (Theorem 4.2 gives this trajectory's exact law) and
    for teaching: the walk stops either by the α coin (returning
    ``(trajectory, True)`` — the endpoint is a fresh root) or upon
    hitting a node of ``blocked`` (``(trajectory, False)`` — the
    endpoint is the first blocked node reached).

    Parameters
    ----------
    blocked:
        Optional set/array of "former trajectory" nodes (the paper's
        ``Δ_0``); the walk is absorbed on contact.

    Returns
    -------
    (trajectory, stopped_by_alpha):
        The loop-erased node sequence starting at ``start``; the flag
        says which absorption ended the walk.
    """
    from repro.exceptions import ConfigError
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if not 0 <= start < graph.num_nodes:
        raise ConfigError(f"start {start} out of range")
    blocked_set = set(int(b) for b in blocked) if blocked is not None else set()
    if start in blocked_set:
        return [start], False
    uniforms = BlockUniforms(rng)
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    weighted = graph.is_weighted
    if weighted:
        cumulative = graph.cumulative_weights
        degrees = graph.degrees

    next_pointer: dict[int, int] = {}
    u = int(start)
    stopped_by_alpha = False
    while True:
        degree = int(out_degrees[u])
        if degree == 0 or uniforms.next() < alpha:
            stopped_by_alpha = True
            break
        if weighted:
            lo, hi = indptr[u], indptr[u + 1]
            mass = uniforms.next() * degrees[u]
            slot = np.searchsorted(cumulative[lo:hi], mass, side="right")
            v = int(indices[lo + min(slot, degree - 1)])
        else:
            v = int(indices[indptr[u] + uniforms.next_int(degree)])
        next_pointer[u] = v
        u = v
        if u in blocked_set:
            break
    terminal = u

    trajectory = [int(start)]
    u = int(start)
    while u != terminal:
        u = next_pointer[u]
        trajectory.append(u)
    return trajectory, stopped_by_alpha


def sample_forest_wilson(graph: Graph, alpha: float,
                         rng: np.random.Generator | int | None = None,
                         order: np.ndarray | None = None) -> RootedForest:
    """Sample one rooted spanning forest with the loop-erased α-walk.

    Parameters
    ----------
    graph:
        Undirected (or directed; walks follow out-arcs) graph.
    alpha:
        Decay factor in ``(0, 1)``: the per-step stop probability.
    rng:
        Seed or Generator.
    order:
        Optional node processing order.  Theorem-level the result
        distribution is order-independent (a key Wilson property,
        exploited by the complexity analysis); exposing it lets tests
        check that invariance empirically.

    Returns
    -------
    RootedForest
        With ``num_steps`` = number of node visits performed, i.e. the
        empirical τ.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    weighted = graph.is_weighted
    if weighted:
        cumulative = graph.cumulative_weights
        degrees = graph.degrees

    in_forest = np.zeros(n, dtype=bool)
    next_node = np.full(n, -1, dtype=np.int64)
    root = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)

    uniforms = BlockUniforms(rng)
    if order is None:
        order = range(n)
    steps = 0

    for start in order:
        u = int(start)
        # phase 1: alpha-random walk until absorption (alpha coin or
        # collision with the existing forest)
        while not in_forest[u]:
            steps += 1
            degree = out_degrees[u]
            if degree == 0 or uniforms.next() < alpha:
                in_forest[u] = True
                root[u] = u
                parent[u] = -1
                break
            if weighted:
                lo, hi = indptr[u], indptr[u + 1]
                mass = uniforms.next() * degrees[u]
                slot = np.searchsorted(cumulative[lo:hi], mass, side="right")
                u_next = int(indices[lo + min(slot, degree - 1)])
            else:
                u_next = int(indices[indptr[u] + uniforms.next_int(degree)])
            next_node[u] = u_next
            u = u_next
        # phase 2: retrace the Next pointers from the start; they now
        # spell the loop-erased trajectory, ending inside the forest
        tree_root = int(root[u])
        u = int(start)
        while not in_forest[u]:
            in_forest[u] = True
            root[u] = tree_root
            parent[u] = next_node[u]
            u = int(next_node[u])

    return RootedForest(roots=root, parents=parent, num_steps=steps,
                        method="wilson")
