r"""Brute-force enumeration of rooted spanning forests (tiny graphs).

These routines exist to *prove the theory holds in code*: they
enumerate every spanning forest of a small graph (every acyclic edge
subset spans — isolated vertices are single-node trees) and aggregate
rooted weights, letting the test-suite check, digit for digit,

- Theorem 3.1: ``det(L_β) · β^n · Π d_u = Σ_F w(F) Π_{ρ(F)} β d_u``;
- Theorems 3.2/3.3 (minor identities) via
  :func:`forest_weight_rooted_at` / :func:`forest_weight_rooted_pair`;
- Theorems 3.4–3.6: the rooted-in probability matrix equals the PPR
  matrix;
- Theorem 4.3: both samplers hit each forest with probability
  ``w(F) Π β d_u / det(L + βD)``.

The root-choice sum factorises over trees — for a fixed forest the sum
over all root assignments of ``Π_{roots} β d_root`` equals
``Π_{trees T} (Σ_{u∈T} β d_u)`` — so no explicit root enumeration is
ever needed.

Complexity is ``O(2^m · m α(n))``; keep graphs at ``m ≲ 18`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.exceptions import ConfigError, GraphError
from repro.graph.csr import Graph
from repro.linalg.beta_laplacian import beta_from_alpha

__all__ = [
    "SpanningForest",
    "enumerate_spanning_forests",
    "total_rooted_forest_weight",
    "forest_weight_rooted_at",
    "forest_weight_rooted_pair",
    "rooted_in_probability_matrix",
    "forest_probability",
]

_MAX_EDGES = 22


@dataclass(frozen=True)
class SpanningForest:
    """One (unrooted) spanning forest from the enumeration.

    Attributes
    ----------
    edges:
        Tuple of ``(u, v)`` pairs included in the forest.
    weight:
        ``w(F) = Π_{e∈F} w_e``.
    labels:
        Component label per node.
    """

    edges: tuple[tuple[int, int], ...]
    weight: float
    labels: tuple[int, ...]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge; return False if x and y were already connected."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        self.parent[root_x] = root_y
        return True


def _undirected_edges(graph: Graph) -> tuple[list[tuple[int, int]], np.ndarray]:
    if graph.directed:
        raise ConfigError("enumeration supports undirected graphs only")
    arcs = graph.edges()
    mask = arcs[:, 0] < arcs[:, 1]
    pairs = [tuple(map(int, pair)) for pair in arcs[mask]]
    weights = (np.ones(len(pairs)) if graph.weights is None
               else graph.weights[mask])
    if len(pairs) > _MAX_EDGES:
        raise GraphError(
            f"enumeration is exponential; refuse m={len(pairs)} > {_MAX_EDGES}")
    return pairs, weights


def enumerate_spanning_forests(graph: Graph):
    """Yield every spanning forest of ``graph`` as a :class:`SpanningForest`.

    Iterates over all edge subsets of every size and keeps the acyclic
    ones (checked with union–find).
    """
    pairs, weights = _undirected_edges(graph)
    n = graph.num_nodes
    m = len(pairs)
    for size in range(0, min(m, n - 1) + 1):
        for subset in combinations(range(m), size):
            uf = _UnionFind(n)
            acyclic = True
            for index in subset:
                u, v = pairs[index]
                if not uf.union(u, v):
                    acyclic = False
                    break
            if not acyclic:
                continue
            labels = tuple(uf.find(v) for v in range(n))
            weight = float(np.prod(weights[list(subset)])) if subset else 1.0
            yield SpanningForest(
                edges=tuple(pairs[i] for i in subset),
                weight=weight, labels=labels)


def _component_degree_sums(forest: SpanningForest,
                           degrees: np.ndarray) -> dict[int, float]:
    sums: dict[int, float] = {}
    for node, label in enumerate(forest.labels):
        sums[label] = sums.get(label, 0.0) + float(degrees[node])
    return sums


def total_rooted_forest_weight(graph: Graph, alpha: float) -> float:
    r"""``Σ_F w(F) Π_{u∈ρ(F)} β d_u`` over all *rooted* forests.

    Equals ``det(L + βD)`` (and hence Theorem 3.1's expression) —
    verified by the tests.
    """
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    total = 0.0
    for forest in enumerate_spanning_forests(graph):
        product = 1.0
        for degree_sum in _component_degree_sums(forest, degrees).values():
            product *= beta * degree_sum
        total += forest.weight * product
    return total


def forest_weight_rooted_at(graph: Graph, alpha: float, root: int) -> float:
    """Rooted weight restricted to forests with ``root ∈ ρ(F)`` (Thm 3.2).

    Divided by :func:`total_rooted_forest_weight` this is ``π(root, root)``
    (Theorem 3.4).
    """
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    total = 0.0
    for forest in enumerate_spanning_forests(graph):
        sums = _component_degree_sums(forest, degrees)
        root_label = forest.labels[root]
        # fix `root` as its tree's root; other trees choose freely
        product = beta * float(degrees[root])
        for label, degree_sum in sums.items():
            if label != root_label:
                product *= beta * degree_sum
        total += forest.weight * product
    return total


def forest_weight_rooted_pair(graph: Graph, alpha: float,
                              source: int, root: int) -> float:
    """Rooted weight over forests where ``source`` is rooted in ``root``.

    The numerator of Theorem 3.5 (and of Theorem 3.3's minor identity):
    ``source`` and ``root`` share a tree and ``root`` is its root.
    """
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    total = 0.0
    for forest in enumerate_spanning_forests(graph):
        if forest.labels[source] != forest.labels[root]:
            continue
        sums = _component_degree_sums(forest, degrees)
        shared = forest.labels[root]
        product = beta * float(degrees[root])
        for label, degree_sum in sums.items():
            if label != shared:
                product *= beta * degree_sum
        total += forest.weight * product
    return total


def rooted_in_probability_matrix(graph: Graph, alpha: float) -> np.ndarray:
    """Matrix ``Q[s, t] = Pr(s rooted in t)`` by exhaustive enumeration.

    Theorem 3.6 asserts ``Q`` equals the PPR matrix; the tests compare
    it against :func:`repro.linalg.exact.exact_ppr_matrix`.
    """
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    n = graph.num_nodes
    numerator = np.zeros((n, n))
    denominator = 0.0
    for forest in enumerate_spanning_forests(graph):
        sums = _component_degree_sums(forest, degrees)
        labels = np.asarray(forest.labels)
        full_product = 1.0
        for degree_sum in sums.values():
            full_product *= beta * degree_sum
        denominator += forest.weight * full_product
        # contribution to Q[s, t]: t roots its own tree, others free
        for t in range(n):
            t_label = labels[t]
            product = beta * float(degrees[t])
            for label, degree_sum in sums.items():
                if label != t_label:
                    product *= beta * degree_sum
            same_tree = labels == t_label
            numerator[same_tree, t] += forest.weight * product
    return numerator / denominator


def forest_probability(graph: Graph, alpha: float,
                       forest: SpanningForest, roots: tuple[int, ...]) -> float:
    """Exact probability of one *rooted* forest under Theorem 4.3.

    ``roots`` must pick exactly one node per tree of ``forest``.
    """
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    labels = forest.labels
    chosen_labels = {labels[r] for r in roots}
    if len(roots) != len(set(labels)) or len(chosen_labels) != len(roots):
        raise ConfigError("roots must select exactly one node per tree")
    product = forest.weight
    for r in roots:
        product *= beta * float(degrees[r])
    return product / total_rooted_forest_weight(graph, alpha)
