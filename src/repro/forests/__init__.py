"""Random rooted spanning forests — the paper's central object.

Two samplers draw from the distribution of Theorem 4.3,
``Pr(F) ∝ w(F) · Π_{u ∈ ρ(F)} β d_u``:

- :func:`sample_forest_wilson` — the faithful Algorithm 1
  (loop-erased α-random walk), kept as the reference implementation
  and the τ meter;
- :func:`sample_forest_cycle_popping` — a NumPy-vectorised equivalent
  based on the Propp–Wilson cycle-popping view of Wilson's algorithm
  (provably the same distribution; tested statistically).

:func:`sample_forest` picks the vectorised sampler by default.
:mod:`repro.forests.enumeration` brute-forces tiny graphs to verify
the matrix-forest theorems; :mod:`repro.forests.estimators` implements
the basic and variance-reduced PPR estimators of §5.2/§6.2.
"""

from repro.forests.forest import RootedForest
from repro.forests.wilson import sample_forest_wilson, loop_erased_alpha_walk
from repro.forests.cycle_popping import sample_forest_cycle_popping
from repro.forests.repair import (
    ForestRecord,
    repair_forest,
    sample_forest_recorded,
)
from repro.forests.sampling import sample_forest, sample_forests
from repro.forests.batch_sampling import sample_forests_batch
from repro.forests.statistics import (
    ForestStatistics,
    collect_forest_statistics,
)
from repro.forests.enumeration import (
    enumerate_spanning_forests,
    total_rooted_forest_weight,
    rooted_in_probability_matrix,
    forest_weight_rooted_at,
    forest_weight_rooted_pair,
)
from repro.forests.estimators import (
    source_estimate_basic,
    source_estimate_improved,
    target_estimate_basic,
    target_estimate_improved,
    root_indicator,
)

__all__ = [
    "RootedForest",
    "sample_forest",
    "sample_forests",
    "sample_forests_batch",
    "ForestStatistics",
    "collect_forest_statistics",
    "sample_forest_wilson",
    "loop_erased_alpha_walk",
    "sample_forest_cycle_popping",
    "ForestRecord",
    "sample_forest_recorded",
    "repair_forest",
    "enumerate_spanning_forests",
    "total_rooted_forest_weight",
    "rooted_in_probability_matrix",
    "forest_weight_rooted_at",
    "forest_weight_rooted_pair",
    "source_estimate_basic",
    "source_estimate_improved",
    "target_estimate_basic",
    "target_estimate_improved",
    "root_indicator",
]
