r"""Forest-based PPR estimators (the Monte-Carlo stage of §5.2 / §6.2).

After a push stage leaves a residual vector ``r``, the remaining mass
to estimate is ``Σ_u r(u) π(u, v)`` (single source, Eq. 6) or
``Σ_u π(v, u) r(u)`` (single target, Eq. 7).  With ``π`` read as a
rooted-in probability (Theorem 3.6), one sampled forest yields, for
*every* node simultaneously:

single source
    basic (FORAL):      ``a_v = Σ_{u : root(u) = v} r(u)``
    improved (FORALV):  ``a_v = d_v · (Σ_{u∈C(v)} r(u)) / (Σ_{u∈C(v)} d_u)``
single target
    basic (BACKL):      ``a_v = r(root(v))``
    improved (BACKLV):  ``a_v = (Σ_{u∈C(v)} r(u)·d_u) / (Σ_{u∈C(v)} d_u)``

where ``C(v)`` is the tree containing ``v``.  The improved versions are
the conditional Monte-Carlo estimators of Theorem 3.8: given the
forest's partition, the root of each tree is degree-distributed
(Theorem 3.7), so replacing the indicator by its conditional
expectation never increases variance (Lemma 5.1) while staying
unbiased.

All four are O(n) per forest via ``np.bincount`` keyed on the root
labels.  Single-node trees of isolated (degree-0) nodes root
themselves with probability one; the improved estimators special-case
the resulting 0/0.

**Directedness.**  The basic estimators are unbiased on directed
graphs too (Theorem 3.6 needs only the Wilson/cycle-popping law, which
holds for any Markov chain).  The *improved* estimators rely on
Theorem 3.7's degree-proportional conditional root distribution, which
requires an undirected graph — on directed inputs they are biased
(verified empirically in the test-suite), so the query algorithms
refuse that combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.forest import RootedForest

__all__ = [
    "root_indicator",
    "source_estimate_basic",
    "source_estimate_improved",
    "target_estimate_basic",
    "target_estimate_improved",
    "estimator_for",
    "accumulate_estimates",
    "weighted_combine",
    "root_degree_mass",
    "CVAccumulator",
    "accumulate_cv_estimates",
    "cv_beta",
    "cv_combine",
    "cv_stderr",
]


def _check_inputs(forest: RootedForest, residual: np.ndarray) -> np.ndarray:
    residual = np.asarray(residual, dtype=np.float64)
    if residual.shape != (forest.num_nodes,):
        raise ConfigError(
            f"residual must have shape ({forest.num_nodes},), "
            f"got {residual.shape}")
    return residual


def root_indicator(forest: RootedForest, root: int) -> np.ndarray:
    """Boolean vector of the event "``u`` rooted in ``root``" per node.

    One-forest estimate of the column ``π(·, root)`` (Theorem 3.6).
    """
    if not 0 <= root < forest.num_nodes:
        raise ConfigError(f"root {root} out of range")
    return forest.roots == root


def source_estimate_basic(forest: RootedForest,
                          residual: np.ndarray) -> np.ndarray:
    """FORAL estimator: all of a tree's residual mass lands on its root.

    Unbiased for ``Σ_u r(u) π(u, ·)``: the expectation of
    ``Σ_u r(u)·1[root(u) = v]`` is ``Σ_u r(u)·Pr(u rooted in v)``.
    """
    residual = _check_inputs(forest, residual)
    return np.bincount(forest.roots, weights=residual,
                       minlength=forest.num_nodes)


def source_estimate_improved(forest: RootedForest, residual: np.ndarray,
                             degrees: np.ndarray) -> np.ndarray:
    """FORALV estimator: spread each tree's mass by degree (Thm 3.8)."""
    residual = _check_inputs(forest, residual)
    degrees = np.asarray(degrees, dtype=np.float64)
    tree_residual = np.bincount(forest.roots, weights=residual,
                                minlength=forest.num_nodes)
    tree_degree = forest.component_degree_mass(degrees)
    estimate = np.zeros(forest.num_nodes)
    labels = forest.roots
    positive = tree_degree[labels] > 0
    estimate[positive] = (degrees[positive]
                          * tree_residual[labels[positive]]
                          / tree_degree[labels[positive]])
    # isolated single-node trees: the node is its own root w.p. 1
    estimate[~positive] = residual[~positive]
    return estimate


def target_estimate_basic(forest: RootedForest,
                          residual: np.ndarray) -> np.ndarray:
    """BACKL estimator: every node inherits its root's residual."""
    residual = _check_inputs(forest, residual)
    return residual[forest.roots]


def target_estimate_improved(forest: RootedForest, residual: np.ndarray,
                             degrees: np.ndarray) -> np.ndarray:
    """BACKLV estimator: degree-weighted tree average of the residual.

    Conditional expectation of :func:`target_estimate_basic` given the
    partition — the tree root is degree-distributed, so
    ``E[r(root) | φ] = Σ_{u∈C} r(u) d_u / Σ_{u∈C} d_u``.
    """
    residual = _check_inputs(forest, residual)
    degrees = np.asarray(degrees, dtype=np.float64)
    tree_weighted = np.bincount(forest.roots, weights=residual * degrees,
                                minlength=forest.num_nodes)
    tree_degree = forest.component_degree_mass(degrees)
    labels = forest.roots
    estimate = np.zeros(forest.num_nodes)
    positive = tree_degree[labels] > 0
    estimate[positive] = (tree_weighted[labels[positive]]
                          / tree_degree[labels[positive]])
    estimate[~positive] = residual[~positive]
    return estimate


# ----------------------------------------------------------------------
# Accumulation over forest streams (shared by the serial Monte-Carlo
# stages and the parallel engine's worker chunks)
# ----------------------------------------------------------------------
def estimator_for(kind: str, improved: bool):
    """Return ``f(forest, residual, degrees) -> estimate`` by name.

    ``kind`` is ``"source"`` or ``"target"``; ``improved`` selects the
    conditional-Monte-Carlo variant.  The basic estimators ignore the
    ``degrees`` argument.
    """
    if kind == "source":
        if improved:
            return source_estimate_improved
        return lambda forest, residual, degrees: source_estimate_basic(
            forest, residual)
    if kind == "target":
        if improved:
            return target_estimate_improved
        return lambda forest, residual, degrees: target_estimate_basic(
            forest, residual)
    raise ConfigError(f"kind must be 'source' or 'target', got {kind!r}")


def weighted_combine(rows, weights) -> np.ndarray:
    """Fold estimate rows into ``Σ_i w_i · rows[i]`` in row order.

    The multi-seed personalization fold: by linearity of every forest
    estimator in the residual, the weighted sum of single-seed rows
    *is* the PPR vector of the seed-set personalization.  Accumulation
    is sequential in the given row order, so a fixed ``(rows, weights)``
    sequence yields bit-identical output — the contract the
    ``query_multiseed == Σ w_i · row_i`` tests pin down.
    """
    rows = list(rows)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(rows),):
        raise ConfigError(
            f"need one weight per row, got {weights.size} weights "
            f"for {len(rows)} rows")
    if not rows:
        raise ConfigError("weighted_combine needs at least one row")
    out = np.zeros_like(np.asarray(rows[0], dtype=np.float64))
    for row, weight in zip(rows, weights):
        out += weight * np.asarray(row, dtype=np.float64)
    return out


def accumulate_estimates(forests, residual: np.ndarray,
                         degrees: np.ndarray | None = None, *,
                         kind: str = "source", improved: bool = False,
                         track_squares: bool = False,
                         counters=None) -> tuple[np.ndarray,
                                                 np.ndarray | None, int]:
    """Fold an iterable of forests into estimator sums.

    Returns ``(sums, squares, drawn)`` where ``sums`` is the per-node
    sum of the per-forest estimates, ``squares`` their elementwise
    squares (``None`` unless ``track_squares``) and ``drawn`` the
    number of forests consumed.  Accumulation order follows the
    iterable, so a fixed forest sequence yields bit-identical sums —
    the property the parallel engine's determinism contract rests on.

    ``counters`` (a :class:`~repro.counters.WorkCounters`) is updated
    with each forest's steps/pops if given.
    """
    residual = np.asarray(residual, dtype=np.float64)
    estimator = estimator_for(kind, improved)
    if improved and degrees is None:
        raise ConfigError("improved estimators need the degree vector")
    sums = np.zeros(residual.size)
    squares = np.zeros(residual.size) if track_squares else None
    drawn = 0
    for forest in forests:
        estimate = estimator(forest, residual, degrees)
        sums += estimate
        if squares is not None:
            squares += estimate * estimate
        if counters is not None:
            counters.record_forest(forest)
        drawn += 1
    return sums, squares, drawn


# ----------------------------------------------------------------------
# Control variates (variance_mode="control_variate")
#
# The basic estimators admit a variate with *known* expectation: the
# root degree-mass  t_v(F) = Σ_{u : root(u) = v} d_u.  On an undirected
# graph the degree vector is the stationary measure (dᵀP = dᵀ, hence
# dᵀΠ = dᵀ), so  E[t_v] = Σ_u d_u π(u, v) = d_v  exactly.  Regressing
# the basic estimate a against t with a scalar coefficient β fitted
# per batch gives the adjusted estimator  â = ā − β·(t̄ − d), which is
# unbiased for any (even data-dependent, asymptotically) β and has
# lower variance wherever a and t correlate.  The improved estimators
# are already the conditional expectation given the partition, so this
# variate is orthogonal to them (Cov = 0) — CV therefore rides the
# *basic* estimator, trading Theorem 3.8's conditioning for a
# regression correction.  Accumulators are plain per-node sums, so
# worker chunks merge deterministically in chunk order exactly like
# ``accumulate_estimates`` output.
# ----------------------------------------------------------------------
def root_degree_mass(forest: RootedForest,
                     degrees: np.ndarray) -> np.ndarray:
    """The CV variate ``t_v = Σ_{u rooted in v} d_u`` (``E[t] = d``)."""
    return forest.component_degree_mass(
        np.asarray(degrees, dtype=np.float64))


@dataclass
class CVAccumulator:
    """Mergeable sums for the control-variate regression.

    ``sums``/``squares`` accumulate the *basic* estimator exactly as in
    :func:`accumulate_estimates`; ``t_sums``, ``at_sums`` and
    ``tt_sums`` are the per-node sums of ``t``, ``a·t`` and ``t²``
    needed to fit β and (optionally) the adjusted variance.
    """

    sums: np.ndarray
    squares: np.ndarray | None
    t_sums: np.ndarray
    at_sums: np.ndarray
    tt_sums: np.ndarray
    drawn: int = 0

    @classmethod
    def zeros(cls, num_nodes: int,
              track_squares: bool = False) -> "CVAccumulator":
        return cls(sums=np.zeros(num_nodes),
                   squares=np.zeros(num_nodes) if track_squares else None,
                   t_sums=np.zeros(num_nodes),
                   at_sums=np.zeros(num_nodes),
                   tt_sums=np.zeros(num_nodes),
                   drawn=0)

    def merge(self, other: "CVAccumulator") -> "CVAccumulator":
        """Fold ``other`` into ``self`` in place (chunk-order merge)."""
        self.sums += other.sums
        if self.squares is not None and other.squares is not None:
            self.squares += other.squares
        self.t_sums += other.t_sums
        self.at_sums += other.at_sums
        self.tt_sums += other.tt_sums
        self.drawn += other.drawn
        return self


def accumulate_cv_estimates(forests, residual: np.ndarray,
                            degrees: np.ndarray, *,
                            kind: str = "source",
                            track_squares: bool = False,
                            counters=None) -> CVAccumulator:
    """Fold forests into the control-variate accumulator sums.

    The estimate is the *basic* estimator of ``kind``; the variate is
    :func:`root_degree_mass` for both kinds (for targets the
    correlation is weaker — the variate lives in root space while the
    estimate reads the root's residual — but unbiasedness and the β=0
    fallback are unaffected).
    """
    residual = np.asarray(residual, dtype=np.float64)
    degrees = np.asarray(degrees, dtype=np.float64)
    estimator = estimator_for(kind, improved=False)
    acc = CVAccumulator.zeros(residual.size, track_squares)
    for forest in forests:
        estimate = estimator(forest, residual, degrees)
        variate = root_degree_mass(forest, degrees)
        acc.sums += estimate
        if acc.squares is not None:
            acc.squares += estimate * estimate
        acc.t_sums += variate
        acc.at_sums += estimate * variate
        acc.tt_sums += variate * variate
        if counters is not None:
            counters.record_forest(forest)
        acc.drawn += 1
    return acc


def cv_beta(acc: CVAccumulator) -> float:
    """Least-squares β̂ = Ĉov(a, t) / V̂ar(t) pooled over all nodes.

    Computed from the mergeable sums alone:
    ``β̂ = [Σ_v S_at,v − (1/F)·Σ_v S_a,v·S_t,v]
    / [Σ_v S_tt,v − (1/F)·Σ_v S_t,v²]``.  Degenerate variates
    (``V̂ar(t) ≈ 0``, e.g. a single forest or a regular graph where t
    is a.s. constant) fall back to β = 0, i.e. the unadjusted basic
    estimator.
    """
    if acc.drawn <= 1:
        return 0.0
    drawn = float(acc.drawn)
    covariance = float(acc.at_sums.sum()
                       - (acc.sums * acc.t_sums).sum() / drawn)
    variance = float(acc.tt_sums.sum()
                     - (acc.t_sums * acc.t_sums).sum() / drawn)
    if variance <= 1e-12 * max(1.0, float(acc.tt_sums.sum())):
        return 0.0
    return covariance / variance


def cv_combine(acc: CVAccumulator, expected: np.ndarray,
               counters=None) -> tuple[np.ndarray, float]:
    """Adjusted estimate ``ā − β̂·(t̄ − E[t])`` plus the fitted β̂.

    ``expected`` is the variate's known expectation (the degree vector
    for :func:`root_degree_mass`).  Credits ``counters.cv_fits`` with
    the one regression fit this batch performed.
    """
    if acc.drawn <= 0:
        raise ConfigError("cv_combine needs at least one forest")
    beta = cv_beta(acc)
    expected = np.asarray(expected, dtype=np.float64)
    estimate = (acc.sums - beta * (acc.t_sums - acc.drawn * expected))
    estimate /= acc.drawn
    if counters is not None:
        counters.cv_fits += 1
    return estimate, beta


def cv_stderr(acc: CVAccumulator, beta: float) -> np.ndarray:
    """Per-node standard error of the β-adjusted mean estimate.

    Treats β as fixed: ``Var(a − β·t) = Var(a) − 2β·Cov(a, t)
    + β²·Var(t)`` per node, all readable from the accumulator sums.
    Requires ``track_squares`` accumulation.
    """
    if acc.squares is None:
        raise ConfigError("cv_stderr needs track_squares accumulation")
    if acc.drawn <= 1:
        return np.zeros_like(acc.sums)
    drawn = float(acc.drawn)
    mean_a = acc.sums / drawn
    mean_t = acc.t_sums / drawn
    var = (acc.squares / drawn - mean_a * mean_a
           - 2.0 * beta * (acc.at_sums / drawn - mean_a * mean_t)
           + beta * beta * (acc.tt_sums / drawn - mean_t * mean_t))
    return np.sqrt(np.maximum(var, 0.0) / drawn)
