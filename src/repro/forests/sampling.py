"""Sampler selection and batch sampling helpers."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.cycle_popping import sample_forest_cycle_popping
from repro.forests.forest import RootedForest
from repro.forests.wilson import sample_forest_wilson
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["sample_forest", "sample_forests", "SAMPLERS",
           "AUTO_SAMPLER_ALPHA_THRESHOLD"]

#: Registered samplers; both draw the distribution of Theorem 4.3.
SAMPLERS = {
    "wilson": sample_forest_wilson,
    "cycle_popping": sample_forest_cycle_popping,
}

#: Below this α the ``auto`` mode prefers the Wilson reference sampler:
#: cycle popping grinds through many near-empty popping rounds before
#: the first root appears (expected 1/α arrow draws away), and its
#: per-round vectorisation overhead then dominates the per-step cost
#: of the sequential sampler.  Crossover measured empirically.
AUTO_SAMPLER_ALPHA_THRESHOLD = 1e-3


def sample_forest(graph: Graph, alpha: float,
                  rng: np.random.Generator | int | None = None,
                  method: str = "auto",
                  counters=None) -> RootedForest:
    """Sample one rooted spanning forest.

    ``method`` selects between the vectorised production sampler
    (``"cycle_popping"``), the faithful Algorithm 1 reference
    (``"wilson"``), or ``"auto"`` (default) which picks cycle popping
    for moderate α and Wilson below
    :data:`AUTO_SAMPLER_ALPHA_THRESHOLD` — both draw the identical
    distribution, so the choice is purely a constant-factor matter.

    ``counters`` (a :class:`~repro.counters.WorkCounters`) is credited
    with the forest's walk steps and cycle pops if given.
    """
    if method == "auto":
        method = ("cycle_popping" if alpha >= AUTO_SAMPLER_ALPHA_THRESHOLD
                  else "wilson")
    try:
        sampler = SAMPLERS[method]
    except KeyError:
        raise ConfigError(
            f"unknown sampler {method!r}; choose from "
            f"{sorted(SAMPLERS) + ['auto']}") from None
    forest = sampler(graph, alpha, rng=rng)
    if counters is not None:
        counters.record_forest(forest)
    return forest


def sample_forests(graph: Graph, alpha: float, count: int,
                   rng: np.random.Generator | int | None = None,
                   method: str = "auto",
                   counters=None) -> Iterator[RootedForest]:
    """Yield ``count`` independent forests from one RNG stream.

    A generator so callers can fold estimates forest-by-forest without
    holding all samples in memory (a forest is O(n)).  ``counters`` is
    credited per yielded forest, as in :func:`sample_forest`.

    ``method="stratified"`` draws the whole batch through the coupled
    Latin-hypercube sampler
    (:func:`~repro.forests.batch_sampling.sample_forests_batch` with
    ``stratified=True``): every yielded forest keeps the exact
    single-forest law, but the batch is negatively correlated so its
    *mean* has lower variance — the allocation behind
    ``variance_mode="stratified"``.
    """
    if count < 0:
        raise ConfigError("count must be non-negative")
    generator = ensure_rng(rng)
    if method == "stratified":
        if count:
            from repro.forests.batch_sampling import sample_forests_batch
            yield from sample_forests_batch(graph, alpha, count,
                                            rng=generator,
                                            counters=counters,
                                            stratified=True)
        return
    for _ in range(count):
        yield sample_forest(graph, alpha, rng=generator, method=method,
                            counters=counters)
