r"""Descriptive statistics of random rooted spanning forests.

Diagnostics connecting observable forest shapes back to the theory:

- **expected number of trees.**  A node is a root iff it is "rooted in
  itself", so by Theorem 3.6
  ``E[#trees] = Σ_u π(u, u) = tr(Π) = α·τ`` (Lemma 4.4) — the forest
  gets bushier exactly as fast as sampling gets cheaper.
- **tree-size distribution.**  The mean tree size is ``n / E[#trees]``;
  its spread diagnoses how much one sample "covers" (relevant to the
  §5.3 argument that one forest ≈ n walk samples).
- **root-mass distribution.**  ``Pr(u ∈ ρ(F)) = π(u, u)`` per node —
  the diagonal of the PPR matrix read off a handful of forests.

These are cheap (O(n) per forest) and power the `statistics` checks in
the test-suite plus ad-hoc exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph

__all__ = ["ForestStatistics", "collect_forest_statistics"]


@dataclass
class ForestStatistics:
    """Aggregates over a batch of sampled forests.

    Attributes
    ----------
    num_forests:
        Sample count behind the aggregates.
    mean_trees:
        Average number of trees per forest — estimates ``tr(Π) = α·τ``.
    mean_steps:
        Average sampling cost per forest — estimates τ (Lemma 4.4).
    root_frequency:
        Per-node root frequency — estimates ``diag(Π)`` (``π(u, u)``).
    tree_size_mean, tree_size_max:
        Moments of the tree-size distribution across all samples.
    """

    num_forests: int
    mean_trees: float
    mean_steps: float
    root_frequency: np.ndarray
    tree_size_mean: float
    tree_size_max: int

    @property
    def diagonal_estimate(self) -> np.ndarray:
        """Alias: the estimated PPR diagonal ``π(u, u)`` per node."""
        return self.root_frequency

    def implied_tau_at(self, alpha: float) -> float:
        """``E[#trees] / α`` — cross-checkable against ``mean_steps``."""
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
        return self.mean_trees / alpha


def collect_forest_statistics(graph: Graph, alpha: float,
                              num_forests: int = 64, *,
                              rng=None,
                              method: str = "auto") -> ForestStatistics:
    """Sample ``num_forests`` forests and aggregate their shape statistics."""
    if num_forests <= 0:
        raise ConfigError("num_forests must be positive")
    n = graph.num_nodes
    root_counts = np.zeros(n)
    total_trees = 0
    total_steps = 0
    size_sum = 0.0
    size_count = 0
    size_max = 0
    for forest in sample_forests(graph, alpha, num_forests, rng=rng,
                                 method=method):
        roots = forest.root_set
        root_counts[roots] += 1
        total_trees += roots.size
        total_steps += forest.num_steps
        sizes = forest.component_sizes[roots]
        size_sum += float(sizes.sum())
        size_count += sizes.size
        size_max = max(size_max, int(sizes.max(initial=0)))
    return ForestStatistics(
        num_forests=num_forests,
        mean_trees=total_trees / num_forests,
        mean_steps=total_steps / num_forests,
        root_frequency=root_counts / num_forests,
        tree_size_mean=size_sum / max(size_count, 1),
        tree_size_max=size_max,
    )
