r"""Descriptive statistics of random rooted spanning forests.

Diagnostics connecting observable forest shapes back to the theory:

- **expected number of trees.**  A node is a root iff it is "rooted in
  itself", so by Theorem 3.6
  ``E[#trees] = Σ_u π(u, u) = tr(Π) = α·τ`` (Lemma 4.4) — the forest
  gets bushier exactly as fast as sampling gets cheaper.
- **tree-size distribution.**  The mean tree size is ``n / E[#trees]``;
  its spread diagnoses how much one sample "covers" (relevant to the
  §5.3 argument that one forest ≈ n walk samples).
- **root-mass distribution.**  ``Pr(u ∈ ρ(F)) = π(u, u)`` per node —
  the diagonal of the PPR matrix read off a handful of forests.

These are cheap (O(n) per forest) and power the `statistics` checks in
the test-suite plus ad-hoc exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.batch_sampling import sample_forests_batch
from repro.forests.estimators import (accumulate_cv_estimates,
                                      accumulate_estimates, cv_combine)
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["ForestStatistics", "collect_forest_statistics",
           "empirical_variance_ratio"]


@dataclass
class ForestStatistics:
    """Aggregates over a batch of sampled forests.

    Attributes
    ----------
    num_forests:
        Sample count behind the aggregates.
    mean_trees:
        Average number of trees per forest — estimates ``tr(Π) = α·τ``.
    mean_steps:
        Average sampling cost per forest — estimates τ (Lemma 4.4).
    root_frequency:
        Per-node root frequency — estimates ``diag(Π)`` (``π(u, u)``).
    tree_size_mean, tree_size_max:
        Moments of the tree-size distribution across all samples.
    """

    num_forests: int
    mean_trees: float
    mean_steps: float
    root_frequency: np.ndarray
    tree_size_mean: float
    tree_size_max: int

    @property
    def diagonal_estimate(self) -> np.ndarray:
        """Alias: the estimated PPR diagonal ``π(u, u)`` per node."""
        return self.root_frequency

    def implied_tau_at(self, alpha: float) -> float:
        """``E[#trees] / α`` — cross-checkable against ``mean_steps``."""
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
        return self.mean_trees / alpha


def collect_forest_statistics(graph: Graph, alpha: float,
                              num_forests: int = 64, *,
                              rng=None,
                              method: str = "auto") -> ForestStatistics:
    """Sample ``num_forests`` forests and aggregate their shape statistics."""
    if num_forests <= 0:
        raise ConfigError("num_forests must be positive")
    n = graph.num_nodes
    root_counts = np.zeros(n)
    total_trees = 0
    total_steps = 0
    size_sum = 0.0
    size_count = 0
    size_max = 0
    for forest in sample_forests(graph, alpha, num_forests, rng=rng,
                                 method=method):
        roots = forest.root_set
        root_counts[roots] += 1
        total_trees += roots.size
        total_steps += forest.num_steps
        sizes = forest.component_sizes[roots]
        size_sum += float(sizes.sum())
        size_count += sizes.size
        size_max = max(size_max, int(sizes.max(initial=0)))
    return ForestStatistics(
        num_forests=num_forests,
        mean_trees=total_trees / num_forests,
        mean_steps=total_steps / num_forests,
        root_frequency=root_counts / num_forests,
        tree_size_mean=size_sum / max(size_count, 1),
        tree_size_max=size_max,
    )


# ----------------------------------------------------------------------
# Empirical-variance harness (the variance_mode acceptance measurement)
# ----------------------------------------------------------------------
def _batch_mean_estimate(graph: Graph, alpha: float, residual: np.ndarray,
                         num_forests: int, mode: str, kind: str,
                         rng) -> np.ndarray:
    """One bank-mean estimate of ``num_forests`` forests under ``mode``."""
    if mode == "stratified":
        forests = sample_forests_batch(graph, alpha, num_forests, rng=rng,
                                       stratified=True)
        sums, _, drawn = accumulate_estimates(
            forests, residual, graph.degrees, kind=kind, improved=True)
        return sums / drawn
    forests = sample_forests_batch(graph, alpha, num_forests, rng=rng)
    if mode == "control_variate":
        acc = accumulate_cv_estimates(forests, residual, graph.degrees,
                                      kind=kind)
        estimate, _ = cv_combine(acc, graph.degrees)
        return estimate
    improved = mode == "improved"
    sums, _, drawn = accumulate_estimates(
        forests, residual, graph.degrees, kind=kind, improved=improved)
    return sums / drawn


def empirical_variance_ratio(graph: Graph, alpha: float,
                             residual: np.ndarray, *,
                             num_forests: int = 32,
                             repetitions: int = 100,
                             kind: str = "source",
                             mode: str = "stratified",
                             baseline_mode: str = "improved",
                             rng=None) -> float:
    """Variance ratio ``Var[baseline] / Var[mode]`` at equal forest count.

    The measurement protocol behind the variance_mode contract (see
    BENCHMARKING.md): draw ``repetitions`` independent banks of exactly
    ``num_forests`` forests under each mode from one RNG stream,
    average each bank's per-forest estimates into a bank-mean vector,
    and compare the per-node empirical variances of those bank means
    summed over nodes.  Both modes see the same forest count, so the
    ratio isolates the estimator/coupling effect — a ratio of ``g``
    means mode needs ``1/g`` as many forests for the same accuracy,
    which is exactly how ``PPRConfig.num_forests`` and
    ``ForestIndex.recommended_size`` discount ω.

    Modes: ``"basic"``, ``"improved"`` (i.i.d. forests, the named
    estimator), ``"stratified"`` (Latin-hypercube-coupled batch,
    improved estimator), ``"control_variate"`` (i.i.d. forests, basic
    estimator with the fitted degree-mass variate).
    """
    if repetitions < 2:
        raise ConfigError("repetitions must be >= 2")
    known = ("basic", "improved", "stratified", "control_variate")
    for label in (mode, baseline_mode):
        if label not in known:
            raise ConfigError(
                f"unknown variance mode {label!r}; choose from {known}")
    generator = ensure_rng(rng)
    residual = np.asarray(residual, dtype=np.float64)
    baseline = np.empty((repetitions, graph.num_nodes))
    candidate = np.empty((repetitions, graph.num_nodes))
    for rep in range(repetitions):
        baseline[rep] = _batch_mean_estimate(
            graph, alpha, residual, num_forests, baseline_mode, kind,
            generator)
        candidate[rep] = _batch_mean_estimate(
            graph, alpha, residual, num_forests, mode, kind, generator)
    baseline_var = float(baseline.var(axis=0, ddof=1).sum())
    candidate_var = float(candidate.var(axis=0, ddof=1).sum())
    if candidate_var <= 0.0:
        return float("inf")
    return baseline_var / candidate_var
