r"""Batched forest sampling: many independent forests per NumPy pass.

Sampling ``k`` independent forests of ``G`` is *identical in law* to
sampling one forest of the disjoint union of ``k`` copies of ``G``
(arrow stacks are per-node independent, and cycle popping never crosses
components).  Working on the union — node ``(layer, u)`` encoded as
``layer·n + u`` — lets every popping round draw arrows and resolve
pointers for **all layers at once**, amortising the per-round NumPy
call overhead that dominates the single-forest sampler when α is small
and cycles pop slowly.

The union is virtual: neighbour sampling runs against the base graph's
alias table on ``id mod n`` and adds the layer offset back, so memory
is ``O(k·n)`` work arrays, never ``k`` copies of the edges.

Equivalence with the sequential samplers is tested statistically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError, ConvergenceError
from repro.forests.forest import RootedForest
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["sample_forests_batch"]


def _stratified_uniforms(base: np.ndarray, generator: np.random.Generator
                         ) -> tuple[np.ndarray, np.ndarray, int]:
    """Latin-hypercube uniforms for one popping round.

    ``base`` holds the base-graph node of every active union-node.
    Layers sharing a base node form one stratum of size ``k``: each
    layer is assigned a distinct cell ``[j/k, (j+1)/k)`` of the unit
    interval (a fresh random permutation per node per round) and draws
    its arrow uniform inside that cell.  Marginally every layer still
    sees an i.i.d. ``U[0, 1)`` stream, so each forest keeps the exact
    sequential cycle-popping law; only the *joint* draw across layers
    is coupled, which is what shrinks the variance of bank means.

    Returns ``(order, uniforms, strata)`` where ``order`` sorts the
    active set by base node, ``uniforms`` aligns with ``base[order]``,
    and ``strata`` counts the multi-layer groups formed.
    """
    m = base.size
    order = np.argsort(base, kind="stable")
    sorted_base = base[order]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_base[1:], sorted_base[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, m))
    sizes = np.repeat(counts, counts)
    # random permutation within each group: rank layers by an i.i.d. key
    keys = generator.random(m)
    within = np.lexsort((keys, sorted_base))
    ranks = np.empty(m, dtype=np.int64)
    ranks[within] = np.arange(m) - np.repeat(starts, counts)
    uniforms = (ranks + generator.random(m)) / sizes
    return order, uniforms, int(np.count_nonzero(counts > 1))


def _neighbors_from_quantiles(graph: Graph, nodes: np.ndarray,
                              quantiles: np.ndarray,
                              edge_cumsum: np.ndarray | None) -> np.ndarray:
    """Inverse-CDF neighbour choice: quantile ``q`` → out-edge of ``u``.

    Unweighted rows use ``floor(q·deg)``; weighted rows binary-search
    the global edge-weight cumsum (strictly increasing, weights > 0)
    restricted to the row, so the draw matches the alias table's law.
    """
    lo = graph.indptr[nodes]
    if graph.weights is None:
        deg = graph.indptr[nodes + 1] - lo
        slot = np.minimum((quantiles * deg).astype(np.int64), deg - 1)
        return graph.indices[lo + slot]
    targets = edge_cumsum[lo] + quantiles * graph.degrees[nodes]
    pos = np.searchsorted(edge_cumsum, targets, side="right") - 1
    return graph.indices[np.minimum(pos, graph.indptr[nodes + 1] - 1)]


def sample_forests_batch(graph: Graph, alpha: float, count: int,
                         rng: np.random.Generator | int | None = None,
                         max_rounds: int = 10_000_000,
                         counters=None,
                         stratified: bool = False) -> list[RootedForest]:
    """Sample ``count`` independent rooted spanning forests at once.

    Same distribution as ``count`` calls of
    :func:`~repro.forests.cycle_popping.sample_forest_cycle_popping`.
    ``counters`` (a :class:`~repro.counters.WorkCounters`) is credited
    with every layer's steps and pops if given.

    When it pays: the batch shares popping rounds, so the per-round
    NumPy call overhead is amortised — about 2× faster on small graphs
    (n ≲ 1000) or large batches.  On graphs with tens of thousands of
    nodes the per-round array work dominates either way and the
    sequential sampler is just as fast; measured numbers live in the
    sampler ablation bench.

    ``stratified=True`` couples the layers' arrow draws through a
    Latin-hypercube grid per (node, round) — see
    :func:`_stratified_uniforms`.  Every individual forest keeps the
    exact product-law marginal, so all estimators stay unbiased; only
    estimates *averaged across the batch* see reduced variance (the
    ``variance_mode="stratified"`` contract measured by
    :func:`repro.forests.statistics.empirical_variance_ratio`).
    ``counters.strata`` is credited with the groups formed.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if count <= 0:
        raise ConfigError("count must be positive")
    n = graph.num_nodes
    total = count * n
    generator = ensure_rng(rng)
    alias = graph.alias_table
    out_degrees = graph.out_degrees
    edge_cumsum = None
    if stratified and graph.weights is not None:
        # global running sum; within row u it is offset + per-row cumsum
        edge_cumsum = np.concatenate(
            ([0.0], np.cumsum(graph.weights, dtype=np.float64)))

    next_node = np.empty(total, dtype=np.int64)
    is_root = np.zeros(total, dtype=bool)
    short = np.empty(total, dtype=np.int64)
    active = np.arange(total)
    trapped = np.arange(total)
    steps_per_layer = np.zeros(count, dtype=np.int64)
    strata_formed = 0

    for _ in range(max_rounds):
        # (1) fresh arrows for all active union-nodes
        base = active % n
        np.add.at(steps_per_layer, active // n, 1)
        if stratified:
            order, uniforms, groups = _stratified_uniforms(base, generator)
            active_round = active[order]
            base_round = base[order]
            strata_formed += groups
        else:
            uniforms = generator.random(active.size)
            active_round = active
            base_round = base
        stops = (uniforms < alpha) | (out_degrees[base_round] == 0)
        stopped = active_round[stops]
        is_root[stopped] = True
        next_node[stopped] = stopped
        movers = active_round[~stops]
        if movers.size:
            is_root[movers] = False
            offsets = movers - (movers % n)
            if stratified:
                # reuse the surviving uniform: conditional on u >= α it
                # is U[α, 1), so (u-α)/(1-α) is an independent U[0, 1)
                quantiles = (uniforms[~stops] - alpha) / (1.0 - alpha)
                next_node[movers] = offsets + _neighbors_from_quantiles(
                    graph, base_round[~stops], quantiles, edge_cumsum)
            else:
                next_node[movers] = offsets + alias.sample_neighbors(
                    movers % n, rng=generator)
        short[trapped] = next_node[trapped]

        # (2) resolve trapped chains (pointer doubling on the union)
        doubling = int(np.ceil(np.log2(trapped.size + 2))) + 1
        jump = short.copy()
        for _ in range(doubling):
            jump[trapped] = jump[jump[trapped]]
        resolved = jump[trapped]
        done = is_root[resolved]
        short[trapped[done]] = resolved[done]

        still = trapped[~done]
        if still.size == 0:
            parents = next_node.copy()
            parents[is_root] = -1
            forests = []
            for layer in range(count):
                lo, hi = layer * n, (layer + 1) * n
                forests.append(RootedForest(
                    roots=short[lo:hi] - lo,
                    parents=np.where(parents[lo:hi] >= 0,
                                     parents[lo:hi] - lo, -1),
                    num_steps=int(steps_per_layer[layer]),
                    method="cycle_popping_batch"))
            if counters is not None:
                for forest in forests:
                    counters.record_forest(forest)
                counters.strata += strata_formed
            return forests

        # (3) pop the union's bad cycles
        active = np.unique(resolved[~done])
        trapped = still

    raise ConvergenceError(
        f"batched cycle popping did not terminate within {max_rounds} rounds",
        iterations=max_rounds)
