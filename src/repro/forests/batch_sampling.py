r"""Batched forest sampling: many independent forests per NumPy pass.

Sampling ``k`` independent forests of ``G`` is *identical in law* to
sampling one forest of the disjoint union of ``k`` copies of ``G``
(arrow stacks are per-node independent, and cycle popping never crosses
components).  Working on the union — node ``(layer, u)`` encoded as
``layer·n + u`` — lets every popping round draw arrows and resolve
pointers for **all layers at once**, amortising the per-round NumPy
call overhead that dominates the single-forest sampler when α is small
and cycles pop slowly.

The union is virtual: neighbour sampling runs against the base graph's
alias table on ``id mod n`` and adds the layer offset back, so memory
is ``O(k·n)`` work arrays, never ``k`` copies of the edges.

Equivalence with the sequential samplers is tested statistically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError, ConvergenceError
from repro.forests.forest import RootedForest
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["sample_forests_batch"]


def sample_forests_batch(graph: Graph, alpha: float, count: int,
                         rng: np.random.Generator | int | None = None,
                         max_rounds: int = 10_000_000,
                         counters=None) -> list[RootedForest]:
    """Sample ``count`` independent rooted spanning forests at once.

    Same distribution as ``count`` calls of
    :func:`~repro.forests.cycle_popping.sample_forest_cycle_popping`.
    ``counters`` (a :class:`~repro.counters.WorkCounters`) is credited
    with every layer's steps and pops if given.

    When it pays: the batch shares popping rounds, so the per-round
    NumPy call overhead is amortised — about 2× faster on small graphs
    (n ≲ 1000) or large batches.  On graphs with tens of thousands of
    nodes the per-round array work dominates either way and the
    sequential sampler is just as fast; measured numbers live in the
    sampler ablation bench.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if count <= 0:
        raise ConfigError("count must be positive")
    n = graph.num_nodes
    total = count * n
    generator = ensure_rng(rng)
    alias = graph.alias_table
    out_degrees = graph.out_degrees

    next_node = np.empty(total, dtype=np.int64)
    is_root = np.zeros(total, dtype=bool)
    short = np.empty(total, dtype=np.int64)
    active = np.arange(total)
    trapped = np.arange(total)
    steps_per_layer = np.zeros(count, dtype=np.int64)

    for _ in range(max_rounds):
        # (1) fresh arrows for all active union-nodes
        base = active % n
        np.add.at(steps_per_layer, active // n, 1)
        coins = generator.random(active.size)
        stops = (coins < alpha) | (out_degrees[base] == 0)
        stopped = active[stops]
        is_root[stopped] = True
        next_node[stopped] = stopped
        movers = active[~stops]
        if movers.size:
            is_root[movers] = False
            offsets = movers - (movers % n)
            next_node[movers] = offsets + alias.sample_neighbors(
                movers % n, rng=generator)
        short[trapped] = next_node[trapped]

        # (2) resolve trapped chains (pointer doubling on the union)
        doubling = int(np.ceil(np.log2(trapped.size + 2))) + 1
        jump = short.copy()
        for _ in range(doubling):
            jump[trapped] = jump[jump[trapped]]
        resolved = jump[trapped]
        done = is_root[resolved]
        short[trapped[done]] = resolved[done]

        still = trapped[~done]
        if still.size == 0:
            parents = next_node.copy()
            parents[is_root] = -1
            forests = []
            for layer in range(count):
                lo, hi = layer * n, (layer + 1) * n
                forests.append(RootedForest(
                    roots=short[lo:hi] - lo,
                    parents=np.where(parents[lo:hi] >= 0,
                                     parents[lo:hi] - lo, -1),
                    num_steps=int(steps_per_layer[layer]),
                    method="cycle_popping_batch"))
            if counters is not None:
                for forest in forests:
                    counters.record_forest(forest)
            return forests

        # (3) pop the union's bad cycles
        active = np.unique(resolved[~done])
        trapped = still

    raise ConvergenceError(
        f"batched cycle popping did not terminate within {max_rounds} rounds",
        iterations=max_rounds)
