"""The :class:`RootedForest` result type shared by both samplers.

A rooted spanning forest partitions ``V`` into trees, each with one
designated root.  Algorithms only ever need the ``roots`` array —
``roots[u]`` is the root of the tree containing ``u`` — which doubles
as a canonical component label (Theorem 3.6 and the §5.3 index both
consume exactly this).  ``parents`` preserves the tree edges for
structural validation and for applications that need the actual trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.exceptions import GraphError

__all__ = ["RootedForest"]


@dataclass
class RootedForest:
    """A sampled rooted spanning forest.

    Attributes
    ----------
    roots:
        ``roots[u]`` is the root node of the tree containing ``u``;
        a node ``r`` is a root iff ``roots[r] == r``.
    parents:
        ``parents[u]`` is the tree-parent of ``u`` (``-1`` for roots).
        Following parents from any node terminates at its root.
    num_steps:
        Random-walk steps (arrow draws) spent sampling this forest —
        the empirical τ of §4.2.
    method:
        ``"wilson"`` or ``"cycle_popping"``.
    """

    roots: np.ndarray
    parents: np.ndarray
    num_steps: int = 0
    method: str = "wilson"
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        self.roots = np.asarray(self.roots, dtype=np.int64)
        self.parents = np.asarray(self.parents, dtype=np.int64)
        if self.roots.shape != self.parents.shape or self.roots.ndim != 1:
            raise GraphError("roots and parents must be parallel 1-D arrays")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the forest."""
        return self.roots.size

    @property
    def num_pops(self) -> int:
        """Arrow draws spent on popped cycles (erased walk visits).

        Every node keeps exactly one surviving arrow in the final
        forest, and each sampling step draws one arrow, so the wasted
        draws are ``num_steps − n`` for both samplers: cycle popping
        redraws exactly the popped nodes, and the loop-erased walk
        erases exactly the revisited stretches.
        """
        return max(int(self.num_steps) - self.num_nodes, 0)

    @cached_property
    def root_set(self) -> np.ndarray:
        """Sorted ids of the root nodes."""
        return np.flatnonzero(self.roots == np.arange(self.num_nodes))

    @property
    def num_trees(self) -> int:
        """Number of trees (= connected components of the forest)."""
        return self.root_set.size

    @cached_property
    def component_sizes(self) -> np.ndarray:
        """``component_sizes[r]`` = tree size for each root ``r`` (0 otherwise)."""
        return np.bincount(self.roots, minlength=self.num_nodes)

    def component_of(self, node: int) -> np.ndarray:
        """All nodes in the same tree as ``node``."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range")
        return np.flatnonzero(self.roots == self.roots[node])

    def same_tree(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` share a tree (the ``X_uv`` of Thm 3.8)."""
        return bool(self.roots[u] == self.roots[v])

    def is_rooted_in(self, node: int, root: int) -> bool:
        """Whether ``node`` is rooted in ``root`` (the event of Thm 3.6)."""
        return bool(self.roots[node] == root)

    def component_degree_mass(self, degrees: np.ndarray) -> np.ndarray:
        """``Σ_{u ∈ tree(r)} d_u`` indexed by root ``r`` (0 elsewhere).

        The denominator of the conditional-probability estimators
        (Theorems 3.7/3.8); cached per degree array identity.
        """
        key = ("degree_mass", id(degrees))
        if key not in self._cache:
            self._cache[key] = np.bincount(
                self.roots, weights=degrees, minlength=self.num_nodes)
        return self._cache[key]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` if broken.

        1. every root is its own fixed point with ``parents == -1``;
        2. non-roots have an in-range parent;
        3. parent chains are acyclic and reach the recorded root.
        """
        n = self.num_nodes
        node_ids = np.arange(n)
        is_root = self.roots == node_ids
        if np.any(self.parents[is_root] != -1):
            raise GraphError("a root has a parent")
        non_root_parents = self.parents[~is_root]
        if non_root_parents.size and (
                non_root_parents.min() < 0 or non_root_parents.max() >= n):
            raise GraphError("a non-root has an out-of-range parent")
        # follow parent pointers with pointer doubling: after >= n
        # composed steps every chain must sit at its recorded root
        jump = np.where(is_root, node_ids, self.parents)
        for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
            jump = jump[jump]
        if not np.all(jump == self.roots):
            raise GraphError(
                "parent chains contain a cycle or do not reach the roots")

    def __repr__(self) -> str:
        return (f"RootedForest(n={self.num_nodes}, trees={self.num_trees}, "
                f"steps={self.num_steps}, method={self.method!r})")
