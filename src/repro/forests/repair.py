"""Incremental forest repair via recorded-stack replay.

The cycle-popping view of Wilson's algorithm (Propp & Wilson) gives
every node an infinite stack of i.i.d. arrows; the sampled forest is a
*deterministic function* of the stacks, independent of popping order.
This module exploits the classic resampling-table argument to repair a
sampled forest after a graph mutation without resampling everything:

1. While sampling, **record** every arrow outcome drawn per node (the
   consumed prefix of its stack): the neighbour stepped to, or a stop
   marker.  Outcomes for node ``u`` are i.i.d. draws from ``u``'s arrow
   law (stop w.p. α, else neighbour ``v`` w.p. ``(1-α)·w_uv/d_u``).
2. On a mutation with dirty set ``M`` (every endpoint of a changed
   edge), only rows of nodes in ``M`` change.  Discard *their* records;
   every other node's recorded outcomes are draws from a law that is
   **identical** under the new graph, so they remain a valid stack
   prefix.
3. Re-run cycle popping where each node's stack is its surviving
   record, extended lazily with fresh draws from the *new* graph when
   the record runs out.

The resulting table is i.i.d. per the new graph's arrow law in every
position — dirty columns are entirely fresh, clean columns were always
distributed per the (unchanged) row law — so the repaired forest is an
*exact* sample from the new graph's Theorem-4.3 forest distribution.
This exactness matters: the seemingly cheaper shortcut of keeping
entire untouched trees and locally resampling only dirty components is
biased (kept trees are conditioned on the old run's popping history),
and the chi-square harness in ``tests/test_forest_repair.py`` catches
that bias at a few thousand samples.

The work saved is measured, not assumed: replayed record reads and
fresh draws are credited to separate ``repair_*`` fields of
:class:`~repro.counters.WorkCounters`, so callers can assert that a
single-edge mutation costs a small fraction of a full rebuild's
``walk_steps``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError, ConvergenceError
from repro.forests.forest import RootedForest
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["ForestRecord", "sample_forest_recorded", "repair_forest",
           "STOP_ARROW"]

#: Record marker for a "stop here" arrow (the node became a root).
STOP_ARROW = -1


@dataclass
class ForestRecord:
    """The consumed arrow-stack prefixes behind one sampled forest.

    CSR-shaped: ``arrows[indptr[u]:indptr[u + 1]]`` is node ``u``'s
    recorded outcome sequence in draw order — each entry a neighbour id
    or :data:`STOP_ARROW`.  Records persist across repairs (clean
    nodes keep and extend theirs), which is what makes a *sequence* of
    mutations exact, not just the first one.
    """

    indptr: np.ndarray
    arrows: np.ndarray

    @classmethod
    def empty(cls, num_nodes: int) -> "ForestRecord":
        """A record with no draws — replaying it is fresh sampling."""
        return cls(indptr=np.zeros(num_nodes + 1, dtype=np.int64),
                   arrows=np.empty(0, dtype=np.int64))

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    @property
    def num_arrows(self) -> int:
        return int(self.arrows.size)

    def lengths(self) -> np.ndarray:
        """Recorded draws per node."""
        return np.diff(self.indptr)


def _ragged_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat index array covering ``[starts[i], starts[i]+lengths[i])``
    for every ``i`` in order (the standard repeat/arange splice)."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths,
                                                          lengths)
    return np.repeat(starts, lengths) + within


def _replay(graph: Graph, alpha: float, record: ForestRecord,
            dirty: np.ndarray, generator: np.random.Generator,
            max_rounds: int, method: str = "repair",
            ) -> tuple[RootedForest, ForestRecord, int, int]:
    """Cycle popping over recorded stacks extended with fresh draws.

    Returns ``(forest, new_record, replayed, fresh)`` where ``replayed``
    counts record reads and ``fresh`` counts new arrow draws.  With an
    empty record this is exactly :func:`sample_forest_cycle_popping`
    (same RNG consumption order, bit-identical output at a fixed seed).
    """
    n = graph.num_nodes
    if record.num_nodes != n:
        raise ConfigError(
            f"record covers {record.num_nodes} nodes, graph has {n}")
    alias = graph.alias_table
    out_degrees = graph.out_degrees

    rec_start = record.indptr[:-1]
    rec_len = record.lengths().copy()
    rec_len[dirty] = 0  # dirty rows changed; their draws are invalid

    cursor = np.zeros(n, dtype=np.int64)  # pops so far = stack position
    next_node = np.empty(n, dtype=np.int64)
    is_root = np.zeros(n, dtype=bool)
    short = np.empty(n, dtype=np.int64)
    active = np.arange(n)
    trapped = np.arange(n)
    replayed = 0
    fresh = 0
    fresh_nodes: list[np.ndarray] = []
    fresh_arrows: list[np.ndarray] = []

    for _ in range(max_rounds):
        # (1) top arrows for the active set: replay the record where it
        # still covers the node's stack position, else draw fresh from
        # the (current) graph and append to the record buffers
        use_record = cursor[active] < rec_len[active]
        recorded = active[use_record]
        if recorded.size:
            replayed += recorded.size
            arrows = record.arrows[rec_start[recorded] + cursor[recorded]]
            stops = arrows == STOP_ARROW
            stopped = recorded[stops]
            is_root[stopped] = True
            next_node[stopped] = stopped
            movers = recorded[~stops]
            is_root[movers] = False
            next_node[movers] = arrows[~stops]
        drawing = active[~use_record]
        if drawing.size:
            fresh += drawing.size
            coins = generator.random(drawing.size)
            stops = (coins < alpha) | (out_degrees[drawing] == 0)
            stopped = drawing[stops]
            is_root[stopped] = True
            next_node[stopped] = stopped
            movers = drawing[~stops]
            arrows = np.full(drawing.size, STOP_ARROW, dtype=np.int64)
            if movers.size:
                is_root[movers] = False
                targets = alias.sample_neighbors(movers, rng=generator)
                next_node[movers] = targets
                arrows[~stops] = targets
            fresh_nodes.append(drawing)
            fresh_arrows.append(arrows)
        short[trapped] = next_node[trapped]

        # (2) resolve trapped chains by pointer doubling (identical to
        # sample_forest_cycle_popping)
        doubling = int(np.ceil(np.log2(trapped.size + 2))) + 1
        jump = short.copy()
        for _ in range(doubling):
            jump[trapped] = jump[jump[trapped]]
        resolved = jump[trapped]
        done = is_root[resolved]
        short[trapped[done]] = resolved[done]

        still = trapped[~done]
        if still.size == 0:
            parents = next_node.copy()
            parents[is_root] = -1
            forest = RootedForest(roots=short, parents=parents,
                                  num_steps=replayed + fresh,
                                  method=method)
            new_record = _merge_record(record, rec_len, fresh_nodes,
                                       fresh_arrows, n)
            return forest, new_record, replayed, fresh

        # (3) pop the bad cycles: advance their stack cursors and redraw
        active = np.unique(resolved[~done])
        cursor[active] += 1
        trapped = still

    raise ConvergenceError(
        f"forest repair did not terminate within {max_rounds} rounds",
        iterations=max_rounds)


def _merge_record(record: ForestRecord, kept_len: np.ndarray,
                  fresh_nodes: list[np.ndarray],
                  fresh_arrows: list[np.ndarray], n: int) -> ForestRecord:
    """Surviving record prefixes + this run's fresh draws, per node.

    Clean nodes keep their *entire* old record (entries beyond the
    surviving arrow are unconsumed i.i.d. draws, still valid later);
    dirty nodes (``kept_len == 0``) start over from this run's draws.
    Fresh draws were appended once per round per node, so a stable sort
    by node preserves each node's chronological order.
    """
    if fresh_nodes:
        nodes = np.concatenate(fresh_nodes)
        arrows = np.concatenate(fresh_arrows)
        order = np.argsort(nodes, kind="stable")
        nodes, arrows = nodes[order], arrows[order]
        fresh_counts = np.bincount(nodes, minlength=n).astype(np.int64)
    else:
        arrows = np.empty(0, dtype=np.int64)
        fresh_counts = np.zeros(n, dtype=np.int64)
    new_len = kept_len + fresh_counts
    new_indptr = np.concatenate(
        ([0], np.cumsum(new_len, dtype=np.int64)))
    new_arrows = np.empty(int(new_indptr[-1]), dtype=np.int64)
    old_dst = _ragged_positions(new_indptr[:-1], kept_len)
    old_src = _ragged_positions(record.indptr[:-1], kept_len)
    new_arrows[old_dst] = record.arrows[old_src]
    fresh_dst = _ragged_positions(new_indptr[:-1] + kept_len, fresh_counts)
    new_arrows[fresh_dst] = arrows
    return ForestRecord(indptr=new_indptr, arrows=new_arrows)


def sample_forest_recorded(graph: Graph, alpha: float,
                           rng: np.random.Generator | int | None = None,
                           max_rounds: int = 10_000_000,
                           counters: WorkCounters | None = None,
                           ) -> tuple[RootedForest, ForestRecord]:
    """Sample one forest *and* keep its arrow record for later repair.

    The forest is bit-identical to
    :func:`~repro.forests.cycle_popping.sample_forest_cycle_popping`
    at the same seed — recording changes bookkeeping, not the draw
    sequence.  Standard sampling counters are credited.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    generator = ensure_rng(rng)
    forest, record, _, _ = _replay(
        graph, alpha, ForestRecord.empty(graph.num_nodes),
        np.empty(0, dtype=np.int64), generator, max_rounds,
        method="cycle_popping_recorded")
    if counters is not None:
        counters.record_forest(forest)
    return forest, record


def repair_forest(graph: Graph, alpha: float, record: ForestRecord,
                  dirty: np.ndarray,
                  rng: np.random.Generator | int | None = None,
                  max_rounds: int = 10_000_000,
                  counters: WorkCounters | None = None,
                  ) -> tuple[RootedForest, ForestRecord]:
    """Repair one recorded forest after a mutation of ``graph``.

    Parameters
    ----------
    graph:
        The **new** (post-mutation) graph.
    record:
        The arrow record sampled against the pre-mutation graph.
    dirty:
        Node ids whose CSR rows may have changed — typically
        :meth:`~repro.graph.delta.GraphDelta.touched_nodes`.  A
        superset is safe; a miss is not.
    rng:
        Source for the fresh draws (dirty stacks + record extensions).

    Returns
    -------
    (forest, record):
        An exact sample from the new graph's forest law, plus the
        extended record to use for the *next* repair.  Credits
        ``repair_replayed_steps`` / ``repair_fresh_steps`` /
        ``repair_dirty_nodes`` on ``counters``.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    dirty = np.asarray(dirty, dtype=np.int64)
    if dirty.size and (dirty.min() < 0 or dirty.max() >= graph.num_nodes):
        raise ConfigError("dirty node id out of range")
    generator = ensure_rng(rng)
    forest, new_record, replayed_count, fresh_count = _replay(
        graph, alpha, record, dirty, generator, max_rounds)
    if counters is not None:
        counters.repair_replayed_steps += replayed_count
        counters.repair_fresh_steps += fresh_count
        counters.repair_dirty_nodes += dirty.size
    return forest, new_record
