"""Vectorised forest sampling via cycle popping.

Wilson's algorithm has an equivalent "stacks of arrows" formulation
(Propp & Wilson): give every node an infinite stack of i.i.d. arrows —
each arrow is *stop here* with probability α (making the node a root)
or *step to a random neighbour* with probability ``(1-α)·w_uv/d_u`` —
and pop cycles of the functional graph formed by the top arrows until
none remain.  The cycle-popping theorem states the surviving top arrows
form a rooted spanning forest with exactly the target distribution
``Pr(F) ∝ w(F)·Π_{ρ(F)} β d_u``, *independently of the order in which
cycles are popped*.

That order-independence is what we exploit to vectorise:

1. draw top arrows for every node at once (three NumPy ops via the
   alias table);
2. find all "bad" cycles — cycles of the arrow map not fixed at a root
   — with pointer doubling (cycles of a functional graph are
   vertex-disjoint, so popping them simultaneously is a valid popping
   order);
3. redraw arrows only for the popped nodes; repeat.

Each arrow draw corresponds to one walk step of Algorithm 1, so the
total number of draws reproduces the τ statistic in distribution.

The expected number of rounds is small in practice: after the first
pass only nodes on bad cycles survive, and each of those stops with
probability ≥ α per redraw while most escape into the settled forest
far sooner.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError, ConvergenceError
from repro.forests.forest import RootedForest
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["sample_forest_cycle_popping"]


def sample_forest_cycle_popping(graph: Graph, alpha: float,
                                rng: np.random.Generator | int | None = None,
                                max_rounds: int = 10_000_000) -> RootedForest:
    """Sample one rooted spanning forest (same law as Algorithm 1).

    Parameters
    ----------
    graph, alpha, rng:
        As in :func:`repro.forests.wilson.sample_forest_wilson`.
    max_rounds:
        Safety bound on popping rounds; exceeded only if something is
        deeply wrong (each round terminates a.s.).

    Returns
    -------
    RootedForest
        ``num_steps`` counts every arrow drawn — equal in distribution
        to the reference sampler's walk-step count (the empirical τ).

    Notes
    -----
    Resolution is incremental: once a node's arrow chain reaches a
    root it can never be disturbed (popped nodes all lie on bad
    cycles, and chains of settled nodes avoid those by definition), so
    each popping round re-resolves only the still-trapped set.  The
    ``short`` map sends settled nodes straight to their root, keeping
    the pointer-doubling depth at ``O(log |trapped|)``.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    n = graph.num_nodes
    generator = ensure_rng(rng)
    alias = graph.alias_table
    out_degrees = graph.out_degrees

    next_node = np.empty(n, dtype=np.int64)
    is_root = np.zeros(n, dtype=bool)
    # short[u]: u's root once settled (a fixed point), else its arrow
    short = np.empty(n, dtype=np.int64)
    active = np.arange(n)       # nodes whose arrows must be (re)drawn
    trapped = np.arange(n)      # nodes not yet proven to reach a root
    steps = 0

    for _ in range(max_rounds):
        # (1) draw fresh top arrows for the active (popped) nodes
        steps += active.size
        coins = generator.random(active.size)
        stops = (coins < alpha) | (out_degrees[active] == 0)
        stopped = active[stops]
        is_root[stopped] = True
        next_node[stopped] = stopped
        movers = active[~stops]
        if movers.size:
            is_root[movers] = False
            next_node[movers] = alias.sample_neighbors(movers, rng=generator)
        short[trapped] = next_node[trapped]

        # (2) resolve the trapped chains by pointer doubling restricted
        # to the trapped set (their chains stay inside it until they
        # hit a settled node, which `short` maps to its root directly)
        doubling = int(np.ceil(np.log2(trapped.size + 2))) + 1
        jump = short.copy()
        for _ in range(doubling):
            jump[trapped] = jump[jump[trapped]]
        resolved = jump[trapped]
        done = is_root[resolved]
        short[trapped[done]] = resolved[done]

        still = trapped[~done]
        if still.size == 0:
            parents = next_node.copy()
            parents[is_root] = -1
            roots = short  # every entry now points at its root
            return RootedForest(roots=roots, parents=parents,
                                num_steps=steps, method="cycle_popping")

        # (3) pop: nodes lying on bad cycles are exactly the resolved
        # targets of trapped chains (f^T is a bijection on each cycle)
        active = np.unique(resolved[~done])
        trapped = still

    raise ConvergenceError(
        f"cycle popping did not terminate within {max_rounds} rounds",
        iterations=max_rounds)
