"""The CI benchmark-regression gate: ``python -m repro.bench.ci_gate``.

Runs a pinned quick-protocol subset of kernels — forest sampling
(serial and through the parallel engine), the estimator fold, the
forward/backward push sweeps in both backends, and the flagship
single-source/single-target queries — on a fixed Chung–Lu graph with
fixed seeds, and writes the result as JSON
(:func:`repro.bench.reporting.write_benchmark_json`).

With ``--baseline`` it compares against a committed run and exits
non-zero if any tracked kernel regressed beyond the threshold
(default 25%).  Wall clock is calibrated by a pure-NumPy reference
workload so runner speed differences don't trip the gate; the work
counters are machine-independent and compared raw.  See the "CI
protocol" section of docs/BENCHMARKING.md for the baseline-refresh
procedure.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time

import numpy as np

from repro.bench.reporting import (
    compare_to_baseline,
    format_markdown_table,
    load_benchmark_json,
    write_benchmark_json,
)
from repro.core import single_source, single_target
from repro.graph.csr import Graph
from repro.graph.generators import chung_lu
from repro.parallel import parallel_estimate_stage, sample_forests_parallel
from repro.push import backward_push, balanced_forward_push

__all__ = ["main", "run_kernels", "calibration_seconds",
           "check_trace_overhead", "check_topk_early_termination",
           "check_variance_walk_steps"]

SEED = 2022
ALPHA = 0.1
GRAPH_NODES = 4000
TIMING_REPEATS = 3


def _pinned_graph() -> Graph:
    """The gate's fixed workload graph (heavy-tailed, ~4k nodes)."""
    degrees = 2.0 + 8.0 * (np.arange(GRAPH_NODES, dtype=np.float64)
                           % 97) / 96.0
    return chung_lu(degrees, rng=SEED)


def calibration_seconds() -> float:
    """Time a fixed pure-NumPy workload (best of 3).

    Scores the host's NumPy throughput on the mix the kernels use —
    dense arithmetic, bincount, argsort — so kernel seconds can be
    compared across machines as multiples of this figure.
    """
    rng = np.random.default_rng(SEED)
    values = rng.random(400_000)
    labels = rng.integers(0, 1_000, size=values.size)
    best = float("inf")
    for _ in range(TIMING_REPEATS):
        started = time.perf_counter()
        acc = np.zeros(1_000)
        for _ in range(10):
            acc += np.bincount(labels, weights=values, minlength=1_000)
            values = np.sqrt(values * values + 1e-9)
        np.argsort(acc)
        best = min(best, time.perf_counter() - started)
    return best


def _timed(func) -> tuple[float, dict]:
    """Best-of-N wall clock plus the counters of the last run."""
    best = float("inf")
    counters: dict = {}
    for _ in range(TIMING_REPEATS):
        started = time.perf_counter()
        counters = func()
        best = min(best, time.perf_counter() - started)
    return best, counters


def run_kernels(workers: int = 4) -> dict[str, dict]:
    """Run every tracked kernel; returns ``{name: {seconds, counters}}``."""
    graph = _pinned_graph()
    graph.alias_table  # build outside the timed regions
    residual = np.zeros(graph.num_nodes)
    residual[:64] = 1.0 / 64.0

    def forest_serial():
        from repro.counters import WorkCounters
        work = WorkCounters()
        sample_forests_parallel(graph, ALPHA, 16, rng=SEED, workers=1,
                                counters=work)
        return work.as_dict()

    def forest_parallel():
        from repro.counters import WorkCounters
        work = WorkCounters()
        sample_forests_parallel(graph, ALPHA, 16, rng=SEED, workers=workers,
                                counters=work)
        return work.as_dict()

    def estimate_stage():
        stage = parallel_estimate_stage(graph, ALPHA, 32, residual,
                                        kind="source", improved=True,
                                        rng=SEED, workers=1)
        return stage.counters.as_dict()

    def estimate_stage_cv():
        # the control-variate fold: basic-estimator stage + the scalar
        # regression adjustment (cv_combine credits cv_fits)
        from repro.forests.estimators import cv_combine
        stage = parallel_estimate_stage(graph, ALPHA, 32, residual,
                                        kind="source", improved=False,
                                        rng=SEED, workers=1,
                                        variance_mode="control_variate")
        cv_combine(stage.cv_accumulator(), graph.degrees,
                   counters=stage.counters)
        return stage.counters.as_dict()

    def push_kernel(func, backend, r_max=5e-5):
        def run():
            from repro.counters import WorkCounters
            push = func(graph, 0, ALPHA, r_max, backend=backend)
            work = WorkCounters()
            work.record_push(push)
            return work.as_dict()
        return run

    # the flagship queries run in stratified mode: the forest budget ω
    # is discounted by the measured variance gain, which is exactly the
    # walk-step cut check_variance_walk_steps gates on
    def speedlv_query():
        result = single_source(graph, 0, method="speedlv", alpha=ALPHA,
                               budget_scale=0.05, seed=SEED,
                               variance_mode="stratified")
        return result.work.as_dict()

    def backlv_query():
        result = single_target(graph, 1, method="backlv", alpha=ALPHA,
                               budget_scale=0.05, seed=SEED,
                               variance_mode="stratified")
        return result.work.as_dict()

    # the serving path: one shared bank, a whole micro-batch through the
    # sparse estimator fold (bank build cost is tracked by the
    # forest-sampling kernels, so it stays outside this timed region)
    from repro.core.batch import BatchSourceSolver
    from repro.counters import WorkCounters
    batch_solver = BatchSourceSolver(graph, alpha=ALPHA, epsilon=0.5,
                                     budget_scale=0.05, seed=SEED,
                                     num_forests=16)
    batch_solver.query_many([0])  # materialise the fold operators

    def service_query_many():
        results = batch_solver.query_many(list(range(16)))
        work = WorkCounters()
        for result in results:
            work.merge(result.work)
        return work.as_dict()

    # the same micro-batch through the multiprocess executor: shared
    # banks + a forked pool; pool boot and warm attach stay outside
    # the timed region, mirroring a running service
    from repro.core.config import PPRConfig
    from repro.service import IndexManager, ProcessExecutor

    mp_manager = IndexManager(
        PPRConfig(alpha=ALPHA, epsilon=0.5, budget_scale=0.05,
                  seed=SEED, workers=0), num_forests=16)
    mp_manager.register_graph("gate", graph)
    mp_executor = ProcessExecutor(mp_manager, workers=2).start()
    mp_executor.warm("gate", ALPHA)

    def service_query_many_mp():
        results = mp_executor.run_batch("gate", "source", ALPHA, 0.5,
                                        list(range(16)))
        work = WorkCounters()
        for result in results:
            work.merge(result.work)
        return work.as_dict()

    # the same micro-batch scatter-gathered across two shard worker
    # groups: each folds only its half of the output rows and the
    # router concatenates the partials (bit-identical to the flat
    # pool); pool boot and per-shard warm stay outside the timing
    from repro.shard.router import ShardRouter

    shard_manager = IndexManager(
        PPRConfig(alpha=ALPHA, epsilon=0.5, budget_scale=0.05,
                  seed=SEED, workers=0), num_forests=16, shards=2)
    shard_manager.register_graph("gate", graph)
    shard_router = ShardRouter(shard_manager,
                               workers_per_shard=1).start()
    shard_router.warm("gate", ALPHA)

    def service_query_many_sharded():
        results = shard_router.run_batch("gate", "source", ALPHA, 0.5,
                                         list(range(16)))
        work = WorkCounters()
        for result in results:
            work.merge(result.work)
        return work.as_dict()

    # same workload with full span collection enabled — the ci_gate
    # overhead check compares this against the untraced kernel above
    def service_query_many_mp_traced():
        results = mp_executor.run_batch("gate", "source", ALPHA, 0.5,
                                        list(range(16)), trace=True,
                                        stats={})
        work = WorkCounters()
        for result in results:
            work.merge(result.work)
        return work.as_dict()

    # and with the full continuous-telemetry stack recording every
    # request (rolling windows + burn-rate SLOs + tenant attribution)
    # — the same overhead budget gates this twin too
    from repro.obs.slo import SLOEngine, default_specs
    from repro.obs.timeseries import TimeSeriesStore
    from repro.service.metrics import ServiceMetrics

    telemetry_metrics = ServiceMetrics(
        timeseries=TimeSeriesStore(),
        slo=SLOEngine(default_specs()))

    def service_query_many_mp_telemetry():
        batch_started = time.perf_counter()
        results = mp_executor.run_batch("gate", "source", ALPHA, 0.5,
                                        list(range(16)))
        seconds = (time.perf_counter() - batch_started) / 16
        work = WorkCounters()
        for position, result in enumerate(results):
            work.merge(result.work)
            telemetry_metrics.record_request(
                "source", seconds, tenant=f"tenant{position % 4}",
                work=result.work.as_dict())
        return work.as_dict()

    # the top-k serving path: same 16-query micro-batch, once with the
    # variance-bound early-termination rule and once forced to the full
    # forest budget — check_topk_early_termination compares the two
    from repro.core.topk import BatchTopKSolver
    topk_items = [(node, TOPK_K) for node in range(16)]
    topk_early = BatchTopKSolver(graph, alpha=ALPHA, epsilon=0.5,
                                 budget_scale=0.05, seed=SEED,
                                 max_forests=128)
    topk_full = BatchTopKSolver(graph, alpha=ALPHA, epsilon=0.5,
                                budget_scale=0.05, seed=SEED,
                                max_forests=128, early_stop=False)

    def topk_kernel(solver):
        def run():
            results = solver.run_items(topk_items)
            work = WorkCounters()
            for result in results:
                work.merge(result.work)
            return work.as_dict()
        return run

    kernels = {}
    try:
        for name, func in [("forest_sampling_serial", forest_serial),
                           ("forest_sampling_parallel", forest_parallel),
                           ("estimate_stage_source_improved",
                            estimate_stage),
                           ("estimate_stage_source_cv",
                            estimate_stage_cv),
                           ("forward_push_vectorized",
                            push_kernel(balanced_forward_push,
                                        "vectorized")),
                           ("forward_push_scalar",
                            push_kernel(balanced_forward_push, "scalar")),
                           ("backward_push_vectorized",
                            push_kernel(backward_push, "vectorized")),
                           ("backward_push_scalar",
                            push_kernel(backward_push, "scalar")),
                           ("speedlv_query", speedlv_query),
                           ("backlv_query", backlv_query),
                           ("service_query_many_16", service_query_many),
                           ("service_query_many_16_mp",
                            service_query_many_mp),
                           ("service_query_many_16_sharded",
                            service_query_many_sharded),
                           ("service_query_many_16_traced",
                            service_query_many_mp_traced),
                           ("service_query_many_16_telemetry",
                            service_query_many_mp_telemetry),
                           ("service_topk_16", topk_kernel(topk_early)),
                           ("service_topk_16_full",
                            topk_kernel(topk_full))]:
            seconds, counters = _timed(func)
            kernels[name] = {"seconds": seconds, "counters": counters}
        # matched-accuracy side of the early-termination check: the
        # smallest per-query overlap between the early-stopped and
        # full-budget top-k sets (deterministic, so safe as a counter)
        early_sets = topk_early.run_items(topk_items)
        full_sets = topk_full.run_items(topk_items)
        kernels["service_topk_16"]["counters"]["topk_min_overlap"] = min(
            len(set(e.nodes.tolist()) & set(f.nodes.tolist()))
            for e, f in zip(early_sets, full_sets))
    finally:
        topk_early.close()
        topk_full.close()
        shard_router.shutdown()
        shard_manager.close_shared()
        mp_executor.shutdown()
        mp_manager.close_shared()
    return kernels


#: The tracing-overhead budget: the traced micro-batch kernel may be at
#: most this much slower than its untraced twin (fractional).
TRACE_OVERHEAD_BUDGET = 0.05

#: Top-k gate: ranking depth of the pinned top-k micro-batch, the
#: minimum fractional walk-step saving early termination must deliver
#: vs the full-budget twin, and the per-query top-k set overlap both
#: must agree on (matched accuracy: at least k-1 of k nodes shared).
TOPK_K = 5
TOPK_REDUCTION_FLOOR = 0.20
TOPK_OVERLAP_FLOOR = TOPK_K - 1

#: Variance-reduction gate: walk steps each flagship query consumed in
#: ``variance_mode="improved"`` at the same seed/flags (the pre-v3
#: committed baseline), and the minimum fractional cut the stratified
#: forest-budget discount must keep delivering against them.  The
#: accuracy side is covered by the test suite's unchanged assertions
#: on these exact queries.
IMPROVED_WALK_STEPS = {"speedlv_query": 9371, "backlv_query": 198006}
VARIANCE_WALK_REDUCTION_FLOOR = 0.25


def check_trace_overhead(kernels: dict[str, dict],
                         budget: float = TRACE_OVERHEAD_BUDGET
                         ) -> tuple[bool, str]:
    """Compare the instrumented micro-batch kernels to the bare one.

    Two instrumented twins share the one budget: full span collection
    (``_traced``) and the continuous-telemetry stack — rolling
    windows, burn-rate SLOs, tenant attribution (``_telemetry``).
    All are best-of-N on the same warm executor, so each ratio
    isolates its instrumentation cost.  Sub-millisecond kernels are
    pure timer noise at 5%, so the check is skipped (passes) when the
    bare floor is under 1 ms.
    """
    base = kernels["service_query_many_16_mp"]["seconds"]
    details = []
    ok = True
    for label, name in (("tracing", "service_query_many_16_traced"),
                        ("telemetry",
                         "service_query_many_16_telemetry")):
        instrumented = kernels[name]["seconds"]
        overhead = instrumented / base - 1.0 if base > 0 else 0.0
        ok = ok and overhead <= budget
        details.append(f"{label} {overhead:+.1%} "
                       f"({instrumented:.4f}s vs {base:.4f}s bare)")
    detail = (f"instrumentation overhead (budget {budget:.0%}): "
              + ", ".join(details))
    if base < 1e-3:
        return True, detail + " [skipped: bare floor < 1 ms]"
    return ok, detail


def check_topk_early_termination(kernels: dict[str, dict],
                                 floor: float = TOPK_REDUCTION_FLOOR
                                 ) -> tuple[bool, str]:
    """Early termination must cut walk steps at matched accuracy.

    Both top-k kernels replay the same deterministic forest stream, so
    the walk-step ratio isolates exactly what the variance-bound
    stopping rule saves; ``topk_min_overlap`` (the worst per-query
    agreement between the early-stopped and full-budget top-k sets)
    guards against buying that saving with a degraded ranking.
    """
    early = kernels["service_topk_16"]["counters"]
    full = kernels["service_topk_16_full"]["counters"]
    reduction = (1.0 - early["walk_steps"] / full["walk_steps"]
                 if full["walk_steps"] else 0.0)
    overlap = early["topk_min_overlap"]
    detail = (f"top-k early termination: {reduction:.1%} walk-step "
              f"saving ({early['walk_steps']} vs {full['walk_steps']} "
              f"steps, floor {floor:.0%}), min top-{TOPK_K} overlap "
              f"{overlap}/{TOPK_K} (floor {TOPK_OVERLAP_FLOOR})")
    return (reduction >= floor and overlap >= TOPK_OVERLAP_FLOOR), detail


def check_variance_walk_steps(kernels: dict[str, dict],
                              floor: float = VARIANCE_WALK_REDUCTION_FLOOR
                              ) -> tuple[bool, str]:
    """Stratified queries must stay under the tightened walk budget.

    :func:`compare_to_baseline` only flags counter *growth*, so the
    walk-step cut bought by the variance-gain discount needs its own
    floor: each flagship query kernel (now running stratified) must
    use at least ``floor`` fewer walk steps than its pinned
    improved-mode count (:data:`IMPROVED_WALK_STEPS`).  Both runs are
    deterministic at the gate's fixed seed, so this is a pure budget
    assertion, not a timing one.
    """
    details = []
    ok = True
    for name, improved_steps in IMPROVED_WALK_STEPS.items():
        steps = kernels[name]["counters"]["walk_steps"]
        reduction = 1.0 - steps / improved_steps
        ok = ok and reduction >= floor
        details.append(f"{name} {reduction:.1%} ({steps} vs "
                       f"{improved_steps} improved-mode steps)")
    return ok, ("stratified walk-step cut (floor "
                f"{floor:.0%}): " + ", ".join(details))


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns a process exit code (1 = regression)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.ci_gate",
        description="pinned benchmark subset + regression gate")
    parser.add_argument("--output", default="BENCH_PR.json",
                        help="where to write this run's JSON")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against "
                             "(omit to only record, e.g. when refreshing)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel kernel")
    args = parser.parse_args(argv)

    calibration = calibration_seconds()
    kernels = run_kernels(workers=args.workers)
    meta = {
        "calibration_seconds": calibration,
        "seed": SEED,
        "alpha": ALPHA,
        "graph_nodes": GRAPH_NODES,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_benchmark_json(args.output, kernels, meta)

    rows = [{"kernel": name,
             "seconds": entry["seconds"],
             "x_calibration": entry["seconds"] / calibration,
             **entry["counters"]}
            for name, entry in kernels.items()]
    print(format_markdown_table(rows))
    print(f"\ncalibration: {calibration:.4f}s; wrote {args.output}")

    trace_ok, trace_detail = check_trace_overhead(kernels)
    print(trace_detail)
    if not trace_ok:
        print("TRACING OVERHEAD over budget "
              f"({TRACE_OVERHEAD_BUDGET:.0%})", file=sys.stderr)
        return 1

    topk_ok, topk_detail = check_topk_early_termination(kernels)
    print(topk_detail)
    if not topk_ok:
        print("TOP-K EARLY TERMINATION below floor "
              f"({TOPK_REDUCTION_FLOOR:.0%} saving at "
              f">={TOPK_OVERLAP_FLOOR}/{TOPK_K} overlap)",
              file=sys.stderr)
        return 1

    variance_ok, variance_detail = check_variance_walk_steps(kernels)
    print(variance_detail)
    if not variance_ok:
        print("STRATIFIED WALK-STEP CUT below floor "
              f"({VARIANCE_WALK_REDUCTION_FLOOR:.0%})", file=sys.stderr)
        return 1

    if args.baseline is None:
        return 0
    try:
        baseline = load_benchmark_json(args.baseline)
    except OSError as error:
        print(f"error: cannot read baseline {args.baseline!r}: {error}",
              file=sys.stderr)
        return 2
    regressions = compare_to_baseline(load_benchmark_json(args.output),
                                      baseline, threshold=args.threshold)
    if regressions:
        print("\nREGRESSIONS over "
              f"{args.threshold:.0%} vs {args.baseline}:", file=sys.stderr)
        print(format_markdown_table(regressions), file=sys.stderr)
        return 1
    print(f"gate passed: no kernel regressed >{args.threshold:.0%} "
          f"vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
