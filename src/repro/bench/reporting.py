"""Markdown rendering for experiment results (feeds EXPERIMENTS.md)."""

from __future__ import annotations

__all__ = ["format_markdown_table", "format_value"]


def format_value(value) -> str:
    """Human-compact rendering: 3 significant digits for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_markdown_table(rows: list[dict], columns: list[str] | None = None,
                          ) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        body.append("| " + " | ".join(
            format_value(row.get(column, "")) for column in columns) + " |")
    return "\n".join([header, rule] + body)
