"""Rendering and persistence for experiment results.

Markdown tables feed EXPERIMENTS.md; the JSON helpers carry the CI
benchmark-regression gate (see ``repro.bench.ci_gate`` and the "CI
protocol" section of docs/BENCHMARKING.md): a run is written with
:func:`write_benchmark_json`, and :func:`compare_to_baseline` flags
kernels whose *calibrated* wall clock or work counters drifted past a
threshold against the committed ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import json
import os

__all__ = ["format_markdown_table", "format_value",
           "write_benchmark_json", "load_benchmark_json",
           "compare_to_baseline"]


def format_value(value) -> str:
    """Human-compact rendering: 3 significant digits for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_markdown_table(rows: list[dict], columns: list[str] | None = None,
                          ) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        body.append("| " + " | ".join(
            format_value(row.get(column, "")) for column in columns) + " |")
    return "\n".join([header, rule] + body)


# ----------------------------------------------------------------------
# Benchmark JSON persistence and the regression comparison
# ----------------------------------------------------------------------
def write_benchmark_json(path: str | os.PathLike, kernels: dict[str, dict],
                         meta: dict | None = None) -> None:
    """Write a benchmark run as JSON.

    ``kernels`` maps a kernel name to ``{"seconds": float, "counters":
    {name: int}}``; ``meta`` should carry at least
    ``calibration_seconds`` (see :func:`compare_to_baseline`) plus
    anything useful for provenance (seed, graph size, python version).
    """
    payload = {"meta": dict(meta or {}), "kernels": kernels}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_benchmark_json(path: str | os.PathLike) -> dict:
    """Load a file written by :func:`write_benchmark_json`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(current: dict, baseline: dict,
                        threshold: float = 0.25) -> list[dict]:
    """Flag kernels that regressed more than ``threshold`` vs baseline.

    Wall clock is *calibrated* before comparison: each run records a
    fixed pure-NumPy calibration kernel, and kernel seconds are scored
    as ``seconds / calibration_seconds`` so a slower CI runner does not
    read as a code regression.  Work counters are compared raw — they
    are machine-independent, so any growth past the threshold is real
    extra work (or an intentional algorithm change; refresh the
    baseline in that case, see docs/BENCHMARKING.md).

    Returns one dict per regression (empty list = gate passes).  New
    kernels missing from the baseline are ignored; kernels missing
    from the current run are reported (a silently dropped kernel must
    not pass the gate).
    """
    regressions: list[dict] = []
    current_cal = float(current.get("meta", {}).get(
        "calibration_seconds", 0.0)) or 1.0
    baseline_cal = float(baseline.get("meta", {}).get(
        "calibration_seconds", 0.0)) or 1.0
    limit = 1.0 + threshold
    for name, base in baseline.get("kernels", {}).items():
        entry = current.get("kernels", {}).get(name)
        if entry is None:
            regressions.append({"kernel": name, "metric": "missing",
                                "ratio": float("inf"), "limit": limit})
            continue
        base_score = float(base["seconds"]) / baseline_cal
        cur_score = float(entry["seconds"]) / current_cal
        if base_score > 0 and cur_score / base_score > limit:
            regressions.append({
                "kernel": name, "metric": "seconds",
                "baseline": base_score, "current": cur_score,
                "ratio": cur_score / base_score, "limit": limit})
        for counter, base_value in base.get("counters", {}).items():
            cur_value = entry.get("counters", {}).get(counter)
            if cur_value is None or base_value <= 0:
                continue
            ratio = float(cur_value) / float(base_value)
            if ratio > limit:
                regressions.append({
                    "kernel": name, "metric": f"counters.{counter}",
                    "baseline": float(base_value),
                    "current": float(cur_value),
                    "ratio": ratio, "limit": limit})
    return regressions
