"""Benchmark harness: workload generators, per-figure experiment
drivers and reporting utilities.

Each experiment driver in :mod:`repro.bench.experiments` regenerates
the rows/series of one table or figure of the paper; the thin
``benchmarks/bench_*.py`` files wire them into pytest-benchmark and
print the tables.
"""

from repro.bench.harness import Timer, run_with_timing, summarize
from repro.bench.workloads import (
    uniform_nodes,
    high_degree_nodes,
    low_degree_nodes,
    QUERY_DISTRIBUTIONS,
)
from repro.bench.reporting import format_markdown_table
from repro.bench import experiments

__all__ = [
    "Timer",
    "run_with_timing",
    "summarize",
    "uniform_nodes",
    "high_degree_nodes",
    "low_degree_nodes",
    "QUERY_DISTRIBUTIONS",
    "format_markdown_table",
    "experiments",
]
